#!/usr/bin/env python3
"""Memory-value forwarding with ``fromThreadOrMem`` (paper Fig. 2b / Fig. 3).

Runs the dense matrix multiplication workload on all three simulated
architectures and shows where the dMT-CGRA advantage comes from: only the
first thread of each row/column issues a real memory load, every other
thread receives the value forwarded through the eLDST units, cutting
global loads from O(dim^3) to O(dim^2).

Run with::

    python examples/matmul_forwarding.py [dim]

Expected output: a per-architecture cycles / global-loads / scratchpad /
energy table in which only dmt does zero scratchpad accesses, the
dMT-vs-Fermi and dMT-vs-MT speedup lines (> 1x), and the eLDST activity
summary showing most operand values forwarded in-fabric rather than
loaded from memory.  Exit status 0.
"""

from __future__ import annotations

import sys

from repro.harness import compare_architectures


def main() -> None:
    dim = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(f"dense {dim}x{dim} matrix multiplication, one thread per output element\n")

    results = compare_architectures("matrixMul", params={"dim": dim})

    header = (
        f"{'architecture':<12} {'cycles':>8} {'global loads':>13} "
        f"{'scratch accesses':>17} {'energy [uJ]':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in ("fermi", "mt", "dmt"):
        result = results[name]
        scratch = result.counters["scratch_loads"] + result.counters["scratch_stores"]
        print(
            f"{name:<12} {result.cycles:>8} {result.counters['global_loads']:>13} "
            f"{scratch:>17} {result.energy.total_uj:>12.2f}"
        )

    fermi, mt, dmt = results["fermi"], results["mt"], results["dmt"]
    print()
    print(f"speedup   dMT-CGRA vs Fermi SM : {fermi.cycles / dmt.cycles:.2f}x")
    print(f"speedup   dMT-CGRA vs MT-CGRA  : {mt.cycles / dmt.cycles:.2f}x")
    print(f"energy    dMT-CGRA vs Fermi SM : {fermi.energy_pj / dmt.energy_pj:.2f}x better")
    print()
    print("dMT-CGRA eLDST activity:")
    print(f"  values loaded from memory : {dmt.counters['eldst_memory_loads']}")
    print(f"  values forwarded in-fabric: {dmt.counters['eldst_forwards']}")
    print(
        "  (the forwarded values are exactly the redundant loads the\n"
        "   scratchpad versions perform via shared memory)"
    )


if __name__ == "__main__":
    main()
