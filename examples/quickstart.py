#!/usr/bin/env python3
"""Quickstart: write a dMT-CGRA kernel, compile it, and simulate it.

The kernel is the paper's prefix-sum example (Fig. 6): every thread loads
one element, receives the running sum from thread ``tid - 1`` through the
fabric (``fromThreadOrConst``), adds its element, tags the new sum for the
next thread (``tagValue``) and stores its prefix sum — no shared memory,
no barrier.

Run with::

    python examples/quickstart.py

Expected output: the functional interpreter verifies the prefix sum of
256 elements, the compile report lists the mapped kernel (5 nodes, one
elevator, no barriers), the cycle-accurate run prints cycles / memory
accesses / energy, and a traced re-run writes ``quickstart_trace.json``
next to a top-5 per-node cycle profile.  Exit status 0.
"""

from __future__ import annotations

import numpy as np

from repro import (
    KernelBuilder,
    KernelLaunch,
    compile_kernel,
    default_system_config,
    run_functional,
    simulate,
)
from repro.obs import ChromeTracer, render_node_profile, tracing
from repro.power import cgra_energy


def build_prefix_sum(n: int):
    """Build the Fig. 6 prefix-sum dataflow graph for a block of ``n`` threads."""
    builder = KernelBuilder("quickstart_scan", n)
    builder.global_array("in_data", n)
    builder.global_array("prefix", n)

    tid = builder.thread_idx_x()
    value = builder.load("in_data", tid)

    # Receive the running sum from thread tid-1 (threads without a producer
    # receive the constant 0.0), add our element, and pass the result on.
    running = builder.from_thread_or_const("sum", -1, 0.0)
    total = running + value
    builder.tag_value("sum", total)

    builder.store("prefix", tid, total)
    return builder.finish()


def main() -> None:
    n = 256
    rng = np.random.default_rng(0)
    data = rng.uniform(0.0, 1.0, n)

    graph = build_prefix_sum(n)
    launch = KernelLaunch(graph, {"in_data": data})

    # 1. Functional interpreter: the correctness oracle.
    functional = run_functional(launch)
    assert np.allclose(functional.array("prefix"), np.cumsum(data))
    print(f"functional interpreter: prefix sum of {n} elements verified")

    # 2. Compile for the Table 2 system: legalise elevators, replicate, map, route.
    config = default_system_config()
    compiled = compile_kernel(graph, config)
    print()
    print(compiled.report())

    # 3. Cycle-level simulation on the dMT-CGRA core.  simulate() picks
    # the engine: this kernel's elevator chain is a recurrence, so the
    # resolved engine is the exact event-driven one.
    result = simulate(compiled, launch)
    assert np.allclose(result.array("prefix"), np.cumsum(data))
    energy = cgra_energy(result.counters(), config)
    print()
    print(f"cycle-level simulation : {result.cycles} cycles ({result.engine} engine)")
    print(f"tokens retagged        : {result.stats.elevator_retags}")
    print(f"global memory accesses : {result.stats.global_loads + result.stats.global_stores}")
    print(f"energy                 : {energy.total_uj:.3f} uJ")
    print(f"  of which leakage     : {energy.fraction('leakage'):.1%}")

    # 4. Trace the same run.  Simulating under an ambient ChromeTracer
    # captures every node firing, token arrival and memory access; the
    # export is Chrome trace-event JSON (load trace.json in Perfetto) and
    # also feeds the per-node cycle profile.  Tracing costs nothing when
    # no tracer is installed — the engines check one pointer per hook.
    tracer = ChromeTracer()
    with tracing(tracer):
        simulate(compiled, KernelLaunch(graph, {"in_data": data}))
    tracer.export_file("quickstart_trace.json")
    print()
    print(f"traced re-run          : {len(tracer)} events -> quickstart_trace.json")
    print(render_node_profile(tracer.export(), top=5))


if __name__ == "__main__":
    main()
