#!/usr/bin/env python3
"""Windowed reduction trees and transmission windows (paper Sec. 3.2).

The ``win`` template parameter of ``fromThreadOrConst`` partitions the
thread block into independent groups of communicating threads.  This
example sweeps the window size of the reduction workload and shows how
the transmission window shapes both the communication distances (Fig. 5)
and the compiler's cascading decisions (Sec. 4.3).

Run with::

    python examples/reduction_tree.py

Expected output: one table row per window size (16/32/64/128) with
reduction levels, max transmission distance, cascaded elevator count,
dMT cycles and energy — cascading appears once the max distance exceeds
the 16-entry token buffer (window >= 64) — followed by a short
explanation of the trend.  Exit status 0.
"""

from __future__ import annotations

from repro.analysis import build_cdf
from repro.compiler import compile_kernel
from repro.harness import run_workload
from repro.workloads import ReduceWorkload


def main() -> None:
    n = 256
    workload = ReduceWorkload()

    print(f"windowed parallel reduction of {n} elements\n")
    print(f"{'window':>7} {'levels':>7} {'max dTID':>9} {'cascaded elevators':>19} "
          f"{'dMT cycles':>11} {'energy [uJ]':>12}")

    for window in (16, 32, 64, 128):
        params = {"n": n, "window": window}
        graph = workload.build_dmt(params)
        cdf = build_cdf([graph])
        compiled = compile_kernel(graph)
        result = run_workload(workload, "dmt", params=params)
        levels = window.bit_length() - 1
        print(
            f"{window:>7} {levels:>7} {cdf.max_distance():>9} "
            f"{len(compiled.elevator_nodes()) - levels:>19} "
            f"{result.cycles:>11} {result.energy.total_uj:>12.2f}"
        )

    print(
        "\nlarger windows reduce values over more threads per group, which\n"
        "lengthens the largest transmission distance; once a distance exceeds\n"
        "the 16-entry token buffer the compiler cascades elevator nodes\n"
        "(Fig. 10a), visible in the 'cascaded elevators' column."
    )


if __name__ == "__main__":
    main()
