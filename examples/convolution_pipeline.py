#!/usr/bin/env python3
"""The paper's running example: separable convolution (Fig. 1).

Builds the 1D 3-tap convolution in its three forms — global-memory-only
pseudo-code (NumPy reference), shared-memory GPGPU kernel (Fig. 1b) and
direct inter-thread communication on dMT-CGRA (Fig. 1c) — and compares
cycles, memory traffic and energy.  Note how the dMT version needs no
margin special-casing: threads next to the margins simply receive the
fallback constant 0.0 from ``fromThreadOrConst``.

Run with::

    python examples/convolution_pipeline.py [n]

Expected output: a cycles / DRAM / barrier-waits / energy table for the
fermi, mt and dmt architectures (dmt runs barrier-free and cheapest in
energy), the transmission-distance CDF (all traffic at |dTID| = 1), and
a final line confirming every architecture matched the NumPy reference.
Exit status 0.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import build_cdf
from repro.harness import compare_architectures
from repro.workloads import ConvolutionWorkload


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    workload = ConvolutionWorkload()
    params = workload.params_with_defaults({"n": n})

    print(f"1D 3-tap convolution over {n} elements (kernel = [0.25, 0.5, 0.25])\n")
    results = compare_architectures(workload, params=params)

    print(
        f"{'architecture':<12} {'cycles':>8} {'DRAM accesses':>14} "
        f"{'barrier waits':>14} {'energy [uJ]':>12}"
    )
    for name in ("fermi", "mt", "dmt"):
        result = results[name]
        dram = result.counters["dram_reads"] + result.counters["dram_writes"]
        print(
            f"{name:<12} {result.cycles:>8} {dram:>14} "
            f"{result.counters['barrier_wait_cycles']:>14} {result.energy.total_uj:>12.2f}"
        )

    # The communication pattern of the dMT kernel (Fig. 5 for this kernel):
    cdf = build_cdf([workload.build_dmt(params)])
    print("\ndMT-CGRA transmission distances (|dTID| -> CDF):")
    for distance, fraction in cdf.points():
        print(f"  {distance:>3} -> {fraction:.2f}")

    expected = results["dmt"].outputs["out"]
    reference = workload.reference(params, workload.make_inputs(params, np.random.default_rng(0)))
    print(f"\nall architectures verified against the NumPy reference "
          f"({len(expected)} outputs, e.g. out[1] = {expected[1]:.4f})")
    assert reference is not None


if __name__ == "__main__":
    main()
