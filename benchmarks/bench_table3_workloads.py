"""Table 3 — benchmark suite inventory."""

from repro.harness.figures import table3


def test_table3_workload_inventory(benchmark):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    print("\n" + result.text)
    rows = result.data
    assert len(rows) == 9
    applications = {row["application"] for row in rows}
    assert applications == {
        "scan", "matrixMul", "convolution", "reduce", "lud",
        "srad", "bpnn", "hotspot", "pathfinder",
    }
