"""Tracing overhead of the observability layer on the speedup-gate rows.

The instrumentation seam is one ambient-tracer pointer comparison per
hook (:func:`repro.obs.trace.active_tracer`), so a run with tracing off
must cost the same as a run that never heard of tracing.  No
uninstrumented build exists to compare against, so the baseline is the
same engine timed under an *explicit* ``tracing(None)`` — bit-identical
code path today, which makes the gate a pure noise guard now and a real
regression tripwire the moment the off path stops being the
pointer-compare path.  Ring-buffer and full tracing are measured and
reported alongside but not gated (they are opt-in, and their cost is the
events, not the seam).

Protocol: the same five workload rows as ``bench_engine_speedup.py`` at
4096 threads, batched engines only (the event engine is never the
default at these sizes and would push the CI lane past its budget).
Shared CI runners drift by integer factors between rounds, so absolute
best-of times are useless for a 2% bar; instead every round times the
baseline and each mode back to back and the reported overhead is the
*minimum per-round ratio* — noise within a round is correlated and
cancels in the ratio, while a real seam regression inflates every
round's ratio and still trips the gate.  Gate: tracing-off within 2% of
baseline on every row::

    python benchmarks/bench_obs_overhead.py [--threads 4096] [--json out.json]
"""

from __future__ import annotations

import argparse
import gc
import math
import os
import sys
import time

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from benchmarks.bench_engine_speedup import cases_for_threads
from benchmarks.common import add_json_option, write_json
from repro.compiler.pipeline import compile_kernel
from repro.obs.trace import ChromeTracer, tracing
from repro.sim import simulate
from repro.workloads.registry import get_workload

#: Tracing-off must stay within 2% of the explicit-``tracing(None)``
#: baseline (same code path; the margin absorbs timer noise).
MAX_OFF_OVERHEAD = 0.02

#: Timing rounds; the gate takes the minimum per-round overhead ratio.
ROUNDS = 3

MODES = ("baseline", "off", "ring", "full")


def _timed(compiled, prepared, variant: str, mode: str) -> float:
    launch = prepared.launch(variant)
    tracer = None
    if mode == "ring":
        tracer = ChromeTracer(limit=4096)
    elif mode == "full":
        tracer = ChromeTracer()
    gc.collect()
    if mode == "off":
        start = time.perf_counter()
        simulate(compiled, launch)
        return time.perf_counter() - start
    start = time.perf_counter()
    with tracing(tracer):
        simulate(compiled, launch)
    return time.perf_counter() - start


def _run_case(name: str, variant: str, params: dict, expected_engine: str) -> dict:
    workload = get_workload(name)
    prepared = workload.prepare(params)
    launch = prepared.launch(variant)
    compiled = compile_kernel(launch.graph)

    warm = simulate(compiled, prepared.launch(variant))
    assert warm.engine == expected_engine, (
        f"{name}/{variant}: auto dispatch resolved to '{warm.engine}' "
        f"(expected '{expected_engine}')"
    )
    best = {mode: math.inf for mode in MODES}
    ratio = {mode: math.inf for mode in MODES if mode != "baseline"}
    for _ in range(ROUNDS):
        base = _timed(compiled, prepared, variant, "baseline")
        best["baseline"] = min(best["baseline"], base)
        for mode in ("off", "ring", "full"):
            seconds = _timed(compiled, prepared, variant, mode)
            best[mode] = min(best[mode], seconds)
            ratio[mode] = min(ratio[mode], seconds / base)

    return {
        "workload": name,
        "variant": variant,
        "engine": warm.engine,
        "threads": launch.num_threads,
        **{f"{mode}_seconds": best[mode] for mode in MODES},
        **{f"{mode}_overhead": ratio[mode] - 1.0 for mode in ratio},
        "max_off_overhead": MAX_OFF_OVERHEAD,
    }


def _print_table(rows: list[dict]) -> None:
    header = (
        f"{'workload':<14} {'variant':<8} {'engine':<15} {'threads':>8} "
        f"{'base [s]':>9} {'off':>7} {'ring':>7} {'full':>7}"
    )
    print("\n" + header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['workload']:<14} {row['variant']:<8} {row['engine']:<15} "
            f"{row['threads']:>8} {row['baseline_seconds']:>9.3f} "
            f"{row['off_overhead']:>+6.1%} {row['ring_overhead']:>+6.1%} "
            f"{row['full_overhead']:>+6.1%}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threads",
        type=int,
        default=4096,
        help="approximate thread count per case (default: %(default)s)",
    )
    add_json_option(parser)
    args = parser.parse_args(argv)
    if args.threads < 2:
        parser.error("--threads must be >= 2")

    rows = [
        _run_case(name, variant, params, engine)
        for name, variant, params, _output, engine, _bar in cases_for_threads(args.threads)
    ]
    _print_table(rows)
    failures = [
        f"{row['workload']}/{row['variant']}: tracing-off overhead "
        f"{row['off_overhead']:+.1%} exceeds {MAX_OFF_OVERHEAD:.0%}"
        for row in rows
        if row["off_overhead"] > MAX_OFF_OVERHEAD
    ]
    for failure in failures:
        print(f"FAIL: {failure}")
    write_json(
        args.json,
        "obs_overhead",
        rows,
        failures,
        extra={"threads": args.threads},
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
