"""Ablation — token-buffer size vs. elevator cascading (Sec. 4.3, Fig. 10a).

Sweeps the token-buffer size for a long-distance ``fromThreadOrConst``
(ΔTID = 48) and reports how many cascaded elevator nodes the compiler
inserts and the resulting execution time.  Larger buffers need fewer
cascaded nodes, at the cost of larger matching structures.
"""


import numpy as np

from repro.compiler.pipeline import compile_kernel
from repro.config.system import SystemConfig, TokenBufferConfig
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.launch import KernelLaunch

_DISTANCE = 48
_THREADS = 128


def _long_distance_kernel():
    builder = KernelBuilder("long_shift", _THREADS)
    builder.global_array("in_data", _THREADS)
    builder.global_array("out", _THREADS)
    tid = builder.thread_idx_x()
    value = builder.load("in_data", tid)
    builder.tag_value("v", value)
    remote = builder.from_thread_or_const("v", -_DISTANCE, 0.0)
    builder.store("out", tid, remote + value)
    return builder.finish()


def _sweep():
    rows = []
    data = np.arange(float(_THREADS))
    for entries in (4, 8, 16, 32, 64):
        config = SystemConfig(token_buffer=TokenBufferConfig(entries=entries)).validate()
        graph = _long_distance_kernel()
        compiled = compile_kernel(graph, config)
        elevators = len(compiled.elevator_nodes())
        launch = KernelLaunch(graph, {"in_data": data})
        result = simulate(compiled, launch)
        rows.append((entries, elevators, result.cycles))
    return rows


def test_ablation_token_buffer_size(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\ntoken-buffer entries | cascaded elevator nodes | cycles")
    for entries, elevators, cycles in rows:
        print(f"{entries:>20} | {elevators:>23} | {cycles:>6}")
    by_entries = {entries: elevators for entries, elevators, _ in rows}
    # Fig. 10a arithmetic: ceil(48 / buffer) elevator nodes.
    assert by_entries[16] == 3
    assert by_entries[64] == 1
    # Fewer buffer entries never need fewer elevator nodes.
    elevator_counts = [e for _, e, _ in rows]
    assert elevator_counts == sorted(elevator_counts, reverse=True)
