"""Table 2 — dMT-CGRA system configuration dump."""

from repro.harness.figures import table2


def test_table2_configuration(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    print("\n" + result.text)
    grid = result.data["grid"]
    assert grid["num_alu"] == 32 and grid["num_fpu"] == 32
    assert grid["num_ldst"] == 32 and grid["num_special"] == 12
    assert grid["num_control"] == 16 and grid["num_split_join"] == 16
    assert result.data["token_buffer"]["entries"] == 16
    assert result.data["core_clock_ghz"] == 1.4
