"""Fail-fast smoke target for both simulation engines and the sharding layer.

Runs the tier-1 test suite, then a 256-thread matmul on the event and
batched engines (outputs bit-identical, operation counters equal), then a
windowed reduce sharded across 4 cores against its single-core run (no
fallback, outputs bit-identical, operation counters equal) — the cheap
end-to-end signal that a regression in either engine, the dispatch
between them, or the window-aligned multi-core partitioner is caught
before the full benchmark suite runs.  Usage::

    python benchmarks/smoke.py          # tests + engines + sharding
    python benchmarks/smoke.py --no-tests   # engine/sharding checks only
    python benchmarks/smoke.py --no-tests --json out.json
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.obs.log import configure, get_logger  # noqa: E402

log = get_logger("benchmarks.smoke")

COMPARED_COUNTERS = ("alu_ops", "fpu_ops", "global_loads", "global_stores")

#: Measured rows collected for the optional --json record.
RESULTS: list[dict] = []


def run_tests() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.call(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env
    )


def run_engine_smoke() -> int:
    import numpy as np

    from repro.compiler.pipeline import compile_kernel
    from repro.sim import simulate
    from repro.workloads.registry import get_workload

    workload = get_workload("matrixMul")
    prepared = workload.prepare({"dim": 16})  # 16x16 block = 256 threads
    compiled = compile_kernel(prepared.launch("stream").graph)

    results = {}
    for engine in ("event", "batched"):
        start = time.perf_counter()
        results[engine] = simulate(
            compiled, prepared.launch("stream"), engine=engine
        )
        elapsed = time.perf_counter() - start
        log.info(f"  {engine:<8} 256-thread matmul: {elapsed:.2f}s, "
                 f"{results[engine].cycles} cycles")
        RESULTS.append(
            {
                "check": "engine",
                "engine": engine,
                "seconds": elapsed,
                "cycles": results[engine].cycles,
            }
        )

    event, batched = results["event"], results["batched"]
    if not np.array_equal(event.array("c"), batched.array("c")):
        log.error("FAIL: engines disagree on matmul outputs")
        return 1
    prepared.check_outputs({"c": batched.array("c")})
    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter in COMPARED_COUNTERS:
        if event_counters[counter] != batched_counters[counter]:
            log.error(f"FAIL: {counter} differs between engines "
                      f"(event={event_counters[counter]}, batched={batched_counters[counter]})")
            return 1
    log.info("  engines agree: outputs bit-identical, op counters equal")
    return 0


def run_sharding_smoke() -> int:
    import numpy as np

    from repro.compiler.pipeline import compile_kernel
    from repro.sim import simulate
    from repro.workloads.registry import get_workload

    workload = get_workload("reduce")
    prepared = workload.prepare({"n": 256, "window": 64})
    compiled = compile_kernel(prepared.launch("dmt").graph)

    start = time.perf_counter()
    single = simulate(compiled, prepared.launch("dmt"), cores=1)
    multi = simulate(compiled, prepared.launch("dmt"), cores=4)
    elapsed = time.perf_counter() - start

    if "shard_fallback_reason" in multi.stats.extra:
        log.error(f"FAIL: reduce fell back to one core "
                  f"[{multi.stats.extra.get('shard_fallback_code')}]: "
                  f"{multi.stats.extra['shard_fallback_reason']}")
        return 1
    if getattr(multi, "cores", 1) != 4:
        log.error(f"FAIL: expected 4 active cores, got {getattr(multi, 'cores', 1)}")
        return 1
    log.info(f"  sharded 256-thread reduce: {elapsed:.2f}s, "
             f"{single.cycles} cycles on 1 core, {multi.cycles} on 4")
    RESULTS.append(
        {
            "check": "sharding",
            "seconds": elapsed,
            "single_core_cycles": single.cycles,
            "four_core_cycles": multi.cycles,
        }
    )
    if not np.array_equal(single.array("partials"), multi.array("partials")):
        log.error("FAIL: sharded outputs differ from the single-core run")
        return 1
    prepared.check_outputs({"partials": multi.array("partials")})
    single_counters = single.stats.as_dict()
    multi_counters = multi.stats.as_dict()
    for counter in COMPARED_COUNTERS + ("elevator_retags", "tokens_sent"):
        if single_counters[counter] != multi_counters[counter]:
            log.error(f"FAIL: {counter} differs between 1-core and 4-core runs "
                      f"(single={single_counters[counter]}, multi={multi_counters[counter]})")
            return 1
    log.info("  sharding agrees: no fallback, outputs bit-identical, op counters equal")
    return 0


def main(argv: list[str]) -> int:
    configure(verbosity=1, stream=sys.stdout)
    json_path = None
    if "--json" in argv:
        value_index = argv.index("--json") + 1
        if value_index >= len(argv) or argv[value_index].startswith("--"):
            print("usage: smoke.py [--no-tests] [--json PATH]", file=sys.stderr)
            return 2
        json_path = argv[value_index]
    if "--no-tests" not in argv:
        log.info("== tier-1 tests ==")
        rc = run_tests()
        if rc:
            return rc
    log.info("== engine smoke (matmul, 256 threads, both engines) ==")
    rc = run_engine_smoke()
    if rc == 0:
        log.info("== sharding smoke (windowed reduce, 1 vs 4 cores) ==")
        rc = run_sharding_smoke()
    if json_path:
        sys.path.insert(0, REPO_ROOT)
        from benchmarks.common import write_json

        write_json(
            json_path,
            "smoke",
            RESULTS,
            failures=["smoke checks failed"] if rc else [],
        )
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
