"""Fail-fast smoke target for both simulation engines.

Runs the tier-1 test suite and then a 256-thread matmul on the event and
batched engines, checking that their outputs are bit-identical and their
operation counters equal — the cheap end-to-end signal that a regression
in either engine (or in the dispatch between them) is caught before the
full benchmark suite runs.  Usage::

    python benchmarks/smoke.py          # tests + both engines
    python benchmarks/smoke.py --no-tests   # engine check only
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

COMPARED_COUNTERS = ("alu_ops", "fpu_ops", "global_loads", "global_stores")


def run_tests() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.call(
        [sys.executable, "-m", "pytest", "-x", "-q"], cwd=REPO_ROOT, env=env
    )


def run_engine_smoke() -> int:
    import numpy as np

    from repro.compiler.pipeline import compile_kernel
    from repro.sim.cycle import run_cycle_accurate
    from repro.workloads.registry import get_workload

    workload = get_workload("matrixMul")
    prepared = workload.prepare({"dim": 16})  # 16x16 block = 256 threads
    compiled = compile_kernel(prepared.launch("stream").graph)

    results = {}
    for engine in ("event", "batched"):
        start = time.perf_counter()
        results[engine] = run_cycle_accurate(
            compiled, prepared.launch("stream"), engine=engine
        )
        elapsed = time.perf_counter() - start
        print(f"  {engine:<8} 256-thread matmul: {elapsed:.2f}s, "
              f"{results[engine].cycles} cycles")

    event, batched = results["event"], results["batched"]
    if not np.array_equal(event.array("c"), batched.array("c")):
        print("FAIL: engines disagree on matmul outputs")
        return 1
    prepared.check_outputs({"c": batched.array("c")})
    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter in COMPARED_COUNTERS:
        if event_counters[counter] != batched_counters[counter]:
            print(f"FAIL: {counter} differs between engines "
                  f"(event={event_counters[counter]}, batched={batched_counters[counter]})")
            return 1
    print("  engines agree: outputs bit-identical, op counters equal")
    return 0


def main(argv: list[str]) -> int:
    if "--no-tests" not in argv:
        print("== tier-1 tests ==")
        rc = run_tests()
        if rc:
            return rc
    print("== engine smoke (matmul, 256 threads, both engines) ==")
    sys.path.insert(0, SRC)
    return run_engine_smoke()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
