"""Figure 12 — energy efficiency of MT-CGRA and dMT-CGRA over the Fermi SM.

Paper results: dMT-CGRA geomean 7.4x (max 33.3x), MT-CGRA geomean 3.5x —
i.e. dMT-CGRA reduces energy by ~53% versus MT-CGRA and ~86% versus the
GPU.  The reproduction checks the ordering (dMT > MT > Fermi on every
kernel) and the dMT-vs-MT energy reduction, and that scan — whose dMT
variant barely speeds up — still shows a clear energy-efficiency win, the
effect the paper highlights.
"""

from benchmarks.common import cached_suite
from repro.harness.figures import figure12


def test_fig12_energy_efficiency_over_fermi(benchmark, engine):
    table = benchmark.pedantic(cached_suite, args=(engine,), rounds=1, iterations=1)
    result = figure12(table=table)
    print("\n" + result.text)

    eff_mt = result.data["efficiency_mt"]
    eff_dmt = result.data["efficiency_dmt"]

    # dMT-CGRA is more energy efficient than MT-CGRA on every kernel.
    for name in eff_dmt:
        assert eff_dmt[name] > eff_mt[name], name

    # Overall ordering dMT > MT relative to the Fermi baseline.
    assert result.data["geomean_dmt"] > result.data["geomean_mt"] > 0.9

    # dMT-CGRA vs MT-CGRA energy reduction (paper: ~53%).
    reduction = 1.0 - result.data["geomean_mt"] / result.data["geomean_dmt"]
    assert reduction > 0.3

    # scan: big energy win despite no speedup (paper Sec. 5.2).
    assert eff_dmt["scan"] > 1.2
