"""Cross-engine fidelity of the batched engines' analytic memory model.

Runs every batchable workload variant of the registry — inter-thread-free
graphs on the wave-batched engine, window-batchable communicating
``dmt``/``dmt_win`` graphs on the window-batched engine — on both
simulation engines and reports the per-counter relative error of the
analytic cache model against the event engine's exact one, across three
memory regimes:

* ``table2``   — the paper's default configuration (compulsory regime);
* ``capacity`` — a capacity-constrained 2-way 1 KiB L1, the
  cache-sensitivity regime the paper's evaluation cares about;
* ``thrash``   — small size/associativity sweeps at sizes where the
  load and store phases overlap in the event engine (the replay-order
  approximation's worst case).

Acceptance gates (also enforced by ``tests/sim/test_fidelity.py``):

* L1/L2 miss counts are **exactly equal** on the order-stable rows
  (``table2`` and ``capacity``, replay-ordered traces);
* cycle error is at most 10% on every row, thrashing sweeps and
  windowed-barrier kernels included.

Run ``pytest benchmarks/bench_batched_fidelity.py -s`` for the full
table, or as a script (CI uses ``--quick`` in the fast lane)::

    python benchmarks/bench_batched_fidelity.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from benchmarks.common import add_json_option, write_json
from repro.compiler.pipeline import compile_kernel
from repro.config.system import SystemConfig, default_system_config
from repro.graph.interthread import window_batch_problem
from repro.sim import simulate
from repro.sim.batched import BatchedSimulator
from repro.sim.window_batched import WindowBatchedSimulator
from repro.workloads.registry import all_workloads, available_variants

#: Counters whose event/batched equality is the exact-fidelity contract.
MISS_COUNTERS = (
    "l1_read_misses",
    "l1_write_misses",
    "l2_read_misses",
    "l2_write_misses",
)

#: Counters reported (relative error) but not gated exactly.
REPORTED_COUNTERS = MISS_COUNTERS + (
    "l1_read_hits",
    "l1_write_hits",
    "l1_writebacks",
    "l2_read_hits",
    "dram_reads",
    "dram_writes",
)

MAX_CYCLE_ERROR = 0.10

#: Small problem sizes per registry workload; the event engine runs
#: every row, so sizes stay modest.  Every workload appears, so the CI
#: fast-lane ``--quick`` gate samples at least one row per batchable
#: workload (its event-only variants are filtered out per graph).
QUICK_PARAMS = {
    "scan": {"n": 64},
    "matrixMul": {"dim": 12},
    "convolution": {"n": 192},
    "reduce": {"n": 192, "window": 16},
    "lud": {"dim": 8},
    "srad": {"dim": 8},
    "bpnn": {"n_in": 8, "n_out": 8},
    "hotspot": {"dim": 8},
    "pathfinder": {"cols": 48, "rows": 4},
    "spmv": {"rows": 12, "max_nnz": 4},
}
FULL_PARAMS = {
    "scan": {"n": 128},
    "matrixMul": {"dim": 16},
    "convolution": {"n": 256},
    "reduce": {"n": 256, "window": 32},
    "lud": {"dim": 12},
    "srad": {"dim": 12},
    "bpnn": {"n_in": 16, "n_out": 16},
    "hotspot": {"dim": 12},
    "pathfinder": {"cols": 96, "rows": 5},
    "spmv": {"rows": 24, "max_nnz": 8},
}
#: Overlapped-phase sizes for the thrashing sweep (full run only).
THRASH_PARAMS = {
    "scan": {"n": 128},
    "matrixMul": {"dim": 24},
    "convolution": {"n": 768},
    "reduce": {"n": 768, "window": 32},
    "lud": {"dim": 16},
    "srad": {"dim": 16},
    "bpnn": {"n_in": 32, "n_out": 24},
    "hotspot": {"dim": 16},
    "pathfinder": {"cols": 256, "rows": 5},
    "spmv": {"rows": 64, "max_nnz": 8},
}


def _with_l1(
    config: SystemConfig, size_bytes: int, ways: int, line_bytes: int | None = None
) -> SystemConfig:
    l1 = replace(config.memory.l1, size_bytes=size_bytes, ways=ways)
    if line_bytes is not None:
        l1 = replace(l1, line_bytes=line_bytes)
    return replace(config, memory=replace(config.memory, l1=l1)).validate()


def memory_regimes(quick: bool) -> list[tuple[str, SystemConfig, bool]]:
    """(label, config, order_stable) triples; order-stable rows gate misses
    exactly, the rest gate the cycle error only."""
    base = default_system_config()
    regimes = [
        ("table2", base, True),
        ("capacity-1KiB-2w", _with_l1(base, 1024, 2), True),
        # Mixed line sizes: several 32 B L1 lines share one 128 B L2 line,
        # exercising the per-level line re-alignment.
        ("capacity-32Bline", _with_l1(base, 1024, 2, line_bytes=32), True),
    ]
    if not quick:
        regimes += [
            ("thrash-512B-1w", _with_l1(base, 512, 1), False),
            ("thrash-2KiB-4w", _with_l1(base, 2048, 4), False),
        ]
    return regimes


def batchable_variants(params_by_workload) -> list[tuple[str, str, dict]]:
    """Every (workload, variant, params) a batched engine can run: graphs
    that are inter-thread-free or window-batchable.  Variants come from
    the registry's own declaration, never a hard-coded list."""
    cases = []
    for workload in all_workloads():
        if workload.name not in params_by_workload:
            continue
        params = workload.params_with_defaults(params_by_workload[workload.name])
        prepared = workload.prepare(params)
        for variant in available_variants(workload):
            graph = prepared.launch(variant).graph
            if graph.has_interthread() and window_batch_problem(graph) is not None:
                continue  # barrier/recurrence: event-engine only
            cases.append((workload.name, variant, params))
    return cases


def run_pair(name: str, variant: str, params: dict, config: SystemConfig) -> dict:
    """One workload variant on both engines; returns the comparison row.

    The batched engine additionally runs once with the sequential
    reference walk (``analytic_vectorised=False``): the vectorised
    per-set walk must be counter- and cycle-identical to it on every
    row — it is an implementation, not an approximation.
    """
    workload = next(w for w in all_workloads() if w.name == name)
    prepared = workload.prepare(params)
    compiled = compile_kernel(prepared.launch(variant).graph, config)
    event = simulate(compiled, prepared.launch(variant), engine="event")
    batched = simulate(compiled, prepared.launch(variant))  # auto: batched engine
    sim_cls = (
        WindowBatchedSimulator if compiled.graph.has_interthread() else BatchedSimulator
    )
    sequential_sim = sim_cls(
        compiled, prepared.launch(variant), analytic_vectorised=False
    )
    ordered_trace = bool(sequential_sim._ordered_loads)
    sequential = sequential_sim.run()
    event_counters = event.counters()
    batched_counters = batched.counters()

    def _without_trace(counters: dict) -> dict:
        # simulate() stamps trace provenance on its result; the raw
        # sequential-walk run has none.  Not a model quantity — drop it.
        return {key: value for key, value in counters.items() if key != "trace"}

    walk_identical = (
        batched.cycles == sequential.cycles
        and _without_trace(batched_counters) == _without_trace(sequential.counters())
    )

    def rel_error(key: str) -> float:
        reference = event_counters.get(key, 0)
        observed = batched_counters.get(key, 0)
        return abs(observed - reference) / max(1, abs(reference))

    return {
        "workload": name,
        "variant": variant,
        "engine": batched.engine,
        "ordered_trace": ordered_trace,
        "event_cycles": event.cycles,
        "batched_cycles": batched.cycles,
        "cycle_error": abs(batched.cycles - event.cycles) / max(1, event.cycles),
        "errors": {key: rel_error(key) for key in REPORTED_COUNTERS},
        "miss_exact": all(
            event_counters.get(key, 0) == batched_counters.get(key, 0)
            for key in MISS_COUNTERS
        ),
        "walk_identical": walk_identical,
        "event": {key: event_counters.get(key, 0) for key in REPORTED_COUNTERS},
        "batched": {key: batched_counters.get(key, 0) for key in REPORTED_COUNTERS},
    }


def collect_rows(quick: bool) -> list[tuple[str, bool, dict]]:
    rows = []
    for regime, config, order_stable in memory_regimes(quick):
        params_map = QUICK_PARAMS if quick else FULL_PARAMS
        if regime.startswith("thrash"):
            params_map = THRASH_PARAMS
        for name, variant, params in batchable_variants(params_map):
            rows.append((regime, order_stable, run_pair(name, variant, params, config)))
    return rows


def check_rows(rows) -> list[str]:
    failures = []
    for regime, order_stable, row in rows:
        label = f"{row['workload']}/{row['variant']} @ {regime}"
        # Exact-miss gate applies to replay-ordered traces only (the
        # regime must be order-stable AND the kernel's trace replayable).
        if order_stable and row["ordered_trace"] and not row["miss_exact"]:
            detail = {
                key: (row["event"][key], row["batched"][key])
                for key in MISS_COUNTERS
                if row["event"][key] != row["batched"][key]
            }
            failures.append(f"{label}: L1/L2 miss counts not exact: {detail}")
        if row["cycle_error"] > MAX_CYCLE_ERROR:
            failures.append(
                f"{label}: cycle error {row['cycle_error']:.1%} "
                f"(event {row['event_cycles']}, batched {row['batched_cycles']}, "
                f"bar {MAX_CYCLE_ERROR:.0%})"
            )
        if not row["walk_identical"]:
            failures.append(
                f"{label}: vectorised tag walk diverges from the sequential "
                "reference walk (counters or cycles differ)"
            )
    return failures


def print_table(rows) -> None:
    header = (
        f"{'regime':<17} {'workload':<12} {'variant':<7} {'ev cyc':>7} {'ba cyc':>7} "
        f"{'cyc err':>8} {'miss':>6} {'worst counter error':>24}"
    )
    print("\n" + header)
    print("-" * len(header))
    for regime, _, row in rows:
        worst_key = max(row["errors"], key=row["errors"].get)
        worst = row["errors"][worst_key]
        print(
            f"{regime:<17} {row['workload']:<12} {row['variant']:<7} "
            f"{row['event_cycles']:>7} {row['batched_cycles']:>7} "
            f"{row['cycle_error']:>7.2%} {'exact' if row['miss_exact'] else 'DRIFT':>6} "
            f"{worst_key + ' ' + format(worst, '.1%'):>24}"
        )


def test_batched_fidelity_gates():
    """pytest entry point: full table, both gates."""
    rows = collect_rows(quick=False)
    print_table(rows)
    failures = check_rows(rows)
    assert not failures, "\n".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI fast-lane subset: order-stable regimes at small sizes",
    )
    add_json_option(parser)
    args = parser.parse_args(argv)
    rows = collect_rows(quick=args.quick)
    print_table(rows)
    failures = check_rows(rows)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        gates = (
            "exact L1/L2 misses on order-stable rows, cycle error <= 10% "
            "everywhere, vectorised == sequential walk"
        )
        print(f"\nall {len(rows)} rows pass ({gates})")
    write_json(
        args.json,
        "batched_fidelity",
        [dict(row, regime=regime, order_stable=stable) for regime, stable, row in rows],
        failures,
        extra={"quick": args.quick, "max_cycle_error": MAX_CYCLE_ERROR},
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
