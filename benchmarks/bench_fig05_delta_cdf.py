"""Figure 5 — CDF of ΔTID transmission distances across the suite.

The paper observes that 87% of communicated values travel a ΔTID of at
most 16 (one token buffer), so cascading elevator nodes is rarely needed.
"""

from repro.harness.figures import BENCHMARK_SUITE_PARAMS, figure5


def test_fig05_transmission_distance_cdf(benchmark):
    result = benchmark.pedantic(
        figure5, kwargs={"params": BENCHMARK_SUITE_PARAMS}, rounds=1, iterations=1
    )
    print("\n" + result.text)
    fraction = result.data["fraction_within_buffer"]
    # Paper: 87% of transfers fit a 16-entry token buffer.  The reproduced
    # suite shows the same strong locality.
    assert fraction >= 0.6
    assert result.data["max_distance"] >= 16
