"""Multi-core cycle scaling of a window-aligned communicating kernel.

The windowed reduce (an ELEVATOR chain per transmission window) is the
canonical kernel the window-aligned partitioner of
``repro.sim.multicore`` exists for: shard boundaries fall on multiples of
the 64-thread window, so the ELEVATOR traffic never crosses a core.  This
bench shards it across 1/2/4/8 cores, checks the equivalence contract
(no fallback, outputs bit-identical to the single-core run, equal
operation counters) and measures the simulated-cycle speedup under the
shared-DRAM memory model — the table quoted by ROADMAP.md's "Sharding
communicating kernels" section.  Usage::

    pytest benchmarks/bench_multicore_scaling.py -s
    python benchmarks/bench_multicore_scaling.py
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from benchmarks.common import add_json_option, write_json
from repro.compiler.pipeline import compile_kernel
from repro.sim import simulate
from repro.workloads.registry import get_workload

WORKLOAD = ("reduce", {"n": 2048, "window": 64}, "partials")
CORE_COUNTS = (1, 2, 4, 8)

#: Counters that must be exactly equal between core counts.
COMPARED_COUNTERS = (
    "alu_ops",
    "fpu_ops",
    "global_loads",
    "global_stores",
    "elevator_retags",
    "elevator_constants",
    "tokens_sent",
    "noc_hops",
)


def _measure() -> list[dict]:
    name, params, output = WORKLOAD
    workload = get_workload(name)
    prepared = workload.prepare(params)
    compiled = compile_kernel(prepared.launch("dmt").graph)

    rows: list[dict] = []
    baseline = None
    for cores in CORE_COUNTS:
        result = simulate(compiled, prepared.launch("dmt"), cores=cores)
        assert "shard_fallback_reason" not in result.stats.extra, (
            f"{name} fell back on {cores} cores "
            f"[{result.stats.extra.get('shard_fallback_code')}]: "
            f"{result.stats.extra.get('shard_fallback_reason')}"
        )
        assert "shard_fallback_code" not in result.stats.extra
        prepared.check_outputs({output: result.array(output)})
        if baseline is None:
            baseline = result
        else:
            assert np.array_equal(baseline.array(output), result.array(output)), (
                f"{name}: outputs on {cores} cores differ from the single-core run"
            )
            base_counters = baseline.stats.as_dict()
            counters = result.stats.as_dict()
            for counter in COMPARED_COUNTERS:
                assert counters[counter] == base_counters[counter], (
                    f"{name}: {counter} differs on {cores} cores "
                    f"({counters[counter]} vs {base_counters[counter]})"
                )
        rows.append(
            {
                "cores": cores,
                "cycles": result.cycles,
                "speedup": baseline.cycles / result.cycles,
            }
        )
    return rows


def _print_table(rows: list[dict]) -> None:
    name, params, _ = WORKLOAD
    print(f"\n{name} dMT ({params}) under simulate(cores=...), shared DRAM:")
    header = f"{'cores':>5} {'cycles':>8} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['cores']:>5} {row['cycles']:>8} {row['speedup']:>7.2f}x")


def test_windowed_reduce_scales_across_cores():
    rows = _measure()
    _print_table(rows)
    by_cores = {row["cores"]: row for row in rows}
    # More cores must never be slower, and 4 cores must show real scaling.
    for prev, cur in zip(CORE_COUNTS, CORE_COUNTS[1:]):
        assert by_cores[cur]["cycles"] <= by_cores[prev]["cycles"]
    assert by_cores[4]["speedup"] >= 1.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_json_option(parser)
    args = parser.parse_args(argv)
    rows = _measure()
    _print_table(rows)
    name, params, _ = WORKLOAD
    write_json(
        args.json,
        "multicore_scaling",
        rows,
        extra={"workload": name, "params": params},
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
