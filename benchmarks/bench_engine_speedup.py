"""Wall-clock speedup of the batched engines over the event engine.

The event-driven simulator schedules one heap event per token per edge;
the batched engine evaluates each static node once per injection wave
over a NumPy vector of thread IDs and classifies each wave's whole
memory stream through the vectorised per-set tag walk of
``sim/analytic_cache.py``.  The window-batched engine extends the same
machinery to feed-forward communicating kernels: ELEVATOR/ELDST traffic
resolves as vector gathers and BARRIER groups as segmented reductions.
On the inter-thread-free streaming variants at 4k+ threads the batched
engine must be at least 60x faster wall-clock — including spmv's
``stream`` row, which exercises the per-node replay fallback for
data-dependent load indices (RA042); on the communicating
``dmt``/``dmt_win`` variants the window-batched engine must be at least
30x faster — always with bit-identical outputs and identical operation
counters.

Measurement protocol: the batched engine is warmed once (NumPy buffer
pools, the cached static analysis of the compiled kernel) and then timed
as the best of two runs from a collected heap, *before* the event engine
runs — a 20-second event simulation leaves enough allocator and GC
debris to double the wall clock of whatever is measured right after it,
and that debris is not the engine under test.  The protocol is
deliberately asymmetric: cold-start effects are under 1% of a 20-second
event run but ~30% of a 0.3-second batched run, so warmup/best-of only
removes noise that distorts the short measurement while leaving the
long one effectively untouched.

Run with ``pytest benchmarks/bench_engine_speedup.py -s`` to see the
measured table (it is also what the "Choosing a simulation engine"
section of ROADMAP.md quotes), or directly as a script for the CI sanity
gate at a reduced thread count::

    python benchmarks/bench_engine_speedup.py --threads 512 [--json out.json]
"""

from __future__ import annotations

import argparse
import gc
import math
import os
import sys
import time

import numpy as np

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from benchmarks.common import add_json_option, write_json
from repro.compiler.pipeline import compile_kernel
from repro.sim import simulate
from repro.workloads.registry import get_workload

#: Full-size acceptance bars.  The streaming variants ride the pure wave
#: pipeline (>= 60x); the communicating variants pay for the inter-thread
#: gather/reduction tables and the window-group wave (>= 30x).
MIN_SPEEDUP_STREAM = 60.0
MIN_SPEEDUP_WINDOW = 30.0

#: (workload, variant, params, output array, expected engine, full-size
#: bar) — all sizes give >= 4096 threads.
CASES = (
    ("matrixMul", "stream", {"dim": 64}, "c", "batched", MIN_SPEEDUP_STREAM),
    ("convolution", "stream", {"n": 4096}, "out", "batched", MIN_SPEEDUP_STREAM),
    ("reduce", "stream", {"n": 4096, "window": 32}, "partials", "batched", MIN_SPEEDUP_STREAM),
    ("hotspot", "stream", {"dim": 64}, "out", "batched", MIN_SPEEDUP_STREAM),
    ("spmv", "stream", {"rows": 512, "max_nnz": 8}, "partial", "batched", MIN_SPEEDUP_STREAM),
    ("matrixMul", "dmt", {"dim": 64}, "c", "window-batched", MIN_SPEEDUP_WINDOW),
    ("matrixMul", "dmt_win", {"dim": 64}, "c", "window-batched", MIN_SPEEDUP_WINDOW),
    ("lud", "dmt_win", {"dim": 64}, "updated", "window-batched", MIN_SPEEDUP_WINDOW),
)

#: Counters that must be exactly equal between the two engines.
COMPARED_COUNTERS = ("alu_ops", "fpu_ops", "global_loads", "global_stores")

#: Gate applied by the reduced-thread CI sanity run: at small thread
#: counts the event engine is cheap and NumPy overheads dominate, so the
#: bar is only that the batched engines are not slower while still being
#: bit-identical with equal operation counters.
MIN_SPEEDUP_SANITY = 1.0


def cases_for_threads(threads: int) -> tuple[tuple[str, str, dict, str, str, float], ...]:
    """The gated cases scaled to roughly ``threads`` threads."""
    dim = max(2, int(round(threads ** 0.5)))
    window = min(32, threads)
    reduce_n = -(-threads // window) * window  # multiple of the window
    max_nnz = 8 if threads >= 16 else 2
    spmv_rows = max(1, threads // max_nnz)
    return (
        ("matrixMul", "stream", {"dim": dim}, "c", "batched", MIN_SPEEDUP_STREAM),
        ("convolution", "stream", {"n": threads}, "out", "batched", MIN_SPEEDUP_STREAM),
        (
            "reduce",
            "stream",
            {"n": reduce_n, "window": window},
            "partials",
            "batched",
            MIN_SPEEDUP_STREAM,
        ),
        ("hotspot", "stream", {"dim": dim}, "out", "batched", MIN_SPEEDUP_STREAM),
        (
            "spmv",
            "stream",
            {"rows": spmv_rows, "max_nnz": max_nnz},
            "partial",
            "batched",
            MIN_SPEEDUP_STREAM,
        ),
        ("matrixMul", "dmt", {"dim": dim}, "c", "window-batched", MIN_SPEEDUP_WINDOW),
        ("matrixMul", "dmt_win", {"dim": dim}, "c", "window-batched", MIN_SPEEDUP_WINDOW),
        ("lud", "dmt_win", {"dim": dim}, "updated", "window-batched", MIN_SPEEDUP_WINDOW),
    )


def _run_case(
    name: str, variant: str, params: dict, output: str, expected_engine: str, bar: float
) -> dict:
    workload = get_workload(name)
    prepared = workload.prepare(params)
    launch = prepared.launch(variant)
    compiled = compile_kernel(launch.graph)

    # Warm-up, then best-of-two timed batched runs from a collected heap.
    batched = simulate(compiled, prepared.launch(variant))
    assert batched.engine == expected_engine, (
        f"{name}/{variant}: auto dispatch resolved to '{batched.engine}' "
        f"(expected '{expected_engine}')"
    )
    batched_seconds = math.inf
    for _ in range(2):
        timed_launch = prepared.launch(variant)
        gc.collect()
        start = time.perf_counter()
        batched = simulate(compiled, timed_launch)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    event_launch = prepared.launch(variant)
    gc.collect()
    start = time.perf_counter()
    event = simulate(compiled, event_launch, engine="event")
    event_seconds = time.perf_counter() - start

    assert np.array_equal(event.array(output), batched.array(output)), (
        f"{name}/{variant}: batched outputs are not bit-identical to the event engine"
    )
    prepared.check_outputs({output: batched.array(output)})
    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter in COMPARED_COUNTERS:
        assert event_counters[counter] == batched_counters[counter], (
            f"{name}/{variant}: {counter} differs "
            f"(event={event_counters[counter]}, batched={batched_counters[counter]})"
        )

    return {
        "workload": name,
        "variant": variant,
        "engine": batched.engine,
        "threads": launch.num_threads,
        "event_seconds": event_seconds,
        "batched_seconds": batched_seconds,
        "speedup": event_seconds / batched_seconds,
        "min_speedup": bar,
    }


def _print_table(rows: list[dict]) -> None:
    header = (
        f"{'workload':<14} {'variant':<8} {'engine':<15} {'threads':>8} "
        f"{'event [s]':>10} {'batched [s]':>12} {'speedup':>8}"
    )
    print("\n" + header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['workload']:<14} {row['variant']:<8} {row['engine']:<15} "
            f"{row['threads']:>8} {row['event_seconds']:>10.2f} "
            f"{row['batched_seconds']:>12.3f} {row['speedup']:>7.1f}x"
        )


def test_engine_speedup_at_4k_threads():
    rows = [_run_case(*case) for case in CASES]
    _print_table(rows)

    for row in rows:
        assert row["threads"] >= 4096
        assert row["speedup"] >= row["min_speedup"], (
            f"{row['workload']}/{row['variant']}: {row['engine']} engine only "
            f"{row['speedup']:.1f}x faster (required >= {row['min_speedup']}x)"
        )


def main(argv: list[str] | None = None) -> int:
    """Reduced-thread sanity gate used by CI (``--threads 512``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threads",
        type=int,
        default=4096,
        help="approximate thread count per case (default: the full 4096)",
    )
    add_json_option(parser)
    args = parser.parse_args(argv)
    if args.threads < 2:
        parser.error("--threads must be >= 2")

    sanity = args.threads < 4096
    rows = [
        _run_case(name, variant, params, output, engine, MIN_SPEEDUP_SANITY if sanity else bar)
        for name, variant, params, output, engine, bar in cases_for_threads(args.threads)
    ]
    _print_table(rows)
    failures = [
        f"{row['workload']}/{row['variant']}: {row['engine']} engine only "
        f"{row['speedup']:.2f}x faster (required >= {row['min_speedup']}x)"
        for row in rows
        if row["speedup"] < row["min_speedup"]
    ]
    for failure in failures:
        print(f"FAIL: {failure}")
    write_json(
        args.json,
        "engine_speedup",
        rows,
        failures,
        extra={"threads": args.threads},
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
