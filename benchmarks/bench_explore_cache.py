"""Explore-subsystem smoke gate: cold campaign, then 100% cache hits.

Runs a small 4-point campaign (2 token-buffer depths x 2 workloads at 128
threads) twice against a throwaway cache directory and asserts that the
second run re-simulates nothing — the content-addressed cache must turn a
byte-identical campaign into pure hits.  The measured cold-vs-cached wall
clock is the table quoted by ROADMAP.md's "Design-space exploration"
section.  Usage::

    pytest benchmarks/bench_explore_cache.py -s
    python benchmarks/bench_explore_cache.py [--jobs N]
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from benchmarks.common import add_json_option, write_json
from repro.explore.runner import run_campaign
from repro.explore.spec import CampaignSpec

#: 2 workloads x 2 token-buffer depths, both at 128 threads.
SPEC = CampaignSpec(
    name="explore-smoke",
    workloads=("convolution", "reduce"),
    variants=("dmt",),
    params={"convolution": {"n": 128}, "reduce": {"n": 128, "window": 32}},
    grid=(("token_buffer.entries", (8, 16)),),
)


def _measure(jobs: int) -> dict:
    # Explicit try/finally instead of TemporaryDirectory so the cache
    # directory is removed even when a worker crash leaves files open or
    # an assertion fires mid-measure; cleanup errors never mask the
    # benchmark's own failure.
    cache_dir = tempfile.mkdtemp(prefix="explore-cache-")
    try:
        started = time.perf_counter()
        cold = run_campaign(SPEC, jobs=jobs, cache_dir=cache_dir)
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_campaign(SPEC, jobs=jobs, cache_dir=cache_dir)
        warm_s = time.perf_counter() - started
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    assert cold.total == 4, f"expected 4 points, got {cold.total}"
    assert not cold.errors, [o.record.get("error") for o in cold.errors]
    assert cold.misses == 4, "first run must simulate everything"
    assert warm.hits == warm.total == 4, (
        f"second run must be 100% cache hits, got {warm.hits}/{warm.total}"
    )
    assert warm.misses == 0
    return {"points": cold.total, "cold_s": cold_s, "warm_s": warm_s}


def _print_table(row: dict, jobs: int) -> None:
    print(f"\nexplore campaign '{SPEC.name}' ({row['points']} points, jobs={jobs}):")
    header = f"{'run':>8} {'wall [s]':>9} {'hits':>5}"
    print(header)
    print("-" * len(header))
    print(f"{'cold':>8} {row['cold_s']:>9.2f} {'0/4':>5}")
    print(f"{'cached':>8} {row['warm_s']:>9.2f} {'4/4':>5}")
    print(f"cached run is {row['cold_s'] / max(row['warm_s'], 1e-9):.0f}x faster")


def test_second_campaign_run_is_all_cache_hits():
    row = _measure(jobs=2)
    _print_table(row, jobs=2)
    assert row["warm_s"] < row["cold_s"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    add_json_option(parser)
    args = parser.parse_args(argv)
    row = _measure(jobs=args.jobs)
    _print_table(row, jobs=args.jobs)
    write_json(args.json, "explore_cache", [row], extra={"jobs": args.jobs})
    return 0


if __name__ == "__main__":
    sys.exit(main())
