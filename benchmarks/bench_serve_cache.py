"""Serve-layer cache gate: a warm request must be >= 50x faster than cold.

Boots an embedded :class:`~repro.serve.client.LocalServer` on a throwaway
store, issues the same ``POST /v1/simulate`` request (matrixMul, dmt)
cold and then repeatedly warm over real HTTP, and asserts:

* the cold request is a ``miss`` that simulates, every warm repeat is a
  ``hit`` that performs **zero** simulations (the service's own
  simulation counter must not move);
* the best warm round trip is at least ``MIN_SPEEDUP``x (50x) faster
  than the cold one — the difference between answering from the
  content-addressed record store and re-running the simulator.

Usage::

    pytest benchmarks/bench_serve_cache.py -s
    python benchmarks/bench_serve_cache.py [--dim N] [--repeats N] [--json out.json]
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from benchmarks.common import add_json_option, write_json
from repro.serve.client import LocalServer

#: Warm HTTP round trips are a few milliseconds; a dim=16 matrixMul
#: simulation is a couple of seconds — orders of magnitude of headroom
#: over this floor, while still catching a broken memo path instantly.
MIN_SPEEDUP = 50.0


def _measure(dim: int, repeats: int) -> dict:
    body = {"workload": "matrixMul", "variant": "dmt", "params": {"dim": dim}}
    store = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        with LocalServer(store_dir=store) as server:
            started = time.perf_counter()
            status, cold = server.request("POST", "/v1/simulate", body)
            cold_s = time.perf_counter() - started
            assert status == 200 and cold["cache"] == "miss", (status, cold.get("cache"))
            assert cold["status"] == "ok", cold

            simulations = server.service.metrics.counter("serve.simulations")
            warm_times = []
            for _ in range(repeats):
                started = time.perf_counter()
                status, warm = server.request("POST", "/v1/simulate", body)
                warm_times.append(time.perf_counter() - started)
                assert status == 200 and warm["cache"] == "hit", (status, warm.get("cache"))
            assert server.service.metrics.counter("serve.simulations") == simulations, (
                "warm requests must perform zero simulations"
            )
            assert warm["record"] == cold["record"], "hit must return the cold run's record"
            warm_s = min(warm_times)
    finally:
        shutil.rmtree(store, ignore_errors=True)
    return {
        "dim": dim,
        "cycles": cold["record"]["result"]["cycles"],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / max(warm_s, 1e-9),
    }


def _print_table(row: dict) -> None:
    print(f"\nserved matrixMul dmt dim={row['dim']} ({row['cycles']} cycles):")
    header = f"{'request':>8} {'wall [s]':>10} {'cache':>6}"
    print(header)
    print("-" * len(header))
    print(f"{'cold':>8} {row['cold_s']:>10.3f} {'miss':>6}")
    print(f"{'warm':>8} {row['warm_s']:>10.4f} {'hit':>6}")
    print(f"warm request is {row['speedup']:.0f}x faster (gate: >= {MIN_SPEEDUP:.0f}x)")


def test_warm_request_is_50x_faster_than_cold():
    row = _measure(dim=16, repeats=5)
    _print_table(row)
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"warm/cold speedup {row['speedup']:.1f}x below the {MIN_SPEEDUP:.0f}x gate"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=5)
    add_json_option(parser)
    args = parser.parse_args(argv)
    row = _measure(dim=args.dim, repeats=args.repeats)
    _print_table(row)
    failures = []
    if row["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"warm/cold speedup {row['speedup']:.1f}x below the {MIN_SPEEDUP:.0f}x gate"
        )
    write_json(args.json, "serve_cache", [row], failures=failures)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
