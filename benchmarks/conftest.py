"""Benchmark-harness options.

``--engine`` forces every dataflow simulation of the benchmark suite onto
one engine (``auto``/``event``/``batched``/``window-batched``) so
regressions in any engine fail fast, e.g.::

    pytest benchmarks/ --benchmark-only --engine batched

Forcing an engine is best-effort: :func:`repro.sim.simulate` degrades a
forced engine to a capable one when the graph demands it (a ``batched``
sweep runs communicating kernels window-batched when they are
feed-forward, and on the event engine otherwise).
"""

from __future__ import annotations

import pytest

from repro.sim.cycle import ENGINES


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--engine",
        action="store",
        default="auto",
        choices=ENGINES,
        help="dataflow simulation engine used by the benchmark suite",
    )


@pytest.fixture
def engine(request: pytest.FixtureRequest) -> str:
    """The engine selected with ``--engine`` (default ``auto``)."""
    return request.config.getoption("--engine")
