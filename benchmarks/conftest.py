"""Benchmark-harness options.

``--engine`` forces every dataflow simulation of the benchmark suite onto
one engine (``auto``/``event``/``batched``) so regressions in either
engine fail fast, e.g.::

    pytest benchmarks/ --benchmark-only --engine batched

Forcing ``batched`` is best-effort: kernels with inter-thread
communication (every mt/dmt Table 3 variant) cannot run on the batched
engine and keep using the event engine (see ``run_sharded``).
"""

from __future__ import annotations

import pytest

from repro.sim.cycle import ENGINES


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--engine",
        action="store",
        default="auto",
        choices=ENGINES,
        help="dataflow simulation engine used by the benchmark suite",
    )


@pytest.fixture
def engine(request: pytest.FixtureRequest) -> str:
    """The engine selected with ``--engine`` (default ``auto``)."""
    return request.config.getoption("--engine")
