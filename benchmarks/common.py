"""Shared helpers for the benchmark harness.

The full-suite comparison (9 kernels x 3 architectures) is computed once
per pytest session and reused by the Figure 11 and Figure 12 benches.
The suite honours the ``--engine`` option (see ``benchmarks/conftest.py``)
so both simulation engines can be exercised by the same drivers.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.comparison import ComparisonTable
from repro.harness.experiments import run_suite
from repro.harness.figures import BENCHMARK_SUITE_PARAMS


@lru_cache(maxsize=None)
def cached_suite(engine: str = "auto") -> ComparisonTable:
    """Run the Table 3 suite on all three architectures once and cache it."""
    return run_suite(params=BENCHMARK_SUITE_PARAMS, engine=engine)
