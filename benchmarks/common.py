"""Shared helpers for the benchmark harness.

The full-suite comparison (9 kernels x 3 architectures) is computed once
per pytest session and reused by the Figure 11 and Figure 12 benches.
The suite honours the ``--engine`` option (see ``benchmarks/conftest.py``)
so both simulation engines can be exercised by the same drivers.

Every CLI benchmark runner also supports ``--json out.json``
(:func:`add_json_option` / :func:`write_json`): the gate's measured
numbers are written as a machine-readable record so CI can merge them
into one ``BENCH_ci.json`` artifact (``python benchmarks/common.py
--merge BENCH_ci.json bench_*.json``) instead of throwing the
trajectory away with the job log.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from functools import lru_cache

__all__ = ["add_json_option", "cached_suite", "merge_json", "write_json"]


@lru_cache(maxsize=None)
def cached_suite(engine: str = "auto"):
    """Run the Table 3 suite on all three architectures once and cache it.

    Imports stay local so the CLI ``--merge`` mode works without the
    simulator package on ``sys.path``.
    """
    from repro.harness.experiments import run_suite
    from repro.harness.figures import BENCHMARK_SUITE_PARAMS

    return run_suite(params=BENCHMARK_SUITE_PARAMS, engine=engine)


def add_json_option(parser: argparse.ArgumentParser) -> None:
    """Register the shared ``--json PATH`` option on a runner's parser."""
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the gate's measured numbers to PATH as JSON",
    )


def write_json(
    path: "str | None",
    benchmark: str,
    rows: list,
    failures: "list[str] | None" = None,
    extra: "dict | None" = None,
) -> None:
    """Write one runner's machine-readable result record (no-op if no path)."""
    if not path:
        return
    payload = {
        "benchmark": benchmark,
        "ok": not failures,
        "failures": list(failures or ()),
        "rows": rows,
        "python": platform.python_version(),
    }
    if extra:
        payload.update(extra)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def merge_json(out_path: str, in_paths: list[str]) -> dict:
    """Merge per-gate records into one trajectory file keyed by benchmark."""
    merged: dict = {"gates": {}, "ok": True}
    for path in in_paths:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        name = record.get("benchmark", os.path.basename(path))
        merged["gates"][name] = record
        merged["ok"] = merged["ok"] and bool(record.get("ok", True))
    merged["python"] = platform.python_version()
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return merged


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--merge",
        nargs="+",
        metavar=("OUT", "IN"),
        help="merge per-gate JSON records (IN...) into one trajectory file OUT",
    )
    args = parser.parse_args(argv)
    if not args.merge or len(args.merge) < 2:
        parser.error("--merge needs an output path and at least one input record")
    merged = merge_json(args.merge[0], args.merge[1:])
    print(
        f"merged {len(merged['gates'])} gate record(s) into {args.merge[0]} "
        f"(ok={merged['ok']})"
    )
    return 0 if merged["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
