"""Ablation — barrier/scratchpad synchronisation vs. dataflow synchronisation.

Runs the same convolution on the plain MT-CGRA (scratchpad + work-group
barrier) and on dMT-CGRA (point-to-point dataflow synchronisation) and
reports the cycle and scratchpad-traffic cost of the barrier, which is
exactly the overhead Sec. 2 argues direct inter-thread communication
removes.
"""

from repro.harness.experiments import run_workload

_PARAMS = {"n": 512, "k0": 0.25, "k1": 0.5, "k2": 0.25}


def _compare():
    mt = run_workload("convolution", "mt", params=_PARAMS)
    dmt = run_workload("convolution", "dmt", params=_PARAMS)
    return mt, dmt


def test_ablation_barrier_cost(benchmark):
    mt, dmt = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print("\nvariant   cycles   scratch accesses   barrier waits   energy [uJ]")
    for result in (mt, dmt):
        scratch = result.counters["scratch_loads"] + result.counters["scratch_stores"]
        print(
            f"{result.architecture:<8} {result.cycles:>7}   {scratch:>16}   "
            f"{result.counters['barrier_wait_cycles']:>13}   {result.energy.total_uj:>10.2f}"
        )
    # The dMT variant removes the scratchpad and the barrier entirely...
    assert dmt.counters["scratch_loads"] == dmt.counters["scratch_stores"] == 0
    assert dmt.counters["barrier_wait_cycles"] == 0
    assert mt.counters["barrier_wait_cycles"] > 0
    # ...and is faster and more energy efficient for it.
    assert dmt.cycles < mt.cycles
    assert dmt.energy.total_pj < mt.energy.total_pj
