"""Figure 11 — speedup of MT-CGRA and dMT-CGRA over the Fermi SM.

Paper results: dMT-CGRA geomean 4.5x (max 13.5x), MT-CGRA geomean 2.3x.
The reproduction checks the *shape*: dMT-CGRA beats the plain MT-CGRA on
every kernel (the paper's ~1.95x average advantage), dMT-CGRA beats the
Fermi baseline on the suite geomean, and scan — the sequential outlier the
paper calls out — shows no significant dMT speedup.
"""

from benchmarks.common import cached_suite
from repro.harness.figures import figure11


def test_fig11_speedup_over_fermi(benchmark, engine):
    table = benchmark.pedantic(cached_suite, args=(engine,), rounds=1, iterations=1)
    result = figure11(table=table)
    print("\n" + result.text)

    speedup_mt = result.data["speedup_mt"]
    speedup_dmt = result.data["speedup_dmt"]

    # dMT-CGRA outperforms MT-CGRA on every kernel (the paper's core claim).
    for name in speedup_dmt:
        assert speedup_dmt[name] > speedup_mt[name], name

    # dMT-CGRA outperforms the Fermi baseline overall and by a wide margin
    # on the forwarding-friendly kernels.
    assert result.data["geomean_dmt"] > 1.0
    assert result.data["max_dmt"] > 2.0
    assert speedup_dmt["matrixMul"] > 1.5
    assert speedup_dmt["reduce"] > 1.5

    # scan is the sequential outlier: no significant dMT speedup (paper Sec. 5.2).
    assert speedup_dmt["scan"] < 1.5
