"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that editable installs also work on environments whose setuptools/pip are
too old for PEP 660 editable wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
