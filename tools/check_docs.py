#!/usr/bin/env python3
"""Docs lint: every ``repro.*`` symbol in a docs code block must import.

Scans the fenced code blocks of ``README.md`` and ``docs/*.md`` for

* ``import repro...`` / ``from repro... import name, ...`` statements,
* dotted references such as ``repro.sim.simulate`` or
  ``python -m repro.serve``,

and verifies each one resolves: modules import cleanly and attribute
chains exist on the imported module.  Documentation that names a symbol
which has been renamed or removed fails CI instead of silently rotting.

Usage::

    PYTHONPATH=src python tools/check_docs.py [files...]

With no arguments it checks ``README.md`` and every ``docs/*.md`` under
the repository root.  Exit status is the number of broken references.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

_FENCE = re.compile(r"^```")
_IMPORT = re.compile(r"^\s*import\s+(repro[\w.]*)")
_FROM_IMPORT = re.compile(r"^\s*from\s+(repro[\w.]*)\s+import\s+([\w ,]+)")
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_]\w*)+")


def code_blocks(text: str) -> list[str]:
    """Return the contents of every fenced code block in ``text``."""
    blocks: list[str] = []
    current: list[str] | None = None
    for line in text.splitlines():
        if _FENCE.match(line):
            if current is None:
                current = []
            else:
                blocks.append("\n".join(current))
                current = None
            continue
        if current is not None:
            current.append(line)
    return blocks


def references(block: str) -> set[str]:
    """Extract every checkable ``repro...`` reference from one code block."""
    refs: set[str] = set()
    for line in block.splitlines():
        match = _IMPORT.match(line)
        if match:
            refs.add(match.group(1))
            continue
        match = _FROM_IMPORT.match(line)
        if match:
            module = match.group(1)
            for name in match.group(2).split(","):
                name = name.strip()
                if name:
                    refs.add(f"{module}.{name}")
            continue
        refs.update(_DOTTED.findall(line))
    return refs


def resolve(reference: str) -> str | None:
    """Return an error string if ``reference`` does not resolve, else None."""
    parts = reference.split(".")
    module = None
    module_name = ""
    # Longest importable prefix wins; the rest must be an attribute chain.
    for split in range(len(parts), 0, -1):
        candidate = ".".join(parts[:split])
        try:
            module = importlib.import_module(candidate)
            module_name = candidate
            break
        except ImportError:
            continue
        except Exception as exc:  # noqa: BLE001 - import-time crash is a finding
            return f"importing '{candidate}' raised {type(exc).__name__}: {exc}"
    if module is None:
        return f"no importable prefix of '{reference}'"
    obj = module
    for attr in parts[len(module_name.split(".")):]:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return f"'{module_name}' has no attribute path '{reference}'"
    return None


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    refs: set[str] = set()
    for block in code_blocks(text):
        refs |= references(block)
    label = path.relative_to(REPO) if path.is_relative_to(REPO) else path
    for reference in sorted(refs):
        problem = resolve(reference)
        if problem is not None:
            errors.append(f"{label}: {reference}: {problem}")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        paths = [Path(arg).resolve() for arg in argv]
    else:
        paths = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    paths = [path for path in paths if path.exists()]
    if not paths:
        print("check_docs: no documentation files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    checked = 0
    for path in paths:
        file_errors = check_file(path)
        errors.extend(file_errors)
        checked += 1
    for error in errors:
        print(f"ERROR {error}", file=sys.stderr)
    print(f"check_docs: {checked} file(s), {len(errors)} broken repro.* reference(s)")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
