"""Pass manager: run the analyzer's passes and cache the verdicts.

:func:`analyze_kernel` is the single entry point.  It runs the ordered
passes (structure, deadlock, scratch-race, shardability, engine,
critical path) over a compiled kernel and returns an
:class:`AnalysisResult` whose *verdict* fields are what the dynamic
layers consume:

* ``result.engine`` — what ``engine="auto"`` dispatch resolves to;
* ``result.order_stable`` / ``result.prepass_nodes`` — the batched
  engine's replay-order decision;
* ``result.shard`` — the window-LCM facts ``plan_shards`` acts on;
* ``result.min_cycles`` — the static critical-path lower bound the
  harness reports next to measured cycles.

Results are cached on the compiled kernel (``_analysis`` slot, the same
idiom as the batched engine's ``_batched_static``), keyed by a cheap
graph signature plus the configuration digest so a mutated graph or a
swapped config re-analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.analyze.passes import (
    critical_path_bound,
    deadlock_diagnostics,
    engine_diagnostics,
    pure_load_ancestors,
    scratch_race_diagnostics,
    shard_diagnostics,
)
from repro.analyze.structure import structure_diagnostics
from repro.config.system import config_digest
from repro.graph.dfg import DataflowGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.compiler.pipeline import CompiledKernel

__all__ = ["AnalysisResult", "ShardVerdict", "analyze_kernel"]


@dataclass(frozen=True)
class ShardVerdict:
    """The shardability pass's verdict in the shape ``plan_shards`` wants.

    ``fallback_code`` is ``None`` exactly when a window-aligned
    multi-core cut is legal (``RA034``); otherwise it names the blocking
    diagnostic (``RA030``/``RA031``/``RA032``) and ``fallback_reason``
    carries the matching human text.
    """

    windows: tuple[int, ...]
    window_lcm: int
    fallback_code: str | None
    fallback_reason: str | None

    @property
    def shardable(self) -> bool:
        return self.fallback_code is None


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the analyzer derived about one compiled kernel."""

    diagnostics: tuple[Diagnostic, ...]
    engine: str
    order_stable: bool
    prepass_nodes: frozenset[int] | None
    deadlock: bool
    shard: ShardVerdict
    min_cycles: int
    signature: tuple[Any, ...] = field(repr=False, default=())

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Clean bill: no errors and no warnings (INFO verdicts are fine)."""
        return not self.errors() and not self.warnings()

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def __getitem__(self, code: str) -> Diagnostic:
        for diagnostic in self.diagnostics:
            if diagnostic.code == code:
                return diagnostic
        raise KeyError(code)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "engine": self.engine,
            "order_stable": self.order_stable,
            "deadlock": self.deadlock,
            "shardable": self.shard.shardable,
            "shard_fallback_code": self.shard.fallback_code,
            "window_lcm": self.shard.window_lcm,
            "min_cycles": self.min_cycles,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _graph_signature(graph: DataflowGraph) -> tuple[Any, ...]:
    edges = tuple(sorted((e.src, e.dst, e.dst_port) for e in graph.edges()))
    nodes = tuple(sorted(n.node_id for n in graph.nodes))
    return (nodes, edges, int(graph.metadata.get("num_threads", 0)))


def analyze_kernel(compiled: "CompiledKernel") -> AnalysisResult:
    """Run all passes over ``compiled``, with caching on the kernel."""
    signature = (_graph_signature(compiled.graph), config_digest(compiled.config))
    cached = compiled.__dict__.get("_analysis")
    if cached is not None and cached.signature == signature:
        return cached

    graph = compiled.graph
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(structure_diagnostics(graph))
    deadlock_diags = deadlock_diagnostics(graph, compiled.config)
    diagnostics.extend(deadlock_diags)
    diagnostics.extend(scratch_race_diagnostics(graph))
    shard_diags = shard_diagnostics(graph)
    diagnostics.extend(shard_diags)
    engine_diags = engine_diagnostics(graph)
    diagnostics.extend(engine_diags)
    min_cycles, cp_diag = critical_path_bound(compiled)
    diagnostics.append(cp_diag)

    shard = _shard_verdict(shard_diags)
    codes = {d.code for d in engine_diags}
    if "RA041" in codes:
        engine = "event"
    elif "RA044" in codes:
        engine = "window-batched"
    else:
        engine = "batched"
    prepass = pure_load_ancestors(graph)
    result = AnalysisResult(
        diagnostics=tuple(diagnostics),
        engine=engine,
        order_stable=prepass is not None,
        prepass_nodes=frozenset(prepass) if prepass is not None else None,
        deadlock=any(d.code in ("RA010", "RA011") for d in deadlock_diags),
        shard=shard,
        min_cycles=min_cycles,
        signature=signature,
    )
    compiled.__dict__["_analysis"] = result
    return result


def _shard_verdict(shard_diags: list[Diagnostic]) -> ShardVerdict:
    verdict = shard_diags[0]  # the pass emits exactly one RA03x diagnostic
    data = verdict.data
    if verdict.code == "RA034":
        return ShardVerdict(
            windows=tuple(data.get("windows", ())),
            window_lcm=int(data["window_lcm"]),
            fallback_code=None,
            fallback_reason=None,
        )
    return ShardVerdict(
        windows=(),
        window_lcm=int(data.get("window_lcm", 1)),
        fallback_code=verdict.code,
        fallback_reason=verdict.message,
    )
