"""Compile-time kernel analyzer with structured ``RA0xx`` diagnostics.

``analyze_kernel(compiled)`` statically derives the facts the dynamic
layers otherwise discover mid-simulation — deadlock cycles, scratchpad
races, window-LCM shard legality, engine eligibility and replay-order
stability, and a critical-path lower bound on cycles — and the dynamic
layers (``sim/cycle.py`` auto dispatch, ``sim/multicore.py`` planning,
``sim/batched.py`` replay order) consume these verdicts instead of
re-deriving them.  See ROADMAP.md "Kernel static analysis" for the code
table and the analyzer-vs-dynamic contract.

Import discipline: this package is imported by ``repro.graph.validate``
while ``repro.graph`` is still initialising, so every module here
imports only graph *sub*modules, and the sim layer only lazily.
"""

from repro.analyze.diagnostics import CODES, Diagnostic, Severity
from repro.analyze.manager import AnalysisResult, ShardVerdict, analyze_kernel
from repro.analyze.passes import (
    critical_path_bound,
    deadlock_diagnostics,
    engine_diagnostics,
    pure_load_ancestors,
    scratch_race_diagnostics,
    shard_diagnostics,
)
from repro.analyze.structure import structure_diagnostics

__all__ = [
    "AnalysisResult",
    "CODES",
    "Diagnostic",
    "Severity",
    "ShardVerdict",
    "analyze_kernel",
    "critical_path_bound",
    "deadlock_diagnostics",
    "engine_diagnostics",
    "pure_load_ancestors",
    "scratch_race_diagnostics",
    "shard_diagnostics",
    "structure_diagnostics",
]
