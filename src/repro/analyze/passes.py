"""The analyzer's kernel-level passes.

Each pass is a pure function from a graph (plus, where needed, the
system configuration or the compiled mapping) to a list of
:class:`~repro.analyze.diagnostics.Diagnostic`.  The passes statically
predict what the simulators decide dynamically, and the dynamic layers
consume these predictions instead of re-deriving them:

* :func:`deadlock_diagnostics` — what makes the engines raise
  :class:`~repro.errors.DeadlockError` at run time;
* :func:`scratch_race_diagnostics` — scratchpad write/write and
  write/read pairs not ordered by a dependence path or barrier;
* :func:`shard_diagnostics` — the window-LCM legality facts
  ``sim/multicore.py::plan_shards`` acts on;
* :func:`engine_diagnostics` / :func:`pure_load_ancestors` — the
  batched-engine eligibility and replay-order stability facts
  ``sim/cycle.py::build_simulator`` and ``sim/batched.py`` act on;
* :func:`critical_path_bound` — a static lower bound on single-core
  cycles from unit and routed-edge latencies.

Only graph submodules and the config layer are imported at module scope;
``repro.sim.cycle`` is imported lazily inside the critical-path pass so
the analyze package stays importable from ``repro.graph.validate``
mid-initialisation.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.config.system import SystemConfig
from repro.graph.dfg import DataflowGraph
from repro.graph.interthread import communication_windows
from repro.graph.node import Node
from repro.graph.opcodes import Opcode
from repro.graph.semantics import PURE_OPCODES

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.compiler.pipeline import CompiledKernel

__all__ = [
    "critical_path_bound",
    "deadlock_diagnostics",
    "engine_diagnostics",
    "pure_load_ancestors",
    "scratch_race_diagnostics",
    "shard_diagnostics",
]

#: Injected source opcodes (thread-uniform timing, no operands).
SOURCE_OPCODES = (
    Opcode.CONST,
    Opcode.TID_X,
    Opcode.TID_Y,
    Opcode.TID_Z,
    Opcode.TID_LINEAR,
)

_MEMORY_OPCODES = (
    Opcode.LOAD,
    Opcode.STORE,
    Opcode.SCRATCH_LOAD,
    Opcode.SCRATCH_STORE,
    Opcode.ELDST,
)


def _labels(graph: DataflowGraph, node_ids: Iterable[int]) -> tuple[str, ...]:
    return tuple(graph.node(nid).label() for nid in node_ids)


# --------------------------------------------------------------- deadlock pass
def _strongly_connected_components(
    nodes: list[int], successors: dict[int, list[int]]
) -> list[list[int]]:
    """Iterative Tarjan SCC over the given adjacency."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            nid, child = work[-1]
            if child == 0:
                index[nid] = lowlink[nid] = counter
                counter += 1
                stack.append(nid)
                on_stack.add(nid)
            advanced = False
            succ = successors.get(nid, [])
            while child < len(succ):
                nxt = succ[child]
                child += 1
                if nxt not in index:
                    work[-1] = (nid, child)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[nid] = min(lowlink[nid], index[nxt])
            if advanced:
                continue
            work.pop()
            if lowlink[nid] == index[nid]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == nid:
                        break
                components.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[nid])
    return components


def _has_cycle_with_nonpositive_weight(
    nodes: list[int], edges: list[tuple[int, int, int]]
) -> bool:
    """True if some cycle over ``edges`` has total weight <= 0.

    Weights are integers; scaling each edge to ``w * (n + 1) - 1`` makes
    "weight <= 0" exactly "scaled weight < 0" for any simple cycle (at
    most ``n`` edges long), so Bellman-Ford negative-cycle detection
    answers the question exactly.
    """
    scale = len(nodes) + 1
    dist = {nid: 0 for nid in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, weight in edges:
            candidate = dist[src] + weight * scale - 1
            if candidate < dist[dst]:
                dist[dst] = candidate
                changed = True
        if not changed:
            return False
    for src, dst, weight in edges:
        if dist[src] + weight * scale - 1 < dist[dst]:
            return True
    return False


def deadlock_diagnostics(graph: DataflowGraph, config: SystemConfig) -> list[Diagnostic]:
    """Statically predict run-time :class:`DeadlockError` conditions.

    The dependence graph includes temporal edges; an edge into an
    ELEVATOR with hardware shift ``d`` means the consumer thread ``t``
    depends on the producer at thread ``t - d``.  A strongly connected
    component deadlocks when

    * it contains a BARRIER (some thread's arrival waits on the barrier's
      own release — ``RA011``), or
    * its cycle shifts are not strictly one-signed: a zero-net-shift
      cycle, or two cycles shifting in opposite directions, make some
      thread depend on itself (``RA010``).

    Cyclic-but-live recurrences (all shifts one-signed, e.g. the
    prefix-sum of Fig. 6) additionally demand token-buffer slots for the
    ``|shift| + 1`` threads in flight between producer and consumer; a
    configured buffer smaller than that is flagged ``RA012`` (a hardware
    capacity hazard — the simulators' buffers are unbounded, so this
    never deadlocks a simulation).
    """
    node_ids = [node.node_id for node in graph.nodes]
    successors: dict[int, list[int]] = {nid: [] for nid in node_ids}
    weighted: list[tuple[int, int, int]] = []
    for edge in graph.edges():
        dst = graph.node(edge.dst)
        weight = int(dst.param("delta")) if dst.opcode is Opcode.ELEVATOR else 0
        successors[edge.src].append(edge.dst)
        weighted.append((edge.src, edge.dst, weight))

    out: list[Diagnostic] = []
    for component in _strongly_connected_components(node_ids, successors):
        members = set(component)
        if len(component) < 2 and not any(
            src == dst and src in members for src, dst, _ in weighted
        ):
            continue
        inner = [
            (src, dst, weight)
            for src, dst, weight in weighted
            if src in members and dst in members
        ]
        elevators = sorted(
            nid for nid in members if graph.node(nid).opcode is Opcode.ELEVATOR
        )
        barriers = sorted(
            nid for nid in members if graph.node(nid).opcode is Opcode.BARRIER
        )
        provenance = tuple(sorted(members))
        if barriers:
            out.append(
                Diagnostic(
                    code="RA011",
                    severity=Severity.ERROR,
                    message=(
                        f"barrier {_labels(graph, barriers)[0]} sits inside an "
                        f"inter-thread dependence cycle of {len(members)} nodes; "
                        "its release waits on tokens it gates"
                    ),
                    nodes=provenance,
                    labels=_labels(graph, provenance),
                    hint="break the cycle or move the barrier out of it",
                )
            )
            continue
        if not elevators:
            continue  # a non-temporal cycle; the structure pass reports RA005
        has_nonpositive = _has_cycle_with_nonpositive_weight(component, inner)
        has_nonnegative = _has_cycle_with_nonpositive_weight(
            component, [(src, dst, -weight) for src, dst, weight in inner]
        )
        if has_nonpositive and has_nonnegative:
            out.append(
                Diagnostic(
                    code="RA010",
                    severity=Severity.ERROR,
                    message=(
                        "inter-thread dependence cycle through "
                        f"{', '.join(_labels(graph, elevators))} has no consistent "
                        "thread direction (net shifts cancel); no thread's "
                        "operands can ever all arrive"
                    ),
                    nodes=provenance,
                    labels=_labels(graph, provenance),
                    hint="make every elevator in the cycle shift the same direction",
                )
            )
            continue
        entries = config.token_buffer.entries
        for nid in elevators:
            demand = abs(int(graph.node(nid).param("delta"))) + 1
            if demand > entries:
                out.append(
                    Diagnostic(
                        code="RA012",
                        severity=Severity.WARNING,
                        message=(
                            f"recurrence through {graph.node(nid).label()} keeps "
                            f"{demand} threads in flight but the token buffer has "
                            f"only {entries} entr{'y' if entries == 1 else 'ies'}"
                        ),
                        nodes=(nid,),
                        labels=_labels(graph, (nid,)),
                        hint="raise TokenBufferConfig.entries or shorten the shift",
                        data={"demand": demand, "entries": entries},
                    )
                )
    return out


# ----------------------------------------------------------- scratch-race pass
def _reachable(successors: dict[int, list[int]], start: int) -> set[int]:
    seen: set[int] = set()
    stack = list(successors.get(start, []))
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(successors.get(nid, []))
    return seen


def scratch_race_diagnostics(graph: DataflowGraph) -> list[Diagnostic]:
    """Flag scratchpad access pairs with no ordering between them.

    Two static accesses to the same scratch array are *ordered* when a
    directed dependence path connects them (same-thread ordering, e.g. a
    ``scratch_load(..., order=...)`` operand chain) — cross-thread
    visibility additionally requires a BARRIER on that path, which is the
    idiom the MT kernels use (store -> barrier -> load).  A write/write
    or write/read pair with no path either way races: which access lands
    first depends on scheduling, not the program.
    """
    scratch_nodes = graph.nodes_with_opcode(Opcode.SCRATCH_LOAD, Opcode.SCRATCH_STORE)
    if not scratch_nodes:
        return []
    successors: dict[int, list[int]] = {n.node_id: [] for n in graph.nodes}
    for edge in graph.edges():
        successors[edge.src].append(edge.dst)
    reach: dict[int, set[int]] = {
        node.node_id: _reachable(successors, node.node_id) for node in scratch_nodes
    }

    by_array: dict[str, list[Node]] = {}
    for node in scratch_nodes:
        by_array.setdefault(str(node.param("array")), []).append(node)

    def ordered(a: int, b: int) -> bool:
        return b in reach[a] or a in reach[b]

    out: list[Diagnostic] = []
    for array, nodes in sorted(by_array.items()):
        stores = [n for n in nodes if n.opcode is Opcode.SCRATCH_STORE]
        loads = [n for n in nodes if n.opcode is Opcode.SCRATCH_LOAD]
        for i, first in enumerate(stores):
            for second in stores[i + 1 :]:
                if not ordered(first.node_id, second.node_id):
                    pair = (first.node_id, second.node_id)
                    out.append(
                        Diagnostic(
                            code="RA020",
                            severity=Severity.WARNING,
                            message=(
                                f"scratch array '{array}' is written by both "
                                f"{first.label()} and {second.label()} with no "
                                "ordering between them"
                            ),
                            nodes=pair,
                            labels=_labels(graph, pair),
                            hint="order the writes through a barrier() token",
                            data={"array": array},
                        )
                    )
        for store in stores:
            for load in loads:
                if not ordered(store.node_id, load.node_id):
                    pair = (store.node_id, load.node_id)
                    out.append(
                        Diagnostic(
                            code="RA021",
                            severity=Severity.WARNING,
                            message=(
                                f"scratch array '{array}' write {store.label()} is "
                                f"unordered against read {load.label()}"
                            ),
                            nodes=pair,
                            labels=_labels(graph, pair),
                            hint=(
                                "pass a barrier() token as the load's 'order' "
                                "operand so the read waits for the writes"
                            ),
                            data={"array": array},
                        )
                    )
    return out


# ----------------------------------------------------------- shardability pass
def shard_diagnostics(graph: DataflowGraph) -> list[Diagnostic]:
    """Emit the window-LCM shard-legality facts ``plan_shards`` acts on.

    All findings are INFO: not being shardable is a property, not a
    defect (the launch transparently runs on one core).  Exactly one of
    ``RA030``/``RA031``/``RA032``/``RA033``/``RA034`` states the default
    plan's verdict; the fallback message texts match ``plan_shards`` so
    ``stats.extra["shard_fallback_reason"]`` stays human-readable.
    """
    num_threads = int(graph.metadata.get("num_threads", 0))
    replicas = int(graph.metadata.get("replicas", 1))
    windows, reason = communication_windows(graph)
    out: list[Diagnostic] = []
    if reason is not None:
        if "transmission window" in reason:
            offenders = tuple(
                node.node_id
                for node in graph.nodes_with_opcode(Opcode.ELEVATOR, Opcode.ELDST)
                if node.param("window") is None
            )
            out.append(
                Diagnostic(
                    code="RA030",
                    severity=Severity.INFO,
                    message=reason,
                    nodes=offenders,
                    labels=_labels(graph, offenders),
                    hint="give every ELEVATOR/ELDST a bounded window= to enable sharding",
                )
            )
        else:
            offenders = tuple(
                node.node_id
                for node in graph.nodes_with_opcode(Opcode.BARRIER)
                if node.param("window") is None
            )
            out.append(
                Diagnostic(
                    code="RA031",
                    severity=Severity.INFO,
                    message=reason,
                    nodes=offenders,
                    labels=_labels(graph, offenders),
                    hint="window the barrier so scratch traffic stays inside a shard",
                )
            )
        return out

    lcm = 1
    for window in windows:
        lcm = math.lcm(lcm, window)
    if windows and lcm >= num_threads:
        out.append(
            Diagnostic(
                code="RA032",
                severity=Severity.INFO,
                message=(
                    f"transmission windows span the whole block "
                    f"(LCM {lcm} >= {num_threads} threads)"
                ),
                data={"window_lcm": lcm, "num_threads": num_threads},
            )
        )
        return out
    base_block = max(1, replicas)
    aligned = -(-base_block // lcm) * lcm
    if aligned >= num_threads:
        out.append(
            Diagnostic(
                code="RA033",
                severity=Severity.INFO,
                message=(
                    f"shard block of {aligned} leaves no work for a second core "
                    f"({num_threads} threads)"
                ),
                data={"block": aligned, "window_lcm": lcm, "num_threads": num_threads},
            )
        )
        return out
    out.append(
        Diagnostic(
            code="RA034",
            severity=Severity.INFO,
            message=(
                f"window-aligned cut is legal: block "
                f"ceil({base_block}/{lcm})*{lcm} = {aligned} divides the "
                f"{num_threads}-thread block into whole windows (LCM {lcm})"
            ),
            data={
                "block": aligned,
                "window_lcm": lcm,
                "windows": sorted(set(windows)),
                "num_threads": num_threads,
            },
        )
    )
    return out


# ---------------------------------------------- engine / replay-order pass
def pure_load_ancestors(graph: DataflowGraph) -> set[int] | None:
    """Memory issue points plus their ancestors when all ancestors are pure.

    This is the batched engines' replay-order stability condition: when
    every LOAD *and* every ELDST node's operand computation (index,
    predicate, optional ordering token) is pure/source-only, the issue
    cycle of every memory access is derivable before any access is
    classified, so the whole wave's access stream can be replayed in the
    event engine's order.  Returns ``None`` when some access operand
    depends on another memory access — the engines then fall back to
    per-node replay order.  ``sim/batched.py`` imports this function, so
    the static verdict and the dynamic behaviour agree by construction.
    (Inter-thread-free graphs have no ELDST nodes, so for them this is
    exactly the original load-only condition.)
    """
    inputs = {
        node.node_id: sorted(graph.inputs_of(node.node_id).values())
        for node in graph.nodes
    }
    accesses = graph.nodes_with_opcode(Opcode.LOAD, Opcode.ELDST)
    prepass: set[int] = {access.node_id for access in accesses}
    visited: set[int] = set()
    for access in accesses:
        stack = list(inputs[access.node_id])
        while stack:
            nid = stack.pop()
            if nid in visited:
                continue
            node = graph.node(nid)
            if node.opcode not in PURE_OPCODES and node.opcode not in SOURCE_OPCODES:
                return None  # an access operand depends on a memory access
            visited.add(nid)
            stack.extend(inputs[nid])
    return prepass | visited


def _replay_order_diagnostics(graph: DataflowGraph) -> Diagnostic:
    """The RA042/RA043 replay-order verdict for a batchable kernel."""
    prepass = pure_load_ancestors(graph)
    if prepass is None:
        impure = tuple(
            access.node_id
            for access in graph.nodes_with_opcode(Opcode.LOAD, Opcode.ELDST)
            if _index_touches_memory(graph, access)
        )
        return Diagnostic(
            code="RA042",
            severity=Severity.INFO,
            message=(
                "a load index depends on another memory access; the batched "
                "engine replays loads per node instead of in event order"
            ),
            nodes=impure,
            labels=_labels(graph, impure),
        )
    return Diagnostic(
        code="RA043",
        severity=Severity.INFO,
        message=(
            "every load index is pure; the batched engine replays the "
            "load stream in the event engine's exact order"
        ),
        data={"prepass_nodes": len(prepass)},
    )


def engine_diagnostics(graph: DataflowGraph) -> list[Diagnostic]:
    """Classify the kernel for engine dispatch (all INFO).

    Exactly one of ``RA040`` (batched-eligible, no inter-thread nodes),
    ``RA044`` (window-batchable communicating kernel) or ``RA041``
    (event-only) is emitted, mirroring ``resolve_engine("auto", graph)``;
    for either batched engine ``RA043``/``RA042`` states whether the
    analytic cache model keeps the event engine's replay order or
    degrades to per-node replay.  ``RA041`` kernels additionally carry
    ``RA045`` naming the reason the window-group path is out of reach.
    """
    out: list[Diagnostic] = []
    interthread = tuple(
        node.node_id
        for node in graph.nodes_with_opcode(Opcode.ELEVATOR, Opcode.ELDST, Opcode.BARRIER)
    )
    if interthread:
        from repro.graph.interthread import window_batch_problem

        problem = window_batch_problem(graph)
        if problem is None:
            windows, _ = communication_windows(graph)
            lcm = math.lcm(*windows) if windows else None
            out.append(
                Diagnostic(
                    code="RA044",
                    severity=Severity.INFO,
                    message=(
                        f"{len(interthread)} inter-thread node(s) are "
                        "feed-forward and window-bounded; eligible for the "
                        "window-batched engine"
                    ),
                    nodes=interthread,
                    labels=_labels(graph, interthread),
                    data={"window_lcm": lcm},
                )
            )
            out.append(_replay_order_diagnostics(graph))
        else:
            out.append(
                Diagnostic(
                    code="RA041",
                    severity=Severity.INFO,
                    message=(
                        f"{len(interthread)} inter-thread node(s) require the "
                        "event-driven engine"
                    ),
                    nodes=interthread,
                    labels=_labels(graph, interthread),
                )
            )
            out.append(
                Diagnostic(
                    code="RA045",
                    severity=Severity.INFO,
                    message=f"not window-batchable: {problem}",
                    data={"problem": problem},
                )
            )
        return out
    out.append(
        Diagnostic(
            code="RA040",
            severity=Severity.INFO,
            message="no inter-thread nodes; eligible for the wave-batched engine",
        )
    )
    out.append(_replay_order_diagnostics(graph))
    return out


def _index_touches_memory(graph: DataflowGraph, load: Node) -> bool:
    stack = list(graph.inputs_of(load.node_id).values())
    seen: set[int] = set()
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        if graph.node(nid).opcode in _MEMORY_OPCODES:
            return True
        stack.extend(graph.inputs_of(nid).values())
    return False


# ------------------------------------------------------- critical-path pass
def critical_path_bound(compiled: "CompiledKernel") -> tuple[int, Diagnostic]:
    """Static lower bound on single-core cycles, with its diagnostic.

    Both engines obey: thread at injection position ``p`` becomes live at
    ``p // replicas``; a node fires only after all operands arrive
    (producer completion + routed edge latency) and completes at least
    one cycle later (memory nodes are floored at one cycle — hierarchy
    latencies only add).  The last-injected thread must still traverse
    the longest source-to-sink structural path, so

    ``cycles >= (threads - 1) // replicas + max over sinks of path``

    is a true lower bound for the event and batched engines alike on one
    core (sharding divides the injection term across cores).
    """
    from repro.sim.cycle import edge_timing, unit_latency

    graph = compiled.graph
    edge_latency, _ = edge_timing(compiled)
    config = compiled.config

    def node_latency(node: Node) -> int:
        if node.opcode in _MEMORY_OPCODES:
            return 1  # hierarchy access latency is >= 1 cycle; exact value varies
        return unit_latency(config, node)

    # A thread retires when its effect nodes complete (the engines' sink
    # set: STORE/SCRATCH_STORE/OUTPUT) — not on Node.is_sink, since a
    # STORE still produces an ack token.
    effect_opcodes = (Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT)
    completion: dict[int, int] = {}
    longest_sink_path = 0
    for node in graph.topological_order(ignore_temporal=True):
        ready = 0
        if node.opcode is not Opcode.ELEVATOR:  # edges into elevators are temporal
            for src in graph.inputs_of(node.node_id).values():
                ready = max(
                    ready, completion[src] + edge_latency[(src, node.node_id)]
                )
        completion[node.node_id] = ready + node_latency(node)
        if node.opcode in effect_opcodes:
            longest_sink_path = max(longest_sink_path, completion[node.node_id])

    replicas = max(1, compiled.replicas)
    injection = (max(1, compiled.num_threads) - 1) // replicas
    bound = injection + longest_sink_path
    diagnostic = Diagnostic(
        code="RA050",
        severity=Severity.INFO,
        message=(
            f"single-core cycles >= {bound} "
            f"(injection {injection} + critical path {longest_sink_path})"
        ),
        data={
            "min_cycles": bound,
            "injection": injection,
            "critical_path": longest_sink_path,
            "replicas": replicas,
        },
    )
    return bound, diagnostic
