"""CLI for the static kernel analyzer.

Examples::

    python -m repro.analyze convolution                # all variants
    python -m repro.analyze scan --variant dmt         # one kernel
    python -m repro.analyze --registry                 # every workload x variant
    python -m repro.analyze --registry --json out.json # machine-readable gate

The ``--json`` record uses the same shape as the ``benchmarks/`` gate
runners (``benchmark``/``ok``/``failures``/``rows``/``python``) so the
CI merge step folds it into ``BENCH_ci.json`` unchanged.  ``ok`` means
every analyzed kernel is clean: no error or warning diagnostics (INFO
verdicts such as shard-fallback classifications are expected and fine).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Any

from repro.analyze.manager import AnalysisResult, analyze_kernel
from repro.errors import ReproError

GRAPH_VARIANTS = ("mt", "dmt", "dmt_win", "stream")


def _build_graph(workload: Any, variant: str) -> Any:
    params = workload.default_params()
    if variant == "mt":
        return workload.build_mt(params)
    if variant == "dmt":
        return workload.build_dmt(params)
    if variant == "dmt_win":
        return workload.build_dmt_windowed(params)
    if variant == "stream":
        return workload.build_stream(params)
    raise ReproError(f"unknown variant '{variant}'; expected one of {GRAPH_VARIANTS}")


def _row(name: str, variant: str, result: AnalysisResult) -> dict[str, Any]:
    return {
        "workload": name,
        "variant": variant,
        "ok": result.ok,
        "engine": result.engine,
        "order_stable": result.order_stable,
        "deadlock": result.deadlock,
        "shardable": result.shard.shardable,
        "shard_fallback_code": result.shard.fallback_code,
        "window_lcm": result.shard.window_lcm,
        "min_cycles": result.min_cycles,
        "codes": result.codes(),
    }


def _print_report(name: str, variant: str, result: AnalysisResult) -> None:
    verdict = "clean" if result.ok else "NOT CLEAN"
    print(f"== {name} [{variant}] -- {verdict}")
    print(
        f"   engine={result.engine} order_stable={result.order_stable} "
        f"shardable={result.shard.shardable} min_cycles={result.min_cycles}"
    )
    for diagnostic in result.diagnostics:
        print(f"   {diagnostic.format()}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("workload", nargs="?", help="Table 3 workload name")
    parser.add_argument(
        "--variant",
        action="append",
        choices=GRAPH_VARIANTS,
        help="graph variant(s) to analyze (default: all available)",
    )
    parser.add_argument(
        "--registry",
        action="store_true",
        help="analyze every registry workload x available variant",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="PATH",
        help="emit a machine-readable record (to PATH, or stdout with no PATH)",
    )
    args = parser.parse_args(argv)

    from repro.compiler.pipeline import compile_kernel
    from repro.workloads.registry import (
        available_variants,
        get_workload,
        registry_kernels,
    )

    if args.registry:
        targets = registry_kernels()
    elif args.workload:
        workload = get_workload(args.workload)
        variants = args.variant or list(available_variants(workload))
        targets = [(workload, v) for v in variants]
    else:
        parser.error("give a workload name or --registry")

    rows: list[dict[str, Any]] = []
    failures: list[str] = []
    for workload, variant in targets:
        graph = _build_graph(workload, variant)
        result = analyze_kernel(compile_kernel(graph))
        rows.append(_row(workload.name, variant, result))
        for diagnostic in result.errors() + result.warnings():
            failures.append(f"{workload.name}/{variant}: {diagnostic.format()}")
        if not args.json or args.json != "-":
            _print_report(workload.name, variant, result)

    if args.json:
        payload = {
            "benchmark": "analyze_registry",
            "ok": not failures,
            "failures": failures,
            "rows": rows,
            "python": platform.python_version(),
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            directory = os.path.dirname(os.path.abspath(args.json))
            os.makedirs(directory, exist_ok=True)
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.json}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
