"""Structure pass: the analyzer's form of graph validation.

This pass owns the structural checks that used to live as bare strings in
:mod:`repro.graph.validate`: operand arity and port contiguity, opcode
parameters, dtype rules, sink fan-out, non-temporal acyclicity, and the
"kernel must observably do something" rule.  ``validate_graph`` now
delegates here and re-raises the same messages, so the raise-on-error
contract (and every existing error string) is unchanged — the structure
pass just also carries stable codes and node provenance.

This module deliberately imports only graph submodules and the
diagnostics core so that ``repro.graph.validate`` (imported while the
``repro.graph`` package itself is still initialising) can import it
without a cycle.
"""

from __future__ import annotations

from repro.analyze.diagnostics import Diagnostic, Severity
from repro.graph.dfg import DataflowGraph
from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode, opcode_info

__all__ = ["structure_diagnostics"]

_COMPARISONS = (Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE, Opcode.EQ, Opcode.NE)


def _error(
    code: str, message: str, node: Node | None = None, hint: str | None = None
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=message,
        nodes=(node.node_id,) if node is not None else (),
        labels=(node.label(),) if node is not None else (),
        hint=hint,
    )


def _check_arity(graph: DataflowGraph, node: Node, out: list[Diagnostic]) -> None:
    info = opcode_info(node.opcode)
    arity = graph.arity_of(node.node_id)
    if not info.accepts_arity(arity):
        out.append(
            _error(
                "RA001",
                f"{node.label()}: has {arity} operands, expected between "
                f"{info.min_arity} and {info.max_arity}",
                node,
            )
        )
    ports = sorted(graph.inputs_of(node.node_id))
    if ports and ports != list(range(len(ports))):
        out.append(
            _error(
                "RA001",
                f"{node.label()}: operand ports {ports} are not contiguous from 0",
                node,
            )
        )


def _check_params(node: Node, out: list[Diagnostic]) -> None:
    def param_error(message: str, hint: str | None = None) -> None:
        out.append(_error("RA002", message, node, hint))

    if node.opcode is Opcode.CONST and "value" not in node.params:
        param_error(f"{node.label()}: CONST node is missing its 'value' parameter")
    if node.opcode is Opcode.ELEVATOR:
        delta = node.param("delta")
        if not isinstance(delta, int) or delta == 0:
            param_error(f"{node.label()}: ELEVATOR delta must be a non-zero integer")
        if "const" not in node.params:
            param_error(f"{node.label()}: ELEVATOR is missing its fallback constant")
        window = node.param("window")
        if window is not None and (not isinstance(window, int) or window <= 0):
            param_error(f"{node.label()}: ELEVATOR window must be a positive integer")
    if node.opcode is Opcode.BARRIER:
        window = node.param("window")
        if window is not None and (not isinstance(window, int) or window <= 0):
            param_error(f"{node.label()}: BARRIER window must be a positive integer")
    if node.opcode is Opcode.ELDST:
        delta = node.param("delta")
        if not isinstance(delta, int) or delta <= 0:
            param_error(f"{node.label()}: ELDST delta must be a positive integer")
        if not node.param("array"):
            param_error(f"{node.label()}: ELDST is missing its 'array' parameter")
        window = node.param("window")
        if window is not None and (not isinstance(window, int) or window <= 0):
            param_error(f"{node.label()}: ELDST window must be a positive integer")
    if node.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.ELDST):
        if not node.param("array"):
            param_error(f"{node.label()}: memory node is missing its 'array' parameter")
    if node.opcode in (Opcode.SCRATCH_LOAD, Opcode.SCRATCH_STORE):
        if not node.param("array"):
            param_error(
                f"{node.label()}: scratchpad node is missing its 'array' parameter"
            )
    if node.opcode is Opcode.OUTPUT and not node.param("name"):
        param_error(f"{node.label()}: OUTPUT node is missing its 'name' parameter")


def _check_dtypes(graph: DataflowGraph, node: Node, out: list[Diagnostic]) -> None:
    if node.opcode in _COMPARISONS and node.dtype is not DType.BOOL:
        out.append(
            _error("RA003", f"{node.label()}: comparison nodes must produce BOOL", node)
        )
    if node.opcode is Opcode.SELECT:
        inputs = graph.inputs_of(node.node_id)
        if 0 in inputs and graph.node(inputs[0]).dtype is not DType.BOOL:
            out.append(
                _error(
                    "RA003",
                    f"{node.label()}: SELECT condition operand must be BOOL",
                    node,
                )
            )


def structure_diagnostics(graph: DataflowGraph) -> list[Diagnostic]:
    """Run the structural checks over ``graph`` (all findings are errors)."""
    out: list[Diagnostic] = []
    for node in graph.nodes:
        _check_arity(graph, node, out)
        _check_params(node, out)
        _check_dtypes(graph, node, out)

    # Sinks must not feed anyone; already enforced by add_edge, re-check defensively.
    for node in graph.nodes:
        if node.is_sink and graph.successors(node.node_id):
            out.append(
                _error("RA004", f"{node.label()}: sink node drives downstream consumers", node)
            )

    # The graph must be acyclic once temporal edges are removed.
    try:
        graph.topological_order(ignore_temporal=True)
    except Exception as exc:  # GraphError
        out.append(_error("RA005", str(exc)))

    # A kernel must observably do something.
    has_effect = any(
        n.opcode in (Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT)
        for n in graph.nodes
    )
    if graph.nodes and not has_effect:
        out.append(
            _error(
                "RA006",
                "graph has no STORE or OUTPUT node; kernel has no visible effect",
                hint="add a store(), scratch_store() or output() to the kernel",
            )
        )
    return out
