"""Structured diagnostics for the static kernel analyzer.

Every fact the analyzer derives about a kernel is reported as a
:class:`Diagnostic` with a *stable* ``RA0xx`` code, a severity, node
provenance and (where it helps) a fix hint.  Codes never change meaning
once shipped: tools (the multi-core planner, benchmark gates, explore
records) key on the code, humans read the message.

Code space
----------
``RA00x``  structural validity (absorbed from ``graph/validate.py``)
``RA01x``  inter-thread dependence cycles and token-buffer capacity
``RA02x``  scratchpad ordering hazards
``RA03x``  shardability (window-LCM legality)
``RA04x``  engine eligibility and replay-order stability
``RA05x``  timing bounds
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CODES", "Diagnostic", "Severity"]


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR`` predicts a hard failure (the kernel cannot run to
    completion); ``WARNING`` flags a hazard the simulators may paper
    over; ``INFO`` records a verdict or measurement other layers consume.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


#: The stable diagnostic-code table (code -> short title).
CODES: dict[str, str] = {
    # RA00x - structure (see repro.analyze.structure)
    "RA001": "operand arity or port mismatch",
    "RA002": "missing or malformed node parameter",
    "RA003": "dtype rule violation",
    "RA004": "sink node drives consumers",
    "RA005": "cycle through non-temporal edges",
    "RA006": "kernel has no visible effect",
    # RA01x - deadlock / capacity
    "RA010": "inter-thread dependence cycle can never fire",
    "RA011": "barrier inside an inter-thread dependence cycle",
    "RA012": "token buffer smaller than recurrence demand",
    # RA02x - scratchpad ordering
    "RA020": "unordered scratchpad write/write pair",
    "RA021": "unordered scratchpad write/read pair",
    # RA03x - shardability
    "RA030": "unbounded transmission window",
    "RA031": "whole-block barrier synchronises scratchpad traffic",
    "RA032": "transmission-window LCM spans the whole block",
    "RA033": "aligned shard block leaves no work for a second core",
    "RA034": "window-aligned multi-core cut is legal",
    # RA04x - engine eligibility / replay order
    "RA040": "batched-engine eligible (no inter-thread nodes)",
    "RA041": "event-engine only (inter-thread traffic is not window-batchable)",
    "RA042": "load replay order falls back to per-node replay",
    "RA043": "load replay order is event-engine stable",
    "RA044": "window-batchable (feed-forward inter-thread traffic)",
    "RA045": "inter-thread traffic is not window-batchable",
    # RA05x - timing bounds
    "RA050": "static critical-path lower bound on cycles",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding with stable code and node provenance.

    ``nodes`` carries the ids of the graph nodes the finding is anchored
    to and ``labels`` their human-readable labels (``name#id``); ``data``
    holds machine-readable details (window LCMs, cycle bounds, shifts)
    that verdict consumers and JSON records read without parsing the
    message.
    """

    code: str
    severity: Severity
    message: str
    nodes: tuple[int, ...] = ()
    labels: tuple[str, ...] = ()
    hint: str | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code]

    def format(self) -> str:
        """One-line human rendering: ``RA0xx error: message [nodes]``."""
        where = f" [{', '.join(self.labels)}]" if self.labels else ""
        tail = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity.value}: {self.message}{where}{tail}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable plain form (used by records and the CLI)."""
        record: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.nodes:
            record["nodes"] = list(self.nodes)
            record["labels"] = list(self.labels)
        if self.hint:
            record["hint"] = self.hint
        if self.data:
            record["data"] = dict(self.data)
        return record
