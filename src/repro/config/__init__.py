"""System configuration (paper Table 2)."""

from repro.config.system import (
    CacheConfig,
    CgraGridConfig,
    DramConfig,
    FermiSmConfig,
    LatencyConfig,
    MemorySystemConfig,
    NocConfig,
    ScratchpadConfig,
    SystemConfig,
    TokenBufferConfig,
    canonical_config_json,
    config_digest,
    default_system_config,
)

__all__ = [
    "CacheConfig",
    "CgraGridConfig",
    "DramConfig",
    "FermiSmConfig",
    "LatencyConfig",
    "MemorySystemConfig",
    "NocConfig",
    "ScratchpadConfig",
    "SystemConfig",
    "TokenBufferConfig",
    "canonical_config_json",
    "config_digest",
    "default_system_config",
]
