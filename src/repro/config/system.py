"""System configuration for the dMT-CGRA reproduction (paper Table 2).

The defaults reproduce Table 2 of the paper:

======================  =====================================================
Parameter               Value
======================  =====================================================
dMT-CGRA core           140 interconnected compute/LDST/control units
Arithmetic units        32 ALUs
Floating point units    32 FPUs, 12 special compute units
Load/Store units        32 LDST units
Control units           16 split/join units, 16 control/elevator units
Frequency               core 1.4 GHz, interconnect 1.4 GHz,
                        L2 0.7 GHz, DRAM 0.924 GHz
L1                      64 KB, 32 banks, 128 B/line, 4-way
L2                      786 KB, 6 banks, 128 B/line, 16-way
GDDR5 DRAM              16 banks, 6 channels
======================  =====================================================

The Fermi streaming-multiprocessor baseline mirrors the GTX480 SM used by
the paper's GPGPU-Sim configuration (32 CUDA cores, 48 KB shared memory,
two warp schedulers, 48 resident warps).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, asdict
from typing import Any, Mapping, get_type_hints

from repro.errors import ConfigurationError

__all__ = [
    "CgraGridConfig",
    "TokenBufferConfig",
    "NocConfig",
    "CacheConfig",
    "DramConfig",
    "ScratchpadConfig",
    "MemorySystemConfig",
    "FermiSmConfig",
    "LatencyConfig",
    "SystemConfig",
    "canonical_config_json",
    "config_digest",
    "default_system_config",
]


def _dataclass_from_dict(cls: type, data: Mapping[str, Any]) -> Any:
    """Reconstruct a (possibly nested) config dataclass from a plain dict.

    The inverse of :func:`dataclasses.asdict`: every field whose declared
    type is itself one of the config dataclasses is rebuilt recursively.
    Unknown keys are rejected so a digest is never computed over silently
    dropped configuration.
    """
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{cls.__name__}: expected a mapping, got {type(data).__name__}"
        )
    hints = get_type_hints(cls)
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__}: unknown configuration key(s) {sorted(unknown)}"
        )
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        hint = hints.get(name)
        if dataclasses.is_dataclass(hint):
            kwargs[name] = _dataclass_from_dict(hint, value)
        else:
            kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:  # e.g. a required field is missing
        raise ConfigurationError(f"{cls.__name__}: {exc}") from exc


@dataclass(frozen=True)
class CgraGridConfig:
    """Functional-unit inventory and physical arrangement of one CGRA core.

    The paper's core has 140 units (Table 2).  The grid is arranged as a
    ``rows x cols`` rectangle for placement and XY routing purposes; the
    default 10x14 arrangement holds exactly 140 units.
    """

    rows: int = 10
    cols: int = 14
    num_alu: int = 32
    num_fpu: int = 32
    num_special: int = 12
    num_ldst: int = 32
    num_split_join: int = 16
    num_control: int = 16

    @property
    def total_units(self) -> int:
        return (
            self.num_alu
            + self.num_fpu
            + self.num_special
            + self.num_ldst
            + self.num_split_join
            + self.num_control
        )

    def validate(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("grid dimensions must be positive")
        if self.total_units > self.rows * self.cols:
            raise ConfigurationError(
                f"{self.total_units} functional units do not fit in a "
                f"{self.rows}x{self.cols} grid"
            )
        for name in (
            "num_alu",
            "num_fpu",
            "num_special",
            "num_ldst",
            "num_split_join",
            "num_control",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class TokenBufferConfig:
    """Per-unit token buffer used for tagged-token matching.

    ``entries`` is the number of thread slots each unit can hold; the paper
    uses 16-entry buffers and shows (Fig. 5) that this covers 87% of the
    observed transmission distances without cascading.
    """

    entries: int = 16
    max_in_flight_threads: int = 64

    def validate(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("token buffer must have at least one entry")
        if self.max_in_flight_threads <= 0:
            raise ConfigurationError("max_in_flight_threads must be positive")


@dataclass(frozen=True)
class NocConfig:
    """Statically routed network-on-chip parameters."""

    hop_latency: int = 1
    link_bandwidth_tokens: int = 2
    injection_latency: int = 1

    def validate(self) -> None:
        if self.hop_latency < 0:
            raise ConfigurationError("hop_latency must be non-negative")
        if self.link_bandwidth_tokens <= 0:
            raise ConfigurationError("link_bandwidth_tokens must be positive")


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    ways: int
    banks: int
    hit_latency: int
    write_back: bool = True
    write_allocate: bool = True
    mshr_entries: int = 32

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigurationError(f"{self.name}: sizes must be positive")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigurationError(
                f"{self.name}: size must be a multiple of line_bytes * ways"
            )
        if self.banks <= 0:
            raise ConfigurationError(f"{self.name}: banks must be positive")
        if self.hit_latency < 1:
            raise ConfigurationError(f"{self.name}: hit latency must be >= 1")


@dataclass(frozen=True)
class DramConfig:
    """GDDR5-like DRAM timing model (banked, multi-channel)."""

    channels: int = 6
    banks_per_channel: int = 16
    access_latency: int = 220
    burst_bytes: int = 128
    bank_busy_cycles: int = 8

    def validate(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigurationError("DRAM channels/banks must be positive")
        if self.access_latency < 1:
            raise ConfigurationError("DRAM access latency must be >= 1")


@dataclass(frozen=True)
class ScratchpadConfig:
    """Shared-memory scratchpad used by the Fermi and MT-CGRA baselines."""

    size_bytes: int = 48 * 1024
    banks: int = 32
    access_latency: int = 24
    bank_conflict_penalty: int = 1

    def validate(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("scratchpad size must be positive")
        if self.banks <= 0:
            raise ConfigurationError("scratchpad banks must be positive")


@dataclass(frozen=True)
class MemorySystemConfig:
    """The full memory hierarchy shared by all simulated architectures."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1",
            size_bytes=64 * 1024,
            line_bytes=128,
            ways=4,
            banks=32,
            hit_latency=28,
            write_back=True,
            write_allocate=True,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2",
            size_bytes=768 * 1024,
            line_bytes=128,
            ways=16,
            banks=6,
            hit_latency=90,
            write_back=True,
            write_allocate=True,
        )
    )
    dram: DramConfig = field(default_factory=DramConfig)
    scratchpad: ScratchpadConfig = field(default_factory=ScratchpadConfig)

    def validate(self) -> None:
        self.l1.validate()
        self.l2.validate()
        self.dram.validate()
        self.scratchpad.validate()

    def sliced(self, cores: int) -> "MemorySystemConfig":
        """Per-core slice of this memory system for multi-core sharding.

        Each core keeps a private L1 but only a ``1/cores`` slice of the
        shared L2 (rounded down to a whole number of sets, never below
        one set); the DRAM configuration is returned unchanged because the
        device itself is shared across cores (see
        :class:`repro.memory.shared_dram.SharedDRAM`).
        """
        if cores <= 1:
            return self
        set_bytes = self.l2.line_bytes * self.l2.ways
        slice_bytes = max(set_bytes, (self.l2.size_bytes // cores) // set_bytes * set_bytes)
        from dataclasses import replace

        sliced = replace(self, l2=replace(self.l2, size_bytes=slice_bytes))
        sliced.validate()
        return sliced


@dataclass(frozen=True)
class FermiSmConfig:
    """Fermi-like streaming multiprocessor baseline (one GTX480 SM)."""

    warp_size: int = 32
    max_resident_warps: int = 48
    schedulers: int = 2
    issue_width_per_scheduler: int = 1
    cuda_cores: int = 32
    sfu_units: int = 4
    ldst_units: int = 16
    registers_per_thread: int = 32
    alu_latency: int = 10
    fpu_latency: int = 10
    sfu_latency: int = 20
    shared_mem_latency: int = 24
    l1_write_through: bool = True

    def validate(self) -> None:
        if self.warp_size <= 0:
            raise ConfigurationError("warp size must be positive")
        if self.max_resident_warps <= 0:
            raise ConfigurationError("max_resident_warps must be positive")
        if self.schedulers <= 0 or self.issue_width_per_scheduler <= 0:
            raise ConfigurationError("scheduler parameters must be positive")
        if self.cuda_cores <= 0 or self.sfu_units <= 0 or self.ldst_units <= 0:
            raise ConfigurationError("execution unit counts must be positive")

    def dispatch_cycles(self, latency_class: str) -> int:
        """Cycles a warp instruction occupies its execution pipe.

        A 32-lane warp instruction is dispatched over the SM's execution
        units of that class (32 CUDA cores, 16 LD/ST units, 4 SFUs on
        Fermi), which bounds the per-class instruction throughput.
        """
        per_class = {
            "alu": self.cuda_cores,
            "sfu": self.sfu_units,
            "memory": self.ldst_units,
            "shared": self.ldst_units,
        }
        units = per_class.get(latency_class)
        if units is None:
            return 1
        return max(1, (self.warp_size + units - 1) // units)


@dataclass(frozen=True)
class LatencyConfig:
    """Pipeline latencies of CGRA functional units (cycles)."""

    alu: int = 1
    fpu: int = 4
    special: int = 12
    control: int = 1
    split_join: int = 1
    elevator: int = 1
    ldst_issue: int = 1

    def validate(self) -> None:
        for name in ("alu", "fpu", "special", "control", "split_join", "elevator"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"latency {name} must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundling every simulated subsystem.

    ``core_clock_ghz`` etc. reproduce the Table 2 clock domains; they are
    used by the power model to convert leakage power into energy.
    """

    grid: CgraGridConfig = field(default_factory=CgraGridConfig)
    token_buffer: TokenBufferConfig = field(default_factory=TokenBufferConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemorySystemConfig = field(default_factory=MemorySystemConfig)
    fermi: FermiSmConfig = field(default_factory=FermiSmConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    core_clock_ghz: float = 1.4
    interconnect_clock_ghz: float = 1.4
    l2_clock_ghz: float = 0.7
    dram_clock_ghz: float = 0.924
    max_graph_replicas: int = 8
    #: Number of simulated CGRA cores a launch may be sharded across.  The
    #: paper evaluates a single core (one thread block per core); values
    #: above 1 enable the window-aligned multi-core sharding of
    #: :mod:`repro.sim.multicore`.
    cores: int = 1
    #: Multi-core memory model: when True (the default) the cores share one
    #: DRAM device whose bandwidth is contended across cores and each core
    #: gets a private ``1/cores`` L2 slice; when False every core keeps the
    #: legacy private L2 + private DRAM of the one-block-per-core model.
    shared_dram: bool = True

    def validate(self) -> "SystemConfig":
        self.grid.validate()
        self.token_buffer.validate()
        self.noc.validate()
        self.memory.validate()
        self.fermi.validate()
        self.latency.validate()
        if self.core_clock_ghz <= 0:
            raise ConfigurationError("core clock must be positive")
        if self.max_graph_replicas < 1:
            raise ConfigurationError("max_graph_replicas must be >= 1")
        if self.cores < 1:
            raise ConfigurationError("cores must be >= 1")
        return self

    def to_dict(self) -> dict[str, Any]:
        """Return the configuration as a nested dictionary (Table 2 dump)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemConfig":
        """Rebuild a validated :class:`SystemConfig` from :meth:`to_dict` output.

        The round-trip is exact — ``SystemConfig.from_dict(cfg.to_dict())
        == cfg`` — and survives a JSON serialisation in between, which is
        what lets campaign specs and result caches treat configurations as
        plain data.  Unknown keys raise :class:`ConfigurationError`.
        """
        config = _dataclass_from_dict(cls, data)
        return config.validate()

    def digest(self) -> str:
        """Stable SHA-256 over the canonical JSON form of this configuration."""
        return config_digest(self)

    def describe(self) -> str:
        """Render a human-readable Table 2-style configuration summary."""
        g = self.grid
        m = self.memory
        lines = [
            "dMT-CGRA system configuration (paper Table 2)",
            f"  dMT-CGRA core       : {g.total_units} interconnected units "
            f"({g.rows}x{g.cols} grid)",
            f"  Arithmetic units    : {g.num_alu} ALUs",
            f"  Floating point units: {g.num_fpu} FPUs, {g.num_special} special compute units",
            f"  Load/Store units    : {g.num_ldst} LDST units",
            f"  Control units       : {g.num_split_join} split/join units, "
            f"{g.num_control} control/elevator units",
            f"  Token buffer        : {self.token_buffer.entries} entries/unit",
            f"  Frequency [GHz]     : core {self.core_clock_ghz}, "
            f"interconnect {self.interconnect_clock_ghz}, "
            f"L2 {self.l2_clock_ghz}, DRAM {self.dram_clock_ghz}",
            f"  L1                  : {m.l1.size_bytes // 1024}KB, {m.l1.banks} banks, "
            f"{m.l1.line_bytes}B/line, {m.l1.ways}-way",
            f"  L2                  : {m.l2.size_bytes // 1024}KB, {m.l2.banks} banks, "
            f"{m.l2.line_bytes}B/line, {m.l2.ways}-way",
            f"  GDDR5 DRAM          : {m.dram.banks_per_channel} banks, "
            f"{m.dram.channels} channels",
            f"  Fermi SM baseline   : {self.fermi.warp_size}-wide, "
            f"{self.fermi.max_resident_warps} resident warps, "
            f"{m.scratchpad.size_bytes // 1024}KB shared memory",
        ]
        return "\n".join(lines)


def canonical_config_json(config: "SystemConfig | Mapping[str, Any]") -> str:
    """Canonical JSON form of a configuration (sorted keys, no whitespace).

    Canonicalisation makes the serialisation independent of dict insertion
    order and of the process that produced it, so digests computed in
    different worker processes (or on different days) agree byte for byte.
    """
    data = config.to_dict() if isinstance(config, SystemConfig) else config
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def config_digest(config: "SystemConfig | Mapping[str, Any]") -> str:
    """Stable SHA-256 hex digest of a configuration (object or dict form)."""
    return hashlib.sha256(canonical_config_json(config).encode("utf-8")).hexdigest()


def default_system_config() -> SystemConfig:
    """Return the validated default (Table 2) configuration."""
    return SystemConfig().validate()
