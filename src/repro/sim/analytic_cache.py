"""Capacity/conflict-aware analytic cache model for the batched engine.

The wave-batched engine evaluates each static node once per wave over a
NumPy vector of threads, so it cannot call the event engine's
cycle-stamped :class:`~repro.memory.cache.SetAssociativeCache` one token
at a time without giving up its speedup.  This module provides the
analytic twin: the same L1 -> L2 -> DRAM classification — built on the
shared :mod:`repro.memory.tagcore` tag/set/victim core, so both engines
agree on every hit/miss decision for an identical line-address stream —
replayed over a whole wave of accesses at once.

What is modelled (mirroring ``MemoryHierarchy`` exactly):

* set-associative LRU at both levels: compulsory, capacity *and*
  conflict misses;
* write-back + write-allocate (and the write-through / no-allocate
  policy of the Fermi L1, should a sweep configure it): a store miss is
  an L1 ``write_miss`` whose fill is a *read* of L2 (read-for-ownership),
  never an L2 write — exactly the counter mapping the event engine's
  hierarchy records for stores;
* dirty evictions: an L1 writeback is an L2 store access at the victim's
  line address, an L2 dirty eviction is a DRAM write;
* MSHR merges: an access to a line whose fill is still outstanding
  completes when the fill returns instead of issuing a duplicate
  next-level access (timestamps come from the batched engine's analytic
  issue cycles);
* cache bank serialisation: each bank accepts one access per cycle, so
  an oversubscribed bank builds the same queue the event engine's
  cycle-stamped bank model builds (the replay order matches its
  processing order);
* DRAM bank/channel queueing with the same line-interleaved mapping as
  :class:`~repro.memory.dram.DramModel`, plus the multi-core contention
  term (``(cores - 1) * bank_busy_cycles`` expected queueing per access
  when several cores share the device).

Not modelled: the MSHR entry limit — it affects timing only, never the
hit/miss classification — and the event engine's interleaving of
overlapped load/store phases; the fidelity benchmark measures the
residual cycle error both cause.

Counters are mirrored into the owning :class:`~repro.memory.hierarchy.
MemoryHierarchy`'s per-level stats objects, so ``CycleResult.counters()``
and the energy pipeline see the analytic classification exactly where
the event engine's exact one would appear.
"""

from __future__ import annotations

import numpy as np

from repro.config.system import MemorySystemConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tagcore import LruTagStore

__all__ = ["AnalyticMemoryModel"]


class _AnalyticLevel:
    """One cache level: shared tag core + policy flags + counter sink."""

    __slots__ = (
        "tags",
        "stats",
        "hit_latency",
        "write_back",
        "write_allocate",
        "mshr",
        "mshr_entries",
        "banks",
        "line_bytes",
        "bank_free",
    )

    def __init__(self, config, stats) -> None:
        self.tags = LruTagStore.from_config(config)
        self.stats = stats
        self.hit_latency = float(config.hit_latency)
        self.write_back = bool(config.write_back)
        self.write_allocate = bool(config.write_allocate)
        # line address -> absolute cycle at which the outstanding fill lands.
        self.mshr: dict[int, float] = {}
        self.mshr_entries = int(config.mshr_entries)
        # Each bank accepts one access per cycle; with the replay ordered
        # like the event engine's processing, the queue build-up on
        # oversubscribed banks evolves the same way there and here.
        self.banks = int(config.banks)
        self.line_bytes = int(config.line_bytes)
        self.bank_free: list[float] = [0.0] * self.banks

    def prune_mshr(self, cycle: float) -> None:
        """Drop landed fills (same size trigger as the event engine's MSHR)."""
        self.mshr = {addr: t for addr, t in self.mshr.items() if t > cycle}

    def bank_ready(self, line_addr: int, cycle: float) -> float:
        bank = (line_addr // self.line_bytes) % self.banks
        start = self.bank_free[bank]
        if start < cycle:
            start = cycle
        else:
            self.stats.bank_conflict_cycles += int(start - cycle)
        self.bank_free[bank] = start + 1.0
        return start


class AnalyticMemoryModel:
    """Two-level LRU hierarchy + DRAM replayed over batches of accesses."""

    def __init__(
        self,
        config: MemorySystemConfig,
        hierarchy: MemoryHierarchy,
        dram_contention: int = 1,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.l1 = _AnalyticLevel(config.l1, hierarchy.l1.stats)
        self.l2 = _AnalyticLevel(config.l2, hierarchy.l2.stats)
        self.dram_stats = hierarchy.dram.stats
        dram = config.dram
        self.dram_latency = float(dram.access_latency)
        self.bank_busy = float(dram.bank_busy_cycles)
        self.dram_channels = dram.channels
        self.dram_banks = dram.banks_per_channel
        self.dram_line_bytes = config.l2.line_bytes
        # With ``dram_contention`` cores sharing the device, each access
        # additionally expects to queue behind one bank burst per
        # contending core (the analytic twin of the shared bank state the
        # event engine models exactly).
        self.contention_queue = (max(1, int(dram_contention)) - 1) * float(dram.bank_busy_cycles)
        self._bank_free: dict[int, float] = {}

    # ------------------------------------------------------------------- DRAM
    def _dram_access(self, line_addr: int, is_write: bool, cycle: float) -> float:
        line = line_addr // self.dram_line_bytes
        channel = line % self.dram_channels
        bank = (line // self.dram_channels) % self.dram_banks
        slot = channel * self.dram_banks + bank
        start = max(cycle, self._bank_free.get(slot, 0.0))
        queued = (start - cycle) + self.contention_queue
        start += self.contention_queue
        self.dram_stats.queue_cycles += int(queued)
        self._bank_free[slot] = start + self.bank_busy
        if is_write:
            self.dram_stats.writes += 1
        else:
            self.dram_stats.reads += 1
        return start + self.dram_latency

    # ------------------------------------------------------------ cache levels
    def _level_access(self, level, next_access, line_addr, is_write, cycle):
        """One access to ``level``; misses and writebacks go to ``next_access``.

        The single copy of the policy walk (hit/merge/miss/fill/victim)
        shared by both levels — the same structure as
        :meth:`repro.memory.cache.SetAssociativeCache.access`, with the
        next level injected as a ``(line_addr, is_write, cycle)`` callable.
        """
        # Re-align to this level's own line size (an L1 miss arrives
        # L1-aligned; with l1.line_bytes < l2.line_bytes several L1 lines
        # share one L2 line) — the event engine's cache does the same.
        line_addr = level.tags.geometry.line_address(line_addr)
        cycle = level.bank_ready(line_addr, cycle)
        entry = level.tags.touch(line_addr)
        if entry is not None:
            outstanding = level.mshr.get(line_addr)
            pending = outstanding is not None and outstanding > cycle
            if pending:
                level.stats.mshr_merges += 1
            if is_write:
                level.stats.write_hits += 1
                if level.write_back:
                    entry.dirty = True
                    complete = cycle + level.hit_latency
                    return max(complete, outstanding) if pending else complete
                # write-through: forward the write to the next level
                return max(
                    cycle + level.hit_latency,
                    next_access(line_addr, True, cycle),
                )
            level.stats.read_hits += 1
            complete = cycle + level.hit_latency
            return max(complete, outstanding) if pending else complete

        if is_write:
            level.stats.write_misses += 1
            if not level.write_allocate:
                return max(
                    cycle + level.hit_latency,
                    next_access(line_addr, True, cycle),
                )
        else:
            level.stats.read_misses += 1

        outstanding = level.mshr.get(line_addr)
        if outstanding is not None and outstanding > cycle:
            level.stats.mshr_merges += 1
            fill = outstanding
        else:
            # Read-for-ownership: the fill *reads* the next level even for
            # a store miss under write-allocate.
            fill = max(
                cycle + level.hit_latency,
                next_access(line_addr, False, cycle),
            )
            level.mshr[line_addr] = fill
            if len(level.mshr) > 4 * level.mshr_entries:
                level.prune_mshr(cycle)
        victim = level.tags.install(line_addr, is_write and level.write_allocate)
        if victim is not None and victim.dirty:
            level.stats.writebacks += 1
            next_access(victim.line_addr, True, cycle)
        return fill

    def _l2_access(self, line_addr: int, is_write: bool, cycle: float) -> float:
        return self._level_access(self.l2, self._dram_access, line_addr, is_write, cycle)

    def _l1_access(self, line_addr: int, is_write: bool, cycle: float) -> float:
        return self._level_access(self.l1, self._l2_access, line_addr, is_write, cycle)

    # ------------------------------------------------------------------ batch
    def access_batch(
        self,
        addresses: np.ndarray,
        cycles: np.ndarray,
        is_store: bool,
    ) -> np.ndarray:
        """Classify one replay-ordered batch of scalar accesses.

        ``addresses`` and ``cycles`` must already be in replay order (the
        caller sorts them into the event engine's processing order where
        that order is derivable); the returned absolute completion cycles
        are aligned with the inputs.  The line/set/tag arithmetic is
        vectorised over the whole batch; the LRU state walk itself is
        inherently sequential and runs over the precomputed line vector.
        """
        geometry = self.l1.tags.geometry
        lines = geometry.line_address(addresses).tolist()
        times = cycles.tolist()
        out = np.empty(len(lines), dtype=np.float64)
        l1_access = self._l1_access
        for i, (line, cycle) in enumerate(zip(lines, times)):
            out[i] = l1_access(line, is_store, cycle)
        return out
