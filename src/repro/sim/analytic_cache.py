"""Capacity/conflict-aware analytic cache model for the batched engine.

The wave-batched engine evaluates each static node once per wave over a
NumPy vector of threads, so it cannot call the event engine's
cycle-stamped :class:`~repro.memory.cache.SetAssociativeCache` one token
at a time without giving up its speedup.  This module provides the
analytic twin: the same L1 -> L2 -> DRAM classification — built on the
shared :mod:`repro.memory.tagcore` tag/set/victim core, so both engines
agree on every hit/miss decision for an identical line-address stream —
replayed over a whole wave of accesses at once.

What is modelled (mirroring ``MemoryHierarchy`` exactly):

* set-associative LRU at both levels: compulsory, capacity *and*
  conflict misses;
* write-back + write-allocate (and the write-through / no-allocate
  policy of the Fermi L1, should a sweep configure it): a store miss is
  an L1 ``write_miss`` whose fill is a *read* of L2 (read-for-ownership),
  never an L2 write — exactly the counter mapping the event engine's
  hierarchy records for stores;
* dirty evictions: an L1 writeback is an L2 store access at the victim's
  line address, an L2 dirty eviction is a DRAM write;
* MSHR merges: an access to a line whose fill is still outstanding
  completes when the fill returns instead of issuing a duplicate
  next-level access (timestamps come from the batched engine's analytic
  issue cycles);
* cache bank serialisation: each bank accepts one access per cycle, so
  an oversubscribed bank builds the same queue the event engine's
  cycle-stamped bank model builds (the replay order matches its
  processing order);
* DRAM bank/channel queueing with the same line-interleaved mapping as
  :class:`~repro.memory.dram.DramModel`, plus the multi-core contention
  term (``(cores - 1) * bank_busy_cycles`` expected queueing per access
  when several cores share the device).

Not modelled: the MSHR entry limit — it affects timing only, never the
hit/miss classification — and the event engine's interleaving of
overlapped load/store phases; the fidelity benchmark measures the
residual cycle error both cause.

Counters are mirrored into the owning :class:`~repro.memory.hierarchy.
MemoryHierarchy`'s per-level stats objects, so ``CycleResult.counters()``
and the energy pipeline see the analytic classification exactly where
the event engine's exact one would appear.

Two replay implementations
--------------------------
The policy walk exists twice, counter- and cycle-identically:

* ``vectorised=True`` (the default) decomposes each batch per L1 set and
  classifies it with one :class:`~repro.memory.tagcore.LruTagArray`
  replay, computes bank-queue timing with a closed-form per-bank
  recurrence, and resolves MSHR-merge timing with a per-line
  previous-fill gather — only the accesses that reach L2 (misses,
  writebacks, write-throughs) still walk the exact sequential model, and
  on cache-friendly configurations those are a tiny fraction of the
  stream.
* ``vectorised=False`` is the original one-access-at-a-time Python walk,
  kept as the reference implementation the vectorised kernel is tested
  against (``tests/sim/test_fidelity.py``, ``tests/memory/test_tagcore.py``).
"""

from __future__ import annotations

import numpy as np

from repro.config.system import MemorySystemConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tagcore import LruTagArray, LruTagStore, group_spans
from repro.obs.trace import active_tracer

__all__ = ["AnalyticMemoryModel"]


class _AnalyticLevel:
    """One cache level: shared tag core + policy flags + counter sink."""

    __slots__ = (
        "tags",
        "array",
        "stats",
        "hit_latency",
        "write_back",
        "write_allocate",
        "mshr",
        "mshr_entries",
        "banks",
        "line_bytes",
        "bank_free",
    )

    def __init__(self, config, stats, vectorised: bool = False) -> None:
        # The scalar store backs the sequential walk (always built: L2
        # replays its small miss-derived stream through it even when L1
        # classification is vectorised); the tag array holds the same
        # state for the per-set vectorised replay.
        self.tags = LruTagStore.from_config(config)
        self.array = LruTagArray.from_config(config) if vectorised else None
        self.stats = stats
        self.hit_latency = float(config.hit_latency)
        self.write_back = bool(config.write_back)
        self.write_allocate = bool(config.write_allocate)
        # line address -> absolute cycle at which the outstanding fill lands.
        self.mshr: dict[int, float] = {}
        self.mshr_entries = int(config.mshr_entries)
        # Each bank accepts one access per cycle; with the replay ordered
        # like the event engine's processing, the queue build-up on
        # oversubscribed banks evolves the same way there and here.
        self.banks = int(config.banks)
        self.line_bytes = int(config.line_bytes)
        self.bank_free: list[float] = [0.0] * self.banks

    def prune_mshr(self, cycle: float) -> None:
        """Drop landed fills (same size trigger as the event engine's MSHR).

        Prunes in place: the batch walk holds a direct reference to the
        mapping while it replays, so rebinding would strand its updates.
        """
        expired = [addr for addr, t in self.mshr.items() if t <= cycle]
        for addr in expired:
            del self.mshr[addr]

    def bank_ready(self, line_addr: int, cycle: float) -> float:
        bank = (line_addr // self.line_bytes) % self.banks
        start = self.bank_free[bank]
        if start < cycle:
            start = cycle
        else:
            self.stats.bank_conflict_cycles += int(start - cycle)
        self.bank_free[bank] = start + 1.0
        return start


class AnalyticMemoryModel:
    """Two-level LRU hierarchy + DRAM replayed over batches of accesses."""

    def __init__(
        self,
        config: MemorySystemConfig,
        hierarchy: MemoryHierarchy,
        dram_contention: int = 1,
        vectorised: bool = True,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.vectorised = bool(vectorised)
        self.l1 = _AnalyticLevel(config.l1, hierarchy.l1.stats, vectorised=self.vectorised)
        self.l2 = _AnalyticLevel(config.l2, hierarchy.l2.stats)
        self.dram_stats = hierarchy.dram.stats
        dram = config.dram
        self.dram_latency = float(dram.access_latency)
        self.bank_busy = float(dram.bank_busy_cycles)
        self.dram_channels = dram.channels
        self.dram_banks = dram.banks_per_channel
        self.dram_line_bytes = config.l2.line_bytes
        # With ``dram_contention`` cores sharing the device, each access
        # additionally expects to queue behind one bank burst per
        # contending core (the analytic twin of the shared bank state the
        # event engine models exactly).
        self.contention_queue = (max(1, int(dram_contention)) - 1) * float(dram.bank_busy_cycles)
        self._bank_free: dict[int, float] = {}

    # ------------------------------------------------------------------- DRAM
    def _dram_access(self, line_addr: int, is_write: bool, cycle: float) -> float:
        line = line_addr // self.dram_line_bytes
        channel = line % self.dram_channels
        bank = (line // self.dram_channels) % self.dram_banks
        slot = channel * self.dram_banks + bank
        start = max(cycle, self._bank_free.get(slot, 0.0))
        queued = (start - cycle) + self.contention_queue
        start += self.contention_queue
        self.dram_stats.queue_cycles += int(queued)
        self._bank_free[slot] = start + self.bank_busy
        if is_write:
            self.dram_stats.writes += 1
        else:
            self.dram_stats.reads += 1
        return start + self.dram_latency

    # ------------------------------------------------------------ cache levels
    def _level_access(self, level, next_access, line_addr, is_write, cycle):
        """One access to ``level``; misses and writebacks go to ``next_access``.

        The single copy of the policy walk (hit/merge/miss/fill/victim)
        shared by both levels — the same structure as
        :meth:`repro.memory.cache.SetAssociativeCache.access`, with the
        next level injected as a ``(line_addr, is_write, cycle)`` callable.
        """
        # Re-align to this level's own line size (an L1 miss arrives
        # L1-aligned; with l1.line_bytes < l2.line_bytes several L1 lines
        # share one L2 line) — the event engine's cache does the same.
        line_addr = level.tags.geometry.line_address(line_addr)
        cycle = level.bank_ready(line_addr, cycle)
        entry = level.tags.touch(line_addr)
        if entry is not None:
            outstanding = level.mshr.get(line_addr)
            pending = outstanding is not None and outstanding > cycle
            if pending:
                level.stats.mshr_merges += 1
            if is_write:
                level.stats.write_hits += 1
                if level.write_back:
                    entry.dirty = True
                    complete = cycle + level.hit_latency
                    return max(complete, outstanding) if pending else complete
                # write-through: forward the write to the next level
                return max(
                    cycle + level.hit_latency,
                    next_access(line_addr, True, cycle),
                )
            level.stats.read_hits += 1
            complete = cycle + level.hit_latency
            return max(complete, outstanding) if pending else complete

        if is_write:
            level.stats.write_misses += 1
            if not level.write_allocate:
                return max(
                    cycle + level.hit_latency,
                    next_access(line_addr, True, cycle),
                )
        else:
            level.stats.read_misses += 1

        outstanding = level.mshr.get(line_addr)
        if outstanding is not None and outstanding > cycle:
            level.stats.mshr_merges += 1
            fill = outstanding
        else:
            # Read-for-ownership: the fill *reads* the next level even for
            # a store miss under write-allocate.
            fill = max(
                cycle + level.hit_latency,
                next_access(line_addr, False, cycle),
            )
            level.mshr[line_addr] = fill
            if len(level.mshr) > 4 * level.mshr_entries:
                level.prune_mshr(cycle)
        victim = level.tags.install(line_addr, is_write and level.write_allocate)
        if victim is not None and victim.dirty:
            level.stats.writebacks += 1
            next_access(victim.line_addr, True, cycle)
        return fill

    def _l2_access(self, line_addr: int, is_write: bool, cycle: float) -> float:
        return self._level_access(self.l2, self._dram_access, line_addr, is_write, cycle)

    def _l1_access(self, line_addr: int, is_write: bool, cycle: float) -> float:
        return self._level_access(self.l1, self._l2_access, line_addr, is_write, cycle)

    # ------------------------------------------------------------------ batch
    def access_batch(
        self,
        addresses: np.ndarray,
        cycles: np.ndarray,
        is_store: "bool | np.ndarray",
    ) -> np.ndarray:
        """Classify one replay-ordered batch of scalar accesses.

        ``addresses`` and ``cycles`` must already be in replay order (the
        caller sorts them into the event engine's processing order where
        that order is derivable); the returned absolute completion cycles
        are aligned with the inputs.  ``is_store`` is a scalar for a
        homogeneous batch or a per-access boolean vector for a mixed
        load/store stream.

        With ``vectorised=True`` the whole L1 walk (bank queues, per-set
        LRU classification, MSHR-merge timing) runs as NumPy passes and
        only the L2-bound residue is walked sequentially; with
        ``vectorised=False`` every access takes the reference Python walk.
        Both paths produce identical counters and identical completion
        cycles.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        cycles = np.asarray(cycles, dtype=np.float64)
        if np.ndim(is_store) == 0:
            writes = np.full(addresses.shape, bool(is_store))
        else:
            writes = np.asarray(is_store, dtype=bool)
        if self.vectorised:
            return self._access_batch_vectorised(addresses, cycles, writes)
        geometry = self.l1.tags.geometry
        lines = geometry.line_address(addresses).tolist()
        out = np.empty(len(lines), dtype=np.float64)
        l1_access = self._l1_access
        for i, (line, cycle, write) in enumerate(
            zip(lines, cycles.tolist(), writes.tolist())
        ):
            out[i] = l1_access(line, bool(write), cycle)
        return out

    # ------------------------------------------------------- vectorised walk
    def _bank_times_vectorised(
        self, level: _AnalyticLevel, lines: np.ndarray, cycles: np.ndarray
    ) -> np.ndarray:
        """Per-bank service times for a whole batch, in closed form.

        Each bank accepts one access per cycle, so along one bank's
        subsequence ``t_k = max(r_k, t_{k-1} + 1)`` — which unrolls to
        ``t_k = k + max(bank_free, cummax(r_j - j))``, a running maximum
        instead of a Python loop.  The carried ``bank_free`` state and the
        per-access truncated conflict-cycle counter match the sequential
        walk exactly.
        """
        start = np.empty(lines.size, dtype=np.float64)
        geometry = level.tags.geometry
        order, starts, ends = group_spans(
            geometry.bank_index(lines, level.banks), upper_bound=level.banks
        )
        sorted_banks = geometry.bank_index(lines[order[starts]], level.banks)
        for bank, lo, hi in zip(sorted_banks.tolist(), starts.tolist(), ends.tolist()):
            span = order[lo:hi]
            offsets = np.arange(hi - lo, dtype=np.float64)
            ready = cycles[span] - offsets
            ready[0] = max(ready[0], level.bank_free[bank])
            np.maximum.accumulate(ready, out=ready)
            ready += offsets
            start[span] = ready
            level.bank_free[bank] = float(ready[-1]) + 1.0
        level.stats.bank_conflict_cycles += int(np.trunc(start - cycles).sum())
        return start

    def _access_batch_vectorised(
        self, addresses: np.ndarray, cycles: np.ndarray, writes: np.ndarray
    ) -> np.ndarray:
        """The per-set vectorised L1 walk (see the module docstring).

        Stages, each identical in effect to the sequential walk:

        1. bank-queue service times for every access (closed-form);
        2. per-set LRU hit/miss/victim classification
           (:meth:`LruTagArray.replay`);
        3. a sequential walk over only the accesses that consult L2 —
           fills (with exact MSHR-merge and prune bookkeeping), dirty
           victim writebacks and forwarded write-throughs;
        4. hit completion times, vectorised: a per-line gather of the
           most recent outstanding fill decides which hits merge into an
           MSHR entry and wait for it.
        """
        n = addresses.size
        if n == 0:
            return np.empty(0, dtype=np.float64)
        level = self.l1
        stats = level.stats
        lines = level.array.geometry.line_address(addresses)
        start = self._bank_times_vectorised(level, lines, cycles)
        hit, victim_line, victim_dirty = level.array.replay(lines, writes)

        hits = int(np.count_nonzero(hit))
        write_count = int(np.count_nonzero(writes))
        write_hits = int(np.count_nonzero(hit & writes))
        stats.read_hits += hits - write_hits
        stats.write_hits += write_hits
        stats.read_misses += (n - hits) - (write_count - write_hits)
        stats.write_misses += write_count - write_hits
        stats.writebacks += int(np.count_nonzero(victim_dirty))

        write_back, write_allocate = level.write_back, level.write_allocate
        # Accesses that install a fill and thereby publish an MSHR entry.
        fills = ~hit if write_allocate else ~hit & ~writes
        # Accesses that consult the next level one at a time: every miss,
        # plus write hits when the level is write-through.
        slow = ~hit if write_back else ~hit | writes

        # Stage-4 gather structure, built *before* stage 3 mutates the
        # MSHR map: for each access, the batch position of the latest
        # earlier fill of the same line (or the carried fill time).  The
        # grouping key is the dense line index, whose small range keeps
        # the partition on the radix-sort path.
        mshr = level.mshr
        line_keys = lines // level.line_bytes
        order, line_starts, line_ends = group_spans(
            line_keys, upper_bound=int(line_keys.max()) + 1
        )
        grouped_lines = lines[order]
        counts = line_ends - line_starts
        carried = np.fromiter(
            (mshr.get(int(line), -np.inf) for line in grouped_lines[line_starts].tolist()),
            dtype=np.float64,
            count=line_starts.size,
        )
        fill_positions = np.where(fills[order], np.arange(n), -1)
        np.maximum.accumulate(fill_positions, out=fill_positions)
        previous_fill_idx = np.empty(n, dtype=np.int64)
        previous_fill_idx[0] = -1
        previous_fill_idx[1:] = fill_positions[:-1]
        in_batch = previous_fill_idx >= np.repeat(line_starts, counts)

        # Stage 3: the L2-bound residue, walked sequentially in stream
        # order with the exact policy of ``_level_access``.  ``complete``
        # starts as the plain hit service time; the sequential walk
        # overwrites every L2-bound access and the stage-4 merge pass
        # lifts pending hits onto their outstanding fills.
        hit_latency = level.hit_latency
        complete = start + hit_latency
        fill_time = np.full(n, -np.inf, dtype=np.float64)
        prune_positions: list[int] = []
        prune_cycles: list[float] = []
        mshr_limit = 4 * level.mshr_entries
        next_access = self._l2_access
        tracer = active_tracer()
        walk_begin = tracer.clock() if tracer is not None else 0.0
        residue = np.flatnonzero(slow).tolist()
        for k in residue:
            line = int(lines[k])
            cycle = float(start[k])
            if hit[k] or (writes[k] and not write_allocate):
                # Write-through write hit / no-allocate write miss: the
                # write is forwarded, nothing is installed.
                complete[k] = max(cycle + hit_latency, next_access(line, True, cycle))
                continue
            outstanding = mshr.get(line)
            if outstanding is not None and outstanding > cycle:
                stats.mshr_merges += 1
                fill = outstanding
            else:
                fill = max(cycle + hit_latency, next_access(line, False, cycle))
                mshr[line] = fill
                if len(mshr) > mshr_limit:
                    level.prune_mshr(cycle)
                    prune_positions.append(k)
                    prune_cycles.append(cycle)
            if victim_dirty[k]:
                next_access(int(victim_line[k]), True, cycle)
            complete[k] = fill
            fill_time[k] = fill
        if tracer is not None:
            tracer.wall_event(
                "residue walk", walk_begin, args={"accesses": len(residue)}
            )

        # Stage 4: hit completions.  A hit on a line whose fill is still
        # outstanding merges and completes no earlier than the fill.
        gathered = fill_time[order][np.maximum(previous_fill_idx, 0)]
        previous_fill = np.empty(n, dtype=np.float64)
        previous_fill[order] = np.where(in_batch, gathered, np.repeat(carried, counts))
        pending = hit & (previous_fill > start)
        if prune_positions and pending.any():
            # A prune between the fill and the hit may have dropped the
            # landed entry; mirror the sequential walk's visibility.
            previous_position = np.full(n, -1, dtype=np.int64)
            previous_position[order] = np.where(
                in_batch, order[np.maximum(previous_fill_idx, 0)], -1
            )
            chosen = np.flatnonzero(pending)
            at = np.asarray(prune_positions, dtype=np.int64)[None, :]
            when = np.asarray(prune_cycles, dtype=np.float64)[None, :]
            in_window = (at > previous_position[chosen][:, None]) & (
                at < chosen[:, None]
            )
            dropped = np.any(
                in_window & (when >= previous_fill[chosen][:, None]), axis=1
            )
            pending[chosen[dropped]] = False
        stats.mshr_merges += int(np.count_nonzero(pending))
        fast = hit if write_back else hit & ~writes
        merging = pending & fast
        complete[merging] = np.maximum(complete[merging], previous_fill[merging])
        return complete
