"""Execution statistics shared by the CGRA simulators.

The power model (``repro.power``) converts these counters into energy, and
the analysis layer (``repro.analysis``) turns them into the Figure 11/12
comparisons, so the field names here are the vocabulary of the whole
evaluation pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExecutionStats"]


@dataclass
class ExecutionStats:
    """Counters collected while executing one kernel on one core."""

    cycles: int = 0
    threads: int = 0

    # Functional-unit activity.
    alu_ops: int = 0
    fpu_ops: int = 0
    special_ops: int = 0
    control_ops: int = 0
    split_join_ops: int = 0

    # Memory activity (global memory goes through the hierarchy whose own
    # counters are merged in separately by the harness).
    global_loads: int = 0
    global_stores: int = 0
    scratch_loads: int = 0
    scratch_stores: int = 0

    # Inter-thread communication (dMT-CGRA).
    elevator_retags: int = 0
    elevator_constants: int = 0
    eldst_forwards: int = 0
    eldst_memory_loads: int = 0
    spilled_tokens: int = 0
    lvc_accesses: int = 0

    # Synchronisation (baselines).
    barrier_arrivals: int = 0
    barrier_wait_cycles: int = 0

    # Interconnect.
    tokens_sent: int = 0
    noc_hops: int = 0

    # Token matching.
    token_buffer_inserts: int = 0
    token_buffer_matches: int = 0

    # GPGPU-specific counters (filled by the Fermi simulator, zero for CGRA).
    instructions_issued: int = 0
    instructions_per_lane: int = 0
    register_reads: int = 0
    register_writes: int = 0

    #: Free-form counters; values are usually numeric, but annotations such
    #: as ``shard_fallback_reason`` may carry strings.
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ helpers
    def bump(self, name: str, amount: int | float | str = 1) -> None:
        """Increment a named counter (core field or ``extra``).

        Non-numeric values (annotations like ``shard_fallback_reason``)
        are stored last-writer-wins instead of summed.
        """
        if hasattr(self, name) and name != "extra":
            setattr(self, name, getattr(self, name) + amount)
        elif isinstance(amount, (int, float)):
            current = self.extra.get(name, 0)
            self.extra[name] = (current if isinstance(current, (int, float)) else 0) + amount
        else:
            self.extra[name] = amount

    @property
    def compute_ops(self) -> int:
        return self.alu_ops + self.fpu_ops + self.special_ops

    @property
    def memory_accesses(self) -> int:
        return (
            self.global_loads
            + self.global_stores
            + self.scratch_loads
            + self.scratch_stores
        )

    @property
    def ops_per_cycle(self) -> float:
        total = self.compute_ops + self.control_ops + self.split_join_ops
        return total / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict[str, int | float]:
        out: dict[str, int | float] = {
            name: getattr(self, name)
            for name in (
                "cycles",
                "threads",
                "alu_ops",
                "fpu_ops",
                "special_ops",
                "control_ops",
                "split_join_ops",
                "global_loads",
                "global_stores",
                "scratch_loads",
                "scratch_stores",
                "elevator_retags",
                "elevator_constants",
                "eldst_forwards",
                "eldst_memory_loads",
                "spilled_tokens",
                "lvc_accesses",
                "barrier_arrivals",
                "barrier_wait_cycles",
                "tokens_sent",
                "noc_hops",
                "token_buffer_inserts",
                "token_buffer_matches",
                "instructions_issued",
                "instructions_per_lane",
                "register_reads",
                "register_writes",
            )
        }
        out.update(self.extra)
        return out

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Combine the stats of two cores running in parallel.

        Counters are summed element-wise without coercion, so float-valued
        ``extra`` counters (e.g. merged in from the memory hierarchy) keep
        their fractional part.  ``cycles`` takes the maximum (the cores run
        concurrently), ``threads`` the total, and ``instructions_per_lane``
        — a per-lane average, not a volume counter — is averaged weighted
        by the thread count of each side.
        """
        merged = ExecutionStats()
        for name, value in self.as_dict().items():
            merged.bump(name, value)
        for name, value in other.as_dict().items():
            merged.bump(name, value)
        merged.cycles = max(self.cycles, other.cycles)
        merged.threads = self.threads + other.threads
        if merged.threads:
            merged.instructions_per_lane = (
                self.instructions_per_lane * self.threads
                + other.instructions_per_lane * other.threads
            ) // merged.threads
        else:
            merged.instructions_per_lane = (
                self.instructions_per_lane + other.instructions_per_lane
            ) // 2
        return merged
