"""Kernel launch descriptors.

A :class:`KernelLaunch` bundles everything needed to run one kernel on one
simulated core: the dataflow graph (raw or compiled), the thread-block
geometry and the initial contents of its global arrays — the Python
equivalent of a CUDA ``kernel<<<1, block>>>(args...)`` call with one thread
block per core, which is how the paper evaluates a single SM / CGRA core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.graph.dfg import DataflowGraph
from repro.kernel.arrays import ArraySpec
from repro.kernel.geometry import ThreadGeometry
from repro.memory.image import MemoryImage

__all__ = ["KernelLaunch"]


@dataclass
class KernelLaunch:
    """One kernel invocation: a graph plus its input data."""

    graph: DataflowGraph
    inputs: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        metadata = self.graph.metadata
        if "block_dim" not in metadata or "arrays" not in metadata:
            raise SimulationError(
                "graph is missing launch metadata; build it with KernelBuilder.finish()"
            )
        for name in self.inputs:
            if name not in metadata["arrays"]:
                raise SimulationError(f"input '{name}' is not an array of this kernel")

    # ------------------------------------------------------------------ queries
    @property
    def geometry(self) -> ThreadGeometry:
        return ThreadGeometry(tuple(self.graph.metadata["block_dim"]))

    @property
    def num_threads(self) -> int:
        return self.geometry.num_threads

    @property
    def arrays(self) -> dict[str, ArraySpec]:
        return dict(self.graph.metadata["arrays"])

    def build_memory_image(self) -> MemoryImage:
        """Create a fresh memory image initialised with the launch inputs."""
        image = MemoryImage(self.arrays.values())
        image.initialise(self.inputs)
        return image

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelLaunch('{self.graph.name}', threads={self.num_threads}, "
            f"inputs={sorted(self.inputs)})"
        )
