"""Multi-core sharded execution of one kernel launch.

The paper evaluates one thread block on one core (Sec. 5.1); this module
is the scaling layer on top of that model: a :class:`KernelLaunch` is
sharded across ``SystemConfig.cores`` simulated cores with a block-cyclic
thread partition.  Each core runs its thread subset on its own
:class:`~repro.memory.hierarchy.MemoryHierarchy` (private L1/L2/DRAM
timing state) against the shared functional memory image, and the
per-core :class:`~repro.sim.stats.ExecutionStats` are combined with
:meth:`ExecutionStats.merge` (cycles take the maximum — the cores run
concurrently — and volume counters the sum).

Sharding requires an inter-thread-free graph: ELEVATOR/ELDST/BARRIER
nodes couple threads, and tokens cannot cross cores.  Use
:func:`run_sharded`, which transparently falls back to a single core for
graphs that do communicate between threads (inter-thread communication
stays confined to one core, matching the paper's one-block-per-core
model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.compiler.pipeline import CompiledKernel
from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.sim.cycle import CycleResult, build_simulator, run_cycle_accurate
from repro.sim.launch import KernelLaunch
from repro.sim.stats import ExecutionStats

__all__ = ["MulticoreResult", "shard_threads", "run_multicore", "run_sharded"]


@dataclass
class MulticoreResult:
    """Outcome of a sharded run; mirrors :class:`CycleResult`'s query API."""

    cycles: int
    stats: ExecutionStats
    memory: MemoryImage
    outputs: dict[str, list[Any]]
    core_results: list[CycleResult] = field(default_factory=list)

    @property
    def cores(self) -> int:
        return len(self.core_results)

    def array(self, name: str) -> np.ndarray:
        return self.memory.array(name)

    def output(self, name: str) -> list[Any]:
        return self.outputs[name]

    def counters(self) -> dict[str, int | float]:
        """Merged execution counters plus summed per-core hierarchy counters."""
        merged: dict[str, int | float] = dict(self.stats.as_dict())
        for result in self.core_results:
            for key, value in result.hierarchy.stats().flat().items():
                merged[key] = merged.get(key, 0) + value
        return merged


def shard_threads(num_threads: int, cores: int, block: int) -> list[np.ndarray]:
    """Block-cyclic partition of ``range(num_threads)`` over ``cores``.

    Consecutive blocks of ``block`` linear thread IDs are dealt to the
    cores round-robin, so every core sees a representative slice of the
    TID space (and therefore of the address space) instead of one
    contiguous chunk.
    """
    if cores < 1:
        raise SimulationError("cores must be >= 1")
    if block < 1:
        raise SimulationError("shard block size must be >= 1")
    tids = np.arange(num_threads, dtype=np.int64)
    owner = (tids // block) % cores
    return [tids[owner == core] for core in range(cores)]


def run_multicore(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    cores: int | None = None,
    engine: str = "auto",
    block: int | None = None,
    max_cycles: int = 20_000_000,
) -> MulticoreResult:
    """Shard ``launch`` across ``cores`` simulated cores and run them.

    The cores are simulated sequentially but modelled as concurrent:
    each gets a private memory hierarchy and its own injection stream,
    and the merged ``cycles`` is the maximum over cores.
    """
    config = compiled.config
    cores = config.cores if cores is None else int(cores)
    if cores < 1:
        raise SimulationError("cores must be >= 1")
    if compiled.graph.has_interthread():
        raise SimulationError(
            "cannot shard a graph with inter-thread dependences "
            "(ELEVATOR/ELDST/BARRIER nodes) across cores; use run_sharded() "
            "to fall back to a single core"
        )
    block = max(1, compiled.replicas) if block is None else int(block)

    memory = launch.build_memory_image()
    shards = shard_threads(compiled.num_threads, cores, block)
    core_results: list[CycleResult] = []
    stats: ExecutionStats | None = None
    outputs: dict[str, list[Any]] = {}
    for shard in shards:
        if shard.size == 0:
            continue
        simulator = build_simulator(
            compiled,
            launch,
            engine=engine,
            hierarchy=MemoryHierarchy(config.memory),
            max_cycles=max_cycles,
            thread_ids=shard,
            memory=memory,
        )
        result = simulator.run()
        core_results.append(result)
        stats = result.stats if stats is None else stats.merge(result.stats)
        for name, values in result.outputs.items():
            slot = outputs.setdefault(name, [None] * compiled.num_threads)
            for tid in shard.tolist():
                slot[tid] = values[tid]
    if stats is None:
        raise SimulationError("launch has no threads to shard")

    return MulticoreResult(
        cycles=stats.cycles,
        stats=stats,
        memory=memory,
        outputs=outputs,
        core_results=core_results,
    )


def run_sharded(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    engine: str = "auto",
    cores: int | None = None,
    block: int | None = None,
    max_cycles: int = 20_000_000,
) -> CycleResult | MulticoreResult:
    """Run ``launch`` on the configured number of cores.

    Inter-thread-free kernels are sharded block-cyclically across
    ``cores`` (default ``SystemConfig.cores``); kernels that communicate
    between threads fall back to a single core, because tokens cannot
    cross the core boundary.  The ``engine`` request is best-effort in
    the same way: forcing ``"batched"`` applies it wherever the graph is
    legal for it and quietly uses the event engine for communicating
    kernels, so suite-wide sweeps (``--engine batched``) run everything
    instead of failing on the first barrier.
    """
    cores = compiled.config.cores if cores is None else int(cores)
    if compiled.graph.has_interthread() and engine == "batched":
        engine = "event"
    if cores <= 1 or compiled.graph.has_interthread():
        return run_cycle_accurate(
            compiled, launch, engine=engine, max_cycles=max_cycles
        )
    return run_multicore(
        compiled,
        launch,
        cores=cores,
        engine=engine,
        block=block,
        max_cycles=max_cycles,
    )
