"""Multi-core sharded execution of one kernel launch.

The paper evaluates one thread block on one core (Sec. 5.1); this module
is the scaling layer on top of that model: a :class:`KernelLaunch` is
sharded across ``SystemConfig.cores`` simulated cores with a block-cyclic
thread partition.

Sharding legality (window-aligned partitioning)
-----------------------------------------------
Inter-thread communication never crosses a transmission-window boundary
(Sec. 3.2, :func:`repro.graph.interthread.same_window`), so a kernel that
communicates between threads *can* be sharded as long as every shard is a
union of whole windows.  :func:`plan_shards` inspects every
ELEVATOR/ELDST (and windowed BARRIER) node, takes the LCM of their
windows, and aligns the block-cyclic shard block to a multiple of that
LCM; graphs whose only inter-thread node is an un-windowed BARRIER shard
with a per-shard barrier, which preserves every value as long as no data
flows through the scratchpad.  Only when no legal cut exists — an
unbounded window, a window spanning the whole block, or whole-block
scratchpad synchronisation — does :func:`run_sharded` fall back to a
single core, recording the reason in ``stats.extra["shard_fallback_reason"]``.

Memory model
------------
Each core owns a private L1 and a ``1/cores`` slice of the L2
(:meth:`MemorySystemConfig.sliced`), but all cores contend for one
:class:`~repro.memory.shared_dram.SharedDRAM` device through per-core
ports, so DRAM bandwidth no longer multiplies with the core count.  Set
``SystemConfig.shared_dram=False`` to restore the legacy private-DRAM
model.  Per-core :class:`~repro.sim.stats.ExecutionStats` are combined
with :meth:`ExecutionStats.merge` (cycles take the maximum — the cores
run concurrently — and volume counters the sum).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analyze.manager import analyze_kernel
from repro.compiler.pipeline import CompiledKernel
from repro.errors import SimulationError
from repro.graph.dfg import DataflowGraph
from repro.graph.interthread import window_batch_problem
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.memory.shared_dram import SharedDRAM
from repro.obs.trace import CORE_LANE, active_tracer
from repro.sim.cycle import CycleResult, _run_single_core, build_simulator
from repro.sim.launch import KernelLaunch
from repro.sim.stats import ExecutionStats

__all__ = [
    "MulticoreResult",
    "ShardPlan",
    "plan_shards",
    "shard_threads",
    "run_multicore",
    "run_sharded",
]


@dataclass
class MulticoreResult:
    """Outcome of a sharded run; mirrors :class:`CycleResult`'s query API."""

    cycles: int
    stats: ExecutionStats
    memory: MemoryImage
    outputs: dict[str, list[Any]]
    core_results: list[CycleResult] = field(default_factory=list)
    shared_dram: SharedDRAM | None = None
    plan: "ShardPlan | None" = None

    @property
    def cores(self) -> int:
        return len(self.core_results)

    def array(self, name: str) -> np.ndarray:
        return self.memory.array(name)

    def output(self, name: str) -> list[Any]:
        return self.outputs[name]

    def counters(self) -> dict[str, int | float]:
        """Merged execution counters plus summed per-core hierarchy counters.

        With a shared DRAM each core's hierarchy reports only its own port
        traffic, so the per-core sum still counts every device access
        exactly once.
        """
        merged: dict[str, int | float] = dict(self.stats.as_dict())
        for result in self.core_results:
            for key, value in result.hierarchy.stats().flat().items():
                merged[key] = merged.get(key, 0) + value
        return merged


@dataclass(frozen=True)
class ShardPlan:
    """How (or why not) one compiled kernel shards across cores.

    ``block`` is the block-cyclic shard block size, always a multiple of
    ``window_lcm`` so every shard is a union of whole transmission
    windows; ``fallback_reason`` is set when the graph admits no legal
    multi-core cut and the launch must run on a single core.
    """

    cores: int
    block: int
    window_lcm: int
    fallback_reason: str | None = None
    #: Stable analyzer diagnostic code naming the fallback class
    #: (``RA030``/``RA031``/``RA032``/``RA033``); ``None`` when sharded.
    fallback_code: str | None = None

    @property
    def sharded(self) -> bool:
        return self.cores > 1 and self.fallback_reason is None


def _fallback(block: int, reason: str, code: str) -> ShardPlan:
    return ShardPlan(
        cores=1, block=block, window_lcm=1, fallback_reason=reason, fallback_code=code
    )


def plan_shards(
    compiled: CompiledKernel, cores: int | None = None, block: int | None = None
) -> ShardPlan:
    """Pick a window-aligned block-cyclic partition for ``compiled``.

    The shard boundary legality rule is ``boundary ≡ 0 (mod LCM of all
    transmission windows)``: every ELEVATOR/ELDST node must carry a
    bounded ``window`` and every shard block is padded up to a multiple
    of the windows' least common multiple.  BARRIER nodes contribute
    their ``window`` if they have one; an un-windowed barrier is legal
    per-shard only when the graph moves no data through the scratchpad.

    The legality facts come from the static analyzer's shardability
    verdict (cached on the kernel); only the block-size arithmetic, which
    depends on the caller's ``block``, is evaluated here.
    """
    config = compiled.config
    cores = config.cores if cores is None else int(cores)
    if cores < 1:
        raise SimulationError("cores must be >= 1")
    base_block = max(1, compiled.replicas) if block is None else int(block)
    if base_block < 1:
        raise SimulationError("shard block size must be >= 1")
    if cores == 1:
        return ShardPlan(cores=1, block=base_block, window_lcm=1)

    num_threads = compiled.num_threads
    verdict = analyze_kernel(compiled).shard
    if verdict.fallback_code in ("RA030", "RA031", "RA032"):
        # Block-size independent: no legal cut exists for any block.
        assert verdict.fallback_reason is not None
        return _fallback(base_block, verdict.fallback_reason, verdict.fallback_code)

    lcm = verdict.window_lcm
    aligned = -(-base_block // lcm) * lcm
    if aligned >= num_threads:
        return _fallback(
            aligned,
            f"shard block of {aligned} leaves no work for a second core "
            f"({num_threads} threads)",
            "RA033",
        )
    return ShardPlan(cores=cores, block=aligned, window_lcm=lcm)


def shard_threads(num_threads: int, cores: int, block: int) -> list[np.ndarray]:
    """Block-cyclic partition of ``range(num_threads)`` over ``cores``.

    Consecutive blocks of ``block`` linear thread IDs are dealt to the
    cores round-robin, so every core sees a representative slice of the
    TID space (and therefore of the address space) instead of one
    contiguous chunk.  For communicating kernels ``block`` must be a
    multiple of the graph's window LCM (see :func:`plan_shards`) so that
    each block is a union of whole transmission windows.
    """
    if cores < 1:
        raise SimulationError("cores must be >= 1")
    if block < 1:
        raise SimulationError("shard block size must be >= 1")
    tids = np.arange(num_threads, dtype=np.int64)
    owner = (tids // block) % cores
    return [tids[owner == core] for core in range(cores)]


def _best_effort_engine(engine: str, graph: DataflowGraph) -> str:
    """Degrade a forced ``engine`` to one that can execute ``graph``.

    Suite-wide sweeps force one engine across every workload
    (``--engine batched``); rather than fail on the first kernel the
    engine cannot run, the request is honoured wherever legal and
    degraded elsewhere: ``batched`` on a communicating graph becomes
    ``window-batched`` when the traffic is feed-forward (else
    ``event``), ``window-batched`` becomes ``batched`` on an
    inter-thread-free graph and ``event`` on a graph it cannot batch.
    The resolved engine is always recorded in
    ``stats.extra["engine"]``, and a degraded run additionally records
    the original request in ``stats.extra["requested_engine"]``, so
    records never lie about what ran — or about what was asked for.
    """
    if engine == "batched" and graph.has_interthread():
        return "window-batched" if window_batch_problem(graph) is None else "event"
    if engine == "window-batched" and window_batch_problem(graph) is not None:
        return "batched" if not graph.has_interthread() else "event"
    return engine


def run_multicore(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    cores: int | None = None,
    engine: str = "auto",
    block: int | None = None,
    max_cycles: int = 20_000_000,
) -> MulticoreResult:
    """Shard ``launch`` across ``cores`` simulated cores and run them.

    The cores are simulated sequentially but modelled as concurrent: each
    gets a private L1 and L2 slice, its own injection stream, and a port
    onto the shared DRAM device (``SystemConfig.shared_dram``), and the
    merged ``cycles`` is the maximum over cores.  Communicating kernels
    are accepted whenever :func:`plan_shards` finds a window-aligned cut;
    otherwise a :class:`SimulationError` explains why (use
    :func:`run_sharded` for the transparent single-core fallback).
    """
    config = compiled.config
    cores = config.cores if cores is None else int(cores)
    plan = plan_shards(compiled, cores=cores, block=block)
    if cores > 1 and plan.fallback_reason is not None:
        raise SimulationError(
            f"cannot shard '{compiled.graph.name}' across {cores} cores: "
            f"{plan.fallback_reason}"
        )
    requested = engine
    engine = _best_effort_engine(engine, compiled.graph)

    shards = shard_threads(compiled.num_threads, cores, plan.block)
    active = sum(1 for shard in shards if shard.size)
    shared = (
        SharedDRAM(config.memory.dram, line_bytes=config.memory.l2.line_bytes)
        if config.shared_dram and active > 1
        else None
    )
    core_memory = (
        config.memory.sliced(active) if config.shared_dram and active > 1 else config.memory
    )

    memory = launch.build_memory_image()
    core_results: list[CycleResult] = []
    stats: ExecutionStats | None = None
    outputs: dict[str, list[Any]] = {}
    tracer = active_tracer()
    for shard in shards:
        if shard.size == 0:
            continue
        core = len(core_results)
        simulator = build_simulator(
            compiled,
            launch,
            engine=engine,
            hierarchy=MemoryHierarchy(
                core_memory, dram=shared.port() if shared else None
            ),
            max_cycles=max_cycles,
            thread_ids=shard,
            memory=memory,
            dram_contention=active if shared else 1,
            trace_pid=core,
        )
        if tracer is None:
            result = simulator.run()
        else:
            begin = tracer.clock()
            result = simulator.run()
            tracer.wall_event(
                f"shard {core}", begin, args={"threads": int(shard.size)}
            )
            tracer.set_lane_name(core, CORE_LANE, "core span")
            tracer.event(
                f"core {core}", "shard", 0.0, float(result.cycles),
                pid=core, tid=CORE_LANE, args={"threads": int(shard.size)},
            )
        core_results.append(result)
        stats = result.stats if stats is None else stats.merge(result.stats)
        for name, values in result.outputs.items():
            slot = outputs.setdefault(name, [None] * compiled.num_threads)
            for tid in shard.tolist():
                slot[tid] = values[tid]
    if stats is None:
        raise SimulationError("launch has no threads to shard")
    # The per-core "cores" entries summed to the active core count during the
    # merge; overwrite explicitly so provenance never depends on merge order.
    stats.extra["cores"] = len(core_results)
    stats.extra["sharded_cores"] = len(core_results)
    stats.extra["shard_block"] = plan.block
    stats.extra["shard_window_lcm"] = plan.window_lcm
    if requested not in ("auto", engine):
        stats.extra["requested_engine"] = requested

    return MulticoreResult(
        cycles=stats.cycles,
        stats=stats,
        memory=memory,
        outputs=outputs,
        core_results=core_results,
        shared_dram=shared,
        plan=plan,
    )


def _run_sharded_impl(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    engine: str = "auto",
    cores: int | None = None,
    block: int | None = None,
    max_cycles: int = 20_000_000,
) -> CycleResult | MulticoreResult:
    """Sharding core behind :func:`repro.sim.simulate`.

    Kernels whose inter-thread communication fits inside bounded
    transmission windows are sharded block-cyclically across ``cores``
    (default ``SystemConfig.cores``) with shard boundaries aligned to the
    LCM of the windows; kernels that admit no legal cut fall back to a
    single core with the human-readable reason recorded in
    ``stats.extra["shard_fallback_reason"]`` and the analyzer's stable
    diagnostic code in ``stats.extra["shard_fallback_code"]``, so
    benchmark sweeps can tell sharded runs from fallback runs.  The
    ``engine`` request is best-effort in the same way
    (:func:`_best_effort_engine`), so suite-wide sweeps (``--engine
    batched``) run everything instead of failing on the first barrier.
    """
    cores = compiled.config.cores if cores is None else int(cores)
    requested = engine
    engine = _best_effort_engine(engine, compiled.graph)
    plan = plan_shards(compiled, cores=cores, block=block)
    if not plan.sharded:
        result = _run_single_core(
            compiled, launch, engine=engine, max_cycles=max_cycles
        )
        if requested not in ("auto", engine):
            result.stats.extra["requested_engine"] = requested
        if cores > 1 and plan.fallback_reason is not None:
            result.stats.extra["shard_fallback_reason"] = plan.fallback_reason
            result.stats.extra["shard_fallback_code"] = plan.fallback_code
        return result
    # Pass the original request through: run_multicore re-degrades it and
    # records the requested vs resolved pair itself.
    return run_multicore(
        compiled,
        launch,
        cores=cores,
        engine=requested,
        block=plan.block,
        max_cycles=max_cycles,
    )


def run_sharded(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    engine: str = "auto",
    cores: int | None = None,
    block: int | None = None,
    max_cycles: int = 20_000_000,
) -> CycleResult | MulticoreResult:
    """Deprecated: use :func:`repro.sim.simulate` instead.

    Kept for backwards compatibility; delegates to the same sharding
    core as ``simulate()`` and returns the legacy raw result.
    """
    warnings.warn(
        "run_sharded() is deprecated; use repro.sim.simulate() "
        "(returns a SimulationResult with resolved engine/cores provenance)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_sharded_impl(
        compiled,
        launch,
        engine=engine,
        cores=cores,
        block=block,
        max_cycles=max_cycles,
    )
