"""Simulators of the (d)MT-CGRA execution model.

Three execution layers share one semantics:

* :mod:`repro.sim.functional` — the untimed, demand-driven interpreter;
  the correctness oracle every other engine is tested against.
* :mod:`repro.sim.cycle` — the event-driven, cycle-level model: one heap
  event per token per edge.  Exact, and the only engine that models
  inter-thread communication (ELEVATOR/ELDST/BARRIER), the full cache/
  DRAM behaviour and token-buffer backpressure.
* :mod:`repro.sim.batched` — the wave-batched NumPy engine for graphs
  without inter-thread dependences: each static node is evaluated once
  per injection wave over a vector of thread IDs, with completion times
  computed analytically from edge latencies and issue-port contention,
  and memory classified by the capacity/conflict-aware analytic cache
  model of :mod:`repro.sim.analytic_cache` (set-associative LRU at both
  levels on the shared :mod:`repro.memory.tagcore` core, replayed in
  the event engine's access order and mirrored into the hierarchy
  counters — exactly equal to the event engine's counters on
  order-stable traces).  An order of magnitude faster than the event
  engine at 4k+ threads, with bit-identical outputs and identical
  operation counters.

:func:`repro.sim.cycle.run_cycle_accurate` is the single entry point:
``engine="auto"`` (the default) routes inter-thread-free graphs to the
batched engine and everything else to the event engine; ``"event"`` and
``"batched"`` force a specific engine.

:mod:`repro.sim.multicore` scales beyond one core: an inter-thread-free
launch is sharded block-cyclically across ``SystemConfig.cores``
simulated cores, each with a private memory hierarchy, and the per-core
stats are combined with :meth:`ExecutionStats.merge`.  Use
:func:`repro.sim.multicore.run_sharded` to get the configured number of
cores with automatic single-core fallback for communicating kernels.
"""

from repro.sim.analytic_cache import AnalyticMemoryModel
from repro.sim.batched import BatchedSimulator, run_batched
from repro.sim.cycle import (
    ENGINES,
    CycleResult,
    CycleSimulator,
    resolve_engine,
    run_cycle_accurate,
)
from repro.sim.functional import FunctionalResult, FunctionalSimulator, run_functional
from repro.sim.launch import KernelLaunch
from repro.sim.multicore import (
    MulticoreResult,
    run_multicore,
    run_sharded,
    shard_threads,
)
from repro.sim.stats import ExecutionStats

__all__ = [
    "AnalyticMemoryModel",
    "BatchedSimulator",
    "CycleResult",
    "CycleSimulator",
    "ENGINES",
    "ExecutionStats",
    "FunctionalResult",
    "FunctionalSimulator",
    "KernelLaunch",
    "MulticoreResult",
    "resolve_engine",
    "run_batched",
    "run_cycle_accurate",
    "run_functional",
    "run_multicore",
    "run_sharded",
    "shard_threads",
]
