"""Simulators: functional dataflow interpreter and cycle-level CGRA model."""

from repro.sim.cycle import CycleResult, CycleSimulator, run_cycle_accurate
from repro.sim.functional import FunctionalResult, FunctionalSimulator, run_functional
from repro.sim.launch import KernelLaunch
from repro.sim.stats import ExecutionStats

__all__ = [
    "CycleResult",
    "CycleSimulator",
    "ExecutionStats",
    "FunctionalResult",
    "FunctionalSimulator",
    "KernelLaunch",
    "run_cycle_accurate",
    "run_functional",
]
