"""Simulators of the (d)MT-CGRA execution model.

:func:`simulate` is the single entry point.  It resolves the engine,
plans the multi-core cut and returns a :class:`SimulationResult` whose
``engine``/``cores`` fields record what actually ran::

    from repro.sim import simulate
    result = simulate(compiled, launch)            # engine="auto"
    result.engine                                   # "batched" | "window-batched" | "event"
    result.array("C"), result.cycles, result.counters()

Four execution layers share one semantics:

* :mod:`repro.sim.functional` — the untimed, demand-driven interpreter;
  the correctness oracle every other engine is tested against.
* :mod:`repro.sim.cycle` — the event-driven, cycle-level model: one heap
  event per token per edge.  Exact, and the only engine that resolves
  inter-thread *recurrences* (cyclic ELEVATOR chains), the full cache/
  DRAM behaviour and token-buffer backpressure.
* :mod:`repro.sim.batched` — the wave-batched NumPy engine for graphs
  without inter-thread dependences: each static node is evaluated once
  per injection wave over a vector of thread IDs, with completion times
  computed analytically from edge latencies and issue-port contention,
  and memory classified by the capacity/conflict-aware analytic cache
  model of :mod:`repro.sim.analytic_cache` (set-associative LRU at both
  levels on the shared :mod:`repro.memory.tagcore` core, replayed in
  the event engine's access order and mirrored into the hierarchy
  counters — exactly equal to the event engine's counters on
  order-stable traces).
* :mod:`repro.sim.window_batched` — the batched engine extended to
  *feed-forward* communicating kernels (ELEVATOR/ELDST/BARRIER whose
  consumer→producer maps are static and whose barriers carry bounded
  transmission windows): token traffic resolves as vector gathers and
  segmented reductions over window groups instead of heap events.

Engine selection (``engine="auto"``) consumes the static analyzer's
verdict — ``RA040`` inter-thread-free → batched, ``RA044``
window-batchable → window-batched, ``RA041`` otherwise → event — so the
static verdict IS the dispatch decision.  All engines produce
bit-identical outputs and identical operation counters.

:mod:`repro.sim.multicore` scales beyond one core: a launch is sharded
block-cyclically across ``SystemConfig.cores`` simulated cores (shard
boundaries aligned to the transmission-window LCM), each core with a
private memory hierarchy, and per-core stats combined with
:meth:`ExecutionStats.merge`.  ``simulate(cores=...)`` drives this
layer; kernels that admit no legal cut fall back to one core with the
reason recorded in ``stats.extra``.

The legacy entry points ``run_cycle_accurate`` and ``run_sharded``
remain as deprecated thin wrappers over the same dispatch cores.
"""

from repro.sim.analytic_cache import AnalyticMemoryModel
from repro.sim.api import SimulationResult, simulate
from repro.sim.batched import BatchedSimulator, run_batched
from repro.sim.cycle import (
    ENGINES,
    CycleResult,
    CycleSimulator,
    resolve_engine,
    run_cycle_accurate,
)
from repro.sim.functional import FunctionalResult, FunctionalSimulator, run_functional
from repro.sim.launch import KernelLaunch
from repro.sim.multicore import (
    MulticoreResult,
    run_multicore,
    run_sharded,
    shard_threads,
)
from repro.sim.stats import ExecutionStats
from repro.sim.window_batched import WindowBatchedSimulator, run_window_batched

__all__ = [
    "AnalyticMemoryModel",
    "BatchedSimulator",
    "CycleResult",
    "CycleSimulator",
    "ENGINES",
    "ExecutionStats",
    "FunctionalResult",
    "FunctionalSimulator",
    "KernelLaunch",
    "MulticoreResult",
    "SimulationResult",
    "WindowBatchedSimulator",
    "resolve_engine",
    "run_batched",
    "run_cycle_accurate",
    "run_functional",
    "run_multicore",
    "run_sharded",
    "run_window_batched",
    "shard_threads",
    "simulate",
]
