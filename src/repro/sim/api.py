"""The one front door to the simulator stack: :func:`simulate`.

Historically a caller had to pick between three entry points —
``run_cycle_accurate`` (single core, engine plumbing),
``run_sharded``/``run_multicore`` (multi-core partitioning) — and thread
engine-forcing flags through each.  :func:`simulate` collapses them: it
resolves the engine (``"auto"`` consumes the static analyzer's
``RA040``/``RA041``/``RA044`` verdict), plans the multi-core cut, runs,
and returns a :class:`SimulationResult` that records *what actually ran*
— the resolved engine (never ``"auto"``) and the core count — next to
the usual outputs, stats and memory image.

The legacy entry points remain as thin deprecated wrappers returning
the raw results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.compiler.pipeline import CompiledKernel
from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.obs.trace import active_mode
from repro.sim.cycle import ENGINES, CycleResult, _run_single_core
from repro.sim.launch import KernelLaunch
from repro.sim.multicore import MulticoreResult, _run_sharded_impl
from repro.sim.stats import ExecutionStats

__all__ = ["SimulationResult", "simulate"]


@dataclass(frozen=True)
class SimulationResult:
    """What one :func:`simulate` call produced, with resolved provenance.

    ``engine`` is the engine that actually ran (``"event"``,
    ``"batched"`` or ``"window-batched"`` — never ``"auto"``) and
    ``cores`` the number of cores the launch ran on; both also live in
    ``stats.extra`` so cached counter rows carry the same provenance.
    ``raw`` is the underlying :class:`CycleResult` (single core) or
    :class:`MulticoreResult` (sharded) for callers that need
    engine-specific detail (per-core results, the shard plan, the
    hierarchy object).
    """

    raw: CycleResult | MulticoreResult
    engine: str
    cores: int

    @property
    def cycles(self) -> int:
        return self.raw.cycles

    @property
    def stats(self) -> ExecutionStats:
        return self.raw.stats

    @property
    def memory(self) -> MemoryImage:
        return self.raw.memory

    @property
    def outputs(self) -> dict[str, list[Any]]:
        return self.raw.outputs

    @property
    def hierarchy(self) -> MemoryHierarchy:
        """The memory hierarchy of a single-core run.

        Sharded runs have one hierarchy per core — read those from
        ``raw.core_results``.
        """
        if isinstance(self.raw, CycleResult):
            return self.raw.hierarchy
        raise SimulationError(
            "a sharded run has one hierarchy per core; read raw.core_results"
        )

    def array(self, name: str) -> np.ndarray:
        return self.raw.array(name)

    def output(self, name: str) -> list[Any]:
        return self.raw.outputs[name]

    def counters(self) -> dict[str, int | float]:
        return self.raw.counters()


def simulate(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    *,
    engine: str = "auto",
    cores: int | None = None,
    memory: MemoryHierarchy | None = None,
    block: int | None = None,
    max_cycles: int = 20_000_000,
) -> SimulationResult:
    """Run ``launch`` and return a :class:`SimulationResult`.

    ``engine`` selects the execution engine: ``"event"`` (exact
    event-driven), ``"batched"`` (wave-batched NumPy,
    inter-thread-free graphs), ``"window-batched"`` (its extension to
    feed-forward communicating graphs) or ``"auto"`` (default), which
    picks the fastest engine able to execute the graph — the static
    analyzer's engine verdict.  A forced engine is degraded to a capable
    one when the graph demands it (a benchmark sweep forcing
    ``"batched"`` over a barrier kernel runs window-batched or event
    instead of failing); the *resolved* engine is what
    ``result.engine`` and ``stats.extra["engine"]`` report, and a
    degraded run records the original request in
    ``stats.extra["requested_engine"]``.

    ``cores`` (default ``SystemConfig.cores``) shards the launch
    block-cyclically across simulated cores when a window-aligned cut
    exists, falling back to one core otherwise; ``block`` overrides the
    shard block size.  Passing an explicit ``memory`` hierarchy pins the
    run to a single core on that hierarchy (and ``"auto"`` then resolves
    to the event engine, whose counters are exact on the caller's
    hierarchy object).

    All engines produce bit-identical outputs and identical operation
    counters; the batched engines' cycle counts and cache counters come
    from the analytic cache model (exact on order-stable traces, close
    estimates otherwise).
    """
    if engine not in ENGINES:
        raise SimulationError(f"unknown engine '{engine}'; expected one of {ENGINES}")
    if memory is not None:
        if cores is not None and int(cores) != 1:
            raise SimulationError(
                "an explicit memory hierarchy pins the run to a single core; "
                "drop cores= or pass cores=1"
            )
        raw: CycleResult | MulticoreResult = _run_single_core(
            compiled, launch, hierarchy=memory, engine=engine, max_cycles=max_cycles
        )
    else:
        raw = _run_sharded_impl(
            compiled,
            launch,
            engine=engine,
            cores=cores,
            block=block,
            max_cycles=max_cycles,
        )
    # Trace provenance: records say whether (and how) a run was traced.
    raw.stats.extra["trace"] = active_mode()
    resolved = str(raw.stats.extra.get("engine", "event"))
    return SimulationResult(
        raw=raw, engine=resolved, cores=int(raw.stats.extra.get("cores", 1))
    )
