"""Cycle-level simulator of the (d)MT-CGRA core.

The simulator executes a compiled kernel under the dynamic tagged-token
dataflow model of Sec. 3:

* the configured graph is shared by all threads; every value travelling
  through the fabric is tagged with its thread ID;
* threads are streamed into the array (``replicas`` threads per cycle,
  the paper's "a new thread can thus be injected into the computational
  fabric on every cycle");
* a node fires once all of a thread's operands have arrived (the dataflow
  firing rule), subject to the node's issue port being free;
* results travel over the statically-routed NoC to their consumers, paying
  one cycle per hop of the mapped route;
* load/store (and eLDST) nodes access the shared L1/L2/DRAM hierarchy and
  the scratchpad, whose bank and latency models provide the memory
  back-pressure that differentiates the three architectures;
* elevator nodes retag tokens to implement ``fromThreadOrConst``; eLDST
  units forward loaded values to later threads (``fromThreadOrMem``);
  spilled transfers go through the Live Value Cache instead;
* barrier nodes (used only by the plain MT-CGRA baseline) park per-thread
  state in the Live Value Cache and release it when the last thread of the
  block arrives.

The result carries both the timing (total cycles, per-class activity,
memory-system counters) and the functional outputs, which tests compare
against the functional interpreter and the NumPy references.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.arch.lvc import LiveValueCache
from repro.compiler.pipeline import CompiledKernel
from repro.config.system import SystemConfig
from repro.errors import DeadlockError, SimulationError
from repro.graph.dfg import DataflowGraph
from repro.graph.interthread import (
    eldst_source,
    elevator_destination,
    elevator_source,
    thread_subset_problem,
    window_batch_problem,
)
from repro.graph.node import Node
from repro.graph.opcodes import Opcode, UnitClass
from repro.graph.semantics import PURE_OPCODES, coerce, evaluate_pure
from repro.kernel.geometry import ThreadGeometry
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.memory.request import AccessType
from repro.obs.trace import INJECT_LANE, active_tracer
from repro.sim.launch import KernelLaunch
from repro.sim.stats import ExecutionStats

__all__ = [
    "CycleResult",
    "CycleSimulator",
    "ENGINES",
    "build_simulator",
    "edge_timing",
    "resolve_engine",
    "run_cycle_accurate",
    "unit_latency",
]


@dataclass
class CycleResult:
    """Outcome of a cycle-level run."""

    cycles: int
    stats: ExecutionStats
    memory: MemoryImage
    outputs: dict[str, list[Any]]
    hierarchy: MemoryHierarchy

    def array(self, name: str) -> np.ndarray:
        return self.memory.array(name)

    def output(self, name: str) -> list[Any]:
        return self.outputs[name]

    def counters(self) -> dict[str, int | float]:
        """Execution counters merged with the memory-hierarchy counters."""
        merged = dict(self.stats.as_dict())
        merged.update(self.hierarchy.stats().flat())
        return merged


# Event kinds, ordered so simultaneous events process deterministically.
_EV_TOKEN = 0
_EV_FORWARD = 1
_EV_INJECT = 2


def edge_timing(
    compiled: CompiledKernel,
) -> tuple[dict[tuple[int, int], int], dict[tuple[int, int], int]]:
    """Per-edge ``(latency, hops)`` maps shared by both engines.

    Token transfer latency is the NoC injection latency plus one
    ``hop_latency`` per mapped hop, clamped to at least one cycle; the
    hop count itself is what ``noc_hops`` accounting uses.  Keeping this
    in one place is part of the engines' equivalence contract.
    """
    noc = compiled.config.noc
    latency: dict[tuple[int, int], int] = {}
    hops_of: dict[tuple[int, int], int] = {}
    for edge in compiled.graph.edges():
        hops = compiled.edge_hops(edge.src, edge.dst)
        latency[(edge.src, edge.dst)] = max(1, noc.injection_latency + hops * noc.hop_latency)
        hops_of[(edge.src, edge.dst)] = hops
    return latency, hops_of


def unit_latency(config: SystemConfig, node: Node) -> int:
    """Pipeline latency of the functional unit that hosts ``node``."""
    lat = config.latency
    table = {
        UnitClass.ALU: lat.alu,
        UnitClass.FPU: lat.fpu,
        UnitClass.SPECIAL: lat.special,
        UnitClass.CONTROL: lat.control,
        UnitClass.SPLIT_JOIN: lat.split_join,
        UnitClass.ELEVATOR: lat.elevator,
        UnitClass.BARRIER: lat.control,
        UnitClass.LDST: lat.ldst_issue,
        UnitClass.ELDST: lat.ldst_issue,
        UnitClass.SINK: 1,
        UnitClass.SOURCE: 0,
    }
    return table[node.unit_class]


@dataclass
class _NodeState:
    """Mutable per-node simulation state."""

    node: Node
    arity: int
    latency: int
    port_free_at: list[int] = field(default_factory=list)
    pending: dict[int, dict[int, Any]] = field(default_factory=dict)
    # eLDST-specific: forwarded values waiting for their consumer thread and
    # consumer threads waiting for their forwarded value.
    forwards_ready: dict[int, tuple[Any, int]] = field(default_factory=dict)
    waiting_consumers: dict[int, tuple[int, Any]] = field(default_factory=dict)
    # Barrier-specific: arrivals and expected arrival counts, grouped by
    # barrier window (group ``-1`` means "every thread this core runs").
    barrier_arrived: dict[int, dict[int, tuple[int, Any]]] = field(default_factory=dict)
    barrier_expected: dict[int, int] = field(default_factory=dict)
    executions: int = 0


class CycleSimulator:
    """Event-driven, cycle-level model of one (d)MT-CGRA core."""

    def __init__(
        self,
        compiled: CompiledKernel,
        launch: KernelLaunch,
        hierarchy: MemoryHierarchy | None = None,
        max_cycles: int = 20_000_000,
        thread_ids: "Sequence[int] | None" = None,
        memory: MemoryImage | None = None,
        trace_pid: int = 0,
    ) -> None:
        if compiled.graph.metadata.get("num_threads") != launch.graph.metadata.get(
            "num_threads"
        ):
            raise SimulationError("compiled kernel and launch disagree on thread count")
        self.compiled = compiled
        self.config: SystemConfig = compiled.config
        self.graph: DataflowGraph = compiled.graph
        self.launch = launch
        self.geometry: ThreadGeometry = ThreadGeometry(compiled.block_dim)
        self.num_threads = self.geometry.num_threads
        self.max_cycles = max_cycles
        # The subset of threads this core executes (multi-core sharding).
        # Inter-thread communication cannot cross cores, so a subset is only
        # legal when it is closed under the graph's communication: a union
        # of whole transmission windows (ELEVATOR/ELDST and windowed
        # BARRIER nodes), with un-windowed barriers degrading to per-subset
        # barriers only for scratchpad-free graphs.
        if thread_ids is None:
            self._thread_ids = list(range(self.num_threads))
        else:
            self._thread_ids = [int(t) for t in thread_ids]
            if self._thread_ids and (
                min(self._thread_ids) < 0 or max(self._thread_ids) >= self.num_threads
            ):
                raise SimulationError("thread_ids outside the launch geometry")
            if len(self._thread_ids) != self.num_threads and self.graph.has_interthread():
                problem = thread_subset_problem(
                    self.graph, self._thread_ids, self.num_threads
                )
                if problem is not None:
                    raise SimulationError(
                        f"cannot simulate this thread subset of '{self.graph.name}': "
                        f"{problem}"
                    )

        self.memory = memory if memory is not None else launch.build_memory_image()
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        self.lvc = LiveValueCache()
        self.stats = ExecutionStats(threads=len(self._thread_ids))
        self.outputs: dict[str, list[Any]] = {}

        self._events: list[tuple[int, int, int, tuple]] = []
        self._sequence = itertools.count()
        self._nodes: dict[int, _NodeState] = {}
        self._successors: dict[int, list[tuple[int, int]]] = {}
        self._edge_latency: dict[tuple[int, int], int] = {}
        self._edge_hops: dict[tuple[int, int], int] = {}
        self._sink_nodes: list[int] = []
        self._sink_done: dict[int, int] = {}
        self._retired = 0
        self._completion_cycle = 0

        # Observability: the ambient tracer is bound once here; every hot
        # path guards its hook with one `is not None` branch, so tracing
        # off costs a pointer comparison per event and nothing else.
        self._trace = active_tracer()
        self._trace_pid = int(trace_pid)
        self._lane: dict[int, int] = {}

        self._prepare()
        if self._trace is not None:
            self._init_trace_lanes()

    # ------------------------------------------------------------------ setup
    def _latency_of(self, node: Node) -> int:
        return unit_latency(self.config, node)

    def _prepare(self) -> None:
        replicas = self.compiled.replicas
        for node in self.graph.nodes:
            state = _NodeState(
                node=node,
                arity=self.graph.arity_of(node.node_id),
                latency=self._latency_of(node),
                port_free_at=[0] * max(1, replicas),
            )
            self._nodes[node.node_id] = state
            if node.opcode is Opcode.BARRIER:
                window = node.param("window")
                for tid in self._thread_ids:
                    group = tid // int(window) if window else -1
                    state.barrier_expected[group] = state.barrier_expected.get(group, 0) + 1
            self._successors[node.node_id] = self.graph.successors(node.node_id)
            if node.opcode in (Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT):
                self._sink_nodes.append(node.node_id)
            if node.opcode is Opcode.OUTPUT:
                self.outputs.setdefault(
                    str(node.param("name")), [None] * self.num_threads
                )
        self._edge_latency, self._edge_hops = edge_timing(self.compiled)
        self._sink_done = {tid: 0 for tid in self._thread_ids}

    def _init_trace_lanes(self) -> None:
        """One trace lane per node, named after its hosting physical PE."""
        tracer = self._trace
        assert tracer is not None
        placement = (
            self.compiled.mapping.placement.node_to_unit if self.compiled.mapping else {}
        )
        tracer.set_process_name(self._trace_pid, f"core {self._trace_pid}")
        for node in self.graph.nodes:
            lane = int(placement.get(node.node_id, node.node_id))
            self._lane[node.node_id] = lane
            tracer.set_lane_name(self._trace_pid, lane, f"PE {lane}")

    # ------------------------------------------------------------------ events
    def _push(self, cycle: int, kind: int, payload: tuple) -> None:
        heapq.heappush(self._events, (cycle, kind, next(self._sequence), payload))

    def _send_to_successors(self, node_id: int, tid: int, value: Any, cycle: int) -> None:
        for dst, port in self._successors[node_id]:
            latency = self._edge_latency[(node_id, dst)]
            self.stats.tokens_sent += 1
            # One token traverses the mapped route exactly once; hops come
            # from the routed mapping, not from the clamped edge latency.
            self.stats.noc_hops += self._edge_hops[(node_id, dst)]
            self._push(cycle + latency, _EV_TOKEN, (dst, port, tid, value))

    # ------------------------------------------------------------------- run
    def run(self) -> CycleResult:
        self._schedule_injection()
        total_sinks = len(self._sink_nodes)
        if total_sinks == 0:
            raise SimulationError("kernel has no store or output nodes; nothing to run")

        while self._events:
            cycle, kind, _, payload = heapq.heappop(self._events)
            if cycle > self.max_cycles:
                raise DeadlockError(
                    f"simulation of '{self.graph.name}' exceeded {self.max_cycles} cycles"
                )
            if kind == _EV_INJECT:
                self._inject_thread(payload[0], cycle)
            elif kind == _EV_TOKEN:
                self._token_arrival(payload[0], payload[1], payload[2], payload[3], cycle)
            elif kind == _EV_FORWARD:
                self._forward_ready(payload[0], payload[1], payload[2], cycle)

        if self._retired != len(self._thread_ids):
            missing = [t for t, done in self._sink_done.items() if done < total_sinks]
            raise DeadlockError(
                f"kernel '{self.graph.name}' deadlocked: {len(missing)} thread(s) never "
                f"retired (e.g. thread {missing[0]})"
            )

        self.stats.cycles = self._completion_cycle
        # Provenance: cached counter rows must be able to tell which engine
        # (and how many cores — overwritten by the multi-core merge) made them.
        self.stats.extra["engine"] = "event"
        self.stats.extra.setdefault("cores", 1)
        return CycleResult(
            cycles=self._completion_cycle,
            stats=self.stats,
            memory=self.memory,
            outputs=self.outputs,
            hierarchy=self.hierarchy,
        )

    # --------------------------------------------------------------- injection
    def _schedule_injection(self) -> None:
        replicas = max(1, self.compiled.replicas)
        for position, tid in enumerate(self._thread_ids):
            self._push(position // replicas, _EV_INJECT, (tid,))

    def _inject_thread(self, tid: int, cycle: int) -> None:
        if self._trace is not None:
            self._trace.instant(
                "inject", "inject", cycle, pid=self._trace_pid, tid=INJECT_LANE,
                args={"tid": tid},
            )
        for node_id, state in self._nodes.items():
            node = state.node
            if node.opcode is Opcode.CONST:
                self._send_to_successors(
                    node_id, tid, coerce(node.param("value"), node.dtype), cycle
                )
            elif node.opcode in (
                Opcode.TID_X,
                Opcode.TID_Y,
                Opcode.TID_Z,
                Opcode.TID_LINEAR,
            ):
                x, y, z = self.geometry.unlinearize(tid)
                value = {
                    Opcode.TID_X: x,
                    Opcode.TID_Y: y,
                    Opcode.TID_Z: z,
                    Opcode.TID_LINEAR: tid,
                }[node.opcode]
                self._send_to_successors(node_id, tid, value, cycle)
            elif node.opcode is Opcode.ELEVATOR:
                # Threads without a valid producer receive the fallback
                # constant, generated when their slot is injected (Fig. 4).
                src = elevator_source(node, tid, self.geometry.block_dim, self.num_threads)
                if src is None:
                    self.stats.elevator_constants += 1
                    if self._trace is not None:
                        self._trace.instant(
                            f"{node.label()} const", "interthread", cycle,
                            pid=self._trace_pid, tid=self._lane[node_id],
                            args={"tid": tid},
                        )
                    self._send_to_successors(
                        node_id,
                        tid,
                        coerce(node.param("const"), node.dtype),
                        cycle + state.latency,
                    )

    # ----------------------------------------------------------- token arrival
    def _token_arrival(self, node_id: int, port: int, tid: int, value: Any, cycle: int) -> None:
        state = self._nodes[node_id]
        self.stats.token_buffer_inserts += 1
        if self._trace is not None:
            self._trace.instant(
                "token", "token", cycle, pid=self._trace_pid,
                tid=self._lane[node_id], args={"tid": tid, "port": port},
            )
        slot = state.pending.setdefault(tid, {})
        if port in slot:
            raise SimulationError(
                f"duplicate operand {port} for thread {tid} at {state.node.label()}"
            )
        slot[port] = value
        if len(slot) >= state.arity:
            del state.pending[tid]
            self.stats.token_buffer_matches += 1
            operands = [slot[p] for p in sorted(slot)]
            self._fire(state, tid, operands, cycle)

    def _issue_cycle(self, state: _NodeState, ready_cycle: int) -> int:
        """Account for the node's issue port (one op per cycle per replica).

        Bookkeeping is kept in whole cycles so the issue cycle is exact;
        the previous float bookkeeping truncated through ``int(start)``.
        """
        port_index = min(range(len(state.port_free_at)), key=state.port_free_at.__getitem__)
        start = max(int(ready_cycle), state.port_free_at[port_index])
        state.port_free_at[port_index] = start + 1
        return start

    # -------------------------------------------------------------------- fire
    def _fire(self, state: _NodeState, tid: int, operands: list[Any], cycle: int) -> None:
        node = state.node
        op = node.opcode
        issue = self._issue_cycle(state, cycle)
        state.executions += 1
        self._count_unit_op(node)
        if self._trace is not None:
            self._trace.event(
                node.label(), "op", issue, max(1, state.latency),
                pid=self._trace_pid, tid=self._lane[node.node_id],
                args={"tid": tid, "cls": node.unit_class.name},
            )

        if op in PURE_OPCODES:
            value = evaluate_pure(node, operands)
            self._send_to_successors(node.node_id, tid, value, issue + state.latency)
            return
        if op is Opcode.LOAD:
            self._execute_load(state, tid, operands, issue)
            return
        if op is Opcode.STORE:
            self._execute_store(state, tid, operands, issue)
            return
        if op is Opcode.SCRATCH_LOAD:
            self._execute_scratch(state, tid, operands, issue, is_store=False)
            return
        if op is Opcode.SCRATCH_STORE:
            self._execute_scratch(state, tid, operands, issue, is_store=True)
            return
        if op is Opcode.ELEVATOR:
            self._execute_elevator(state, tid, operands, issue)
            return
        if op is Opcode.ELDST:
            self._execute_eldst(state, tid, operands, issue)
            return
        if op is Opcode.BARRIER:
            self._execute_barrier(state, tid, operands, issue)
            return
        if op is Opcode.OUTPUT:
            self.outputs[str(node.param("name"))][tid] = operands[0]
            self._sink_completed(tid, issue + 1)
            return
        raise SimulationError(f"cycle simulator cannot execute {op.value}")

    def _count_unit_op(self, node: Node) -> None:
        cls = node.unit_class
        if cls is UnitClass.ALU:
            self.stats.alu_ops += 1
        elif cls is UnitClass.FPU:
            self.stats.fpu_ops += 1
        elif cls is UnitClass.SPECIAL:
            self.stats.special_ops += 1
        elif cls is UnitClass.CONTROL:
            self.stats.control_ops += 1
        elif cls is UnitClass.SPLIT_JOIN:
            self.stats.split_join_ops += 1

    # ------------------------------------------------------------------ memory
    def _execute_load(self, state: _NodeState, tid: int, operands: list[Any], issue: int) -> None:
        node = state.node
        array = node.param("array")
        index = int(operands[0])
        address = self.memory.address_of(array, index)
        result = self.hierarchy.access(address, AccessType.LOAD, issue, node.param("elem_bytes", 4))
        value = coerce(self.memory.load(array, index), node.dtype)
        self.stats.global_loads += 1
        if self._trace is not None:
            self._trace.event(
                f"load {array}", "mem", issue, result.complete_cycle - issue,
                pid=self._trace_pid, tid=self._lane[node.node_id], args={"tid": tid},
            )
        self._send_to_successors(node.node_id, tid, value, result.complete_cycle)

    def _execute_store(self, state: _NodeState, tid: int, operands: list[Any], issue: int) -> None:
        node = state.node
        array = node.param("array")
        index = int(operands[0])
        value = operands[1]
        address = self.memory.address_of(array, index)
        result = self.hierarchy.access(
            address, AccessType.STORE, issue, node.param("elem_bytes", 4)
        )
        self.memory.store(array, index, value)
        self.stats.global_stores += 1
        if self._trace is not None:
            self._trace.event(
                f"store {array}", "mem", issue, result.complete_cycle - issue,
                pid=self._trace_pid, tid=self._lane[node.node_id], args={"tid": tid},
            )
        self._send_to_successors(node.node_id, tid, value, result.complete_cycle)
        self._sink_completed(tid, result.complete_cycle)

    def _execute_scratch(
        self, state: _NodeState, tid: int, operands: list[Any], issue: int, is_store: bool
    ) -> None:
        node = state.node
        array = node.param("array")
        index = int(operands[0])
        address = self.memory.address_of(array, index)
        complete = self.hierarchy.scratch_access(address, is_store, issue)
        if self._trace is not None:
            self._trace.event(
                f"{'scratch store' if is_store else 'scratch load'} {array}",
                "scratch", issue, complete - issue,
                pid=self._trace_pid, tid=self._lane[node.node_id], args={"tid": tid},
            )
        if is_store:
            value = operands[1]
            self.memory.store(array, index, value)
            self.stats.scratch_stores += 1
            self._send_to_successors(node.node_id, tid, value, complete)
            self._sink_completed(tid, complete)
        else:
            value = coerce(self.memory.load(array, index), node.dtype)
            self.stats.scratch_loads += 1
            self._send_to_successors(node.node_id, tid, value, complete)

    # ---------------------------------------------------------- inter-thread
    def _execute_elevator(
        self, state: _NodeState, producer_tid: int, operands: list[Any], issue: int
    ) -> None:
        node = state.node
        dst = elevator_destination(
            node, producer_tid, self.geometry.block_dim, self.num_threads
        )
        if dst is None:
            return  # the producer's token has no consumer; it is dropped
        complete = issue + state.latency
        if node.param("spilled"):
            # The transfer goes through the Live Value Cache instead of the
            # fabric: one write by the producer, one read by the consumer.
            self.stats.spilled_tokens += 1
            self.stats.lvc_accesses += 2
            complete += 2 * self.lvc.access_latency
            self.lvc.write((node.node_id, dst), operands[0])
            self.lvc.read((node.node_id, dst))
        self.stats.elevator_retags += 1
        self._send_to_successors(node.node_id, dst, operands[0], complete)

    def _execute_eldst(
        self, state: _NodeState, tid: int, operands: list[Any], issue: int
    ) -> None:
        node = state.node
        predicate = bool(operands[1])
        src = eldst_source(node, tid, self.geometry.block_dim, self.num_threads)
        if predicate or src is None:
            array = node.param("array")
            index = int(operands[0])
            address = self.memory.address_of(array, index)
            result = self.hierarchy.access(
                address, AccessType.LOAD, issue, node.param("elem_bytes", 4)
            )
            value = coerce(self.memory.load(array, index), node.dtype)
            self.stats.global_loads += 1
            self.stats.eldst_memory_loads += 1
            if self._trace is not None:
                self._trace.event(
                    f"eldst load {array}", "mem", issue, result.complete_cycle - issue,
                    pid=self._trace_pid, tid=self._lane[node.node_id], args={"tid": tid},
                )
            self._complete_eldst(state, tid, value, result.complete_cycle)
            return
        ready = state.forwards_ready.pop(tid, None)
        if ready is not None:
            value, available_at = ready
            self._complete_eldst(state, tid, value, max(issue, available_at))
            return
        state.waiting_consumers[tid] = (issue, None)

    def _complete_eldst(self, state: _NodeState, tid: int, value: Any, cycle: int) -> None:
        node = state.node
        extra = 0
        if node.param("spilled"):
            self.stats.spilled_tokens += 1
            self.stats.lvc_accesses += 2
            extra = 2 * self.lvc.access_latency
        elif node.param("external_buffer_nodes"):
            extra = int(node.param("external_buffer_nodes")) * self.config.latency.elevator
        complete = cycle + self.config.latency.ldst_issue + extra
        self._send_to_successors(node.node_id, tid, value, complete)
        # Loop the value back for the next consumer thread (Fig. 9).
        next_tid = tid + abs(int(node.param("delta")))
        if next_tid < self.num_threads:
            src_of_next = eldst_source(
                node, next_tid, self.geometry.block_dim, self.num_threads
            )
            if src_of_next == tid:
                self._push(complete, _EV_FORWARD, (node.node_id, next_tid, value))

    def _forward_ready(self, node_id: int, tid: int, value: Any, cycle: int) -> None:
        state = self._nodes[node_id]
        self.stats.eldst_forwards += 1
        if self._trace is not None:
            self._trace.instant(
                "eldst_forward", "interthread", cycle,
                pid=self._trace_pid, tid=self._lane[node_id], args={"tid": tid},
            )
        waiting = state.waiting_consumers.pop(tid, None)
        if waiting is not None:
            issue, _ = waiting
            self._complete_eldst(state, tid, value, max(issue, cycle))
        else:
            state.forwards_ready[tid] = (value, cycle)

    # ---------------------------------------------------------------- barrier
    def _execute_barrier(
        self, state: _NodeState, tid: int, operands: list[Any], issue: int
    ) -> None:
        """Park ``tid`` until its barrier group is complete.

        An un-windowed barrier waits for every thread this core runs (the
        whole block on a single core, the shard on a sharded run); a
        ``window`` parameter bounds the synchronisation to consecutive
        groups of ``window`` linear TIDs, mirroring the transmission
        windows of Sec. 3.2.
        """
        node = state.node
        window = node.param("window")
        group = tid // int(window) if window else -1
        arrived = state.barrier_arrived.setdefault(group, {})
        arrived[tid] = (issue, operands[0])
        self.stats.barrier_arrivals += 1
        # Parking the in-flight value costs one LVC write per thread.
        self.stats.lvc_accesses += 1
        self.lvc.write((node.node_id, tid), operands[0])
        if len(arrived) == state.barrier_expected[group]:
            release = max(arrival for arrival, _ in arrived.values())
            release += self.config.latency.control
            if self._trace is not None:
                first = min(arrival for arrival, _ in arrived.values())
                self._trace.event(
                    "barrier_release", "interthread", first, release - first,
                    pid=self._trace_pid, tid=self._lane[node.node_id],
                    args={"group": group, "count": len(arrived)},
                )
            for waiting_tid, (arrival, value) in arrived.items():
                self.stats.barrier_wait_cycles += release - arrival
                self.stats.lvc_accesses += 1
                self.lvc.read((node.node_id, waiting_tid))
                self._send_to_successors(
                    node.node_id, waiting_tid, value, release + self.lvc.access_latency
                )
            del state.barrier_arrived[group]

    # -------------------------------------------------------------- retirement
    def _sink_completed(self, tid: int, cycle: int) -> None:
        self._completion_cycle = max(self._completion_cycle, cycle)
        self._sink_done[tid] += 1
        if self._sink_done[tid] == len(self._sink_nodes):
            self._retired += 1


#: Engines selectable through :func:`repro.sim.simulate`.
ENGINES = ("auto", "event", "batched", "window-batched")


def resolve_engine(engine: str, graph: DataflowGraph) -> str:
    """Resolve ``"auto"`` to a concrete engine for ``graph``.

    Graphs without inter-thread dependences (no ELEVATOR/ELDST/BARRIER
    nodes) run on the wave-batched NumPy engine; communicating graphs
    whose traffic is feed-forward and window-bounded
    (:func:`repro.graph.interthread.window_batch_problem`) run on the
    window-batched engine; everything else — inter-thread recurrences,
    whole-block barriers — runs on the event-driven simulator, which
    models token forwarding exactly.
    """
    if engine not in ENGINES:
        raise SimulationError(f"unknown engine '{engine}'; expected one of {ENGINES}")
    if engine != "auto":
        return engine
    if not graph.has_interthread():
        return "batched"
    return "window-batched" if window_batch_problem(graph) is None else "event"


def build_simulator(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    engine: str = "auto",
    hierarchy: MemoryHierarchy | None = None,
    max_cycles: int = 20_000_000,
    thread_ids: Sequence[int] | None = None,
    memory: MemoryImage | None = None,
    dram_contention: int = 1,
    trace_pid: int = 0,
):
    """Construct the simulator for ``engine`` (the single dispatch site).

    Used by :func:`run_cycle_accurate` and the multi-core sharding layer
    so engine selection and construction live in one place.
    ``dram_contention`` is the number of cores sharing the DRAM device; the
    event engine models the contention exactly through the shared bank
    state, while the batched engine folds it into its analytic DRAM
    queueing model.

    ``"auto"`` consumes the static analyzer's engine verdict
    (``RA040``/``RA041``, cached on the kernel) rather than re-probing the
    graph; :func:`resolve_engine` remains the definition both agree on.
    """
    if engine == "auto":
        from repro.analyze.manager import analyze_kernel

        resolved = analyze_kernel(compiled).engine
    else:
        resolved = resolve_engine(engine, compiled.graph)
    if resolved in ("batched", "window-batched"):
        if resolved == "window-batched":
            from repro.sim.window_batched import WindowBatchedSimulator as sim_cls
        else:
            from repro.sim.batched import BatchedSimulator as sim_cls

        return sim_cls(
            compiled,
            launch,
            hierarchy=hierarchy,
            max_cycles=max_cycles,
            thread_ids=thread_ids,
            memory=memory,
            dram_contention=dram_contention,
            trace_pid=trace_pid,
        )
    return CycleSimulator(
        compiled,
        launch,
        hierarchy=hierarchy,
        max_cycles=max_cycles,
        thread_ids=thread_ids,
        memory=memory,
        trace_pid=trace_pid,
    )


def _run_single_core(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    hierarchy: MemoryHierarchy | None = None,
    engine: str = "auto",
    max_cycles: int = 20_000_000,
) -> CycleResult:
    """Single-core run; the engine-dispatch core behind :func:`repro.sim.simulate`.

    ``engine`` selects the execution engine: ``"event"`` is the exact
    event-driven model, ``"batched"`` the wave-batched NumPy engine for
    inter-thread-free graphs, ``"window-batched"`` its extension to
    feed-forward communicating graphs, and ``"auto"`` (the default)
    picks the fastest engine that can execute the graph.  All engines
    produce bit-identical outputs and identical operation counters; the
    batched engines' cycle counts and memory-hierarchy counters come
    from the capacity/conflict-aware analytic cache model
    (:mod:`repro.sim.analytic_cache`) — equal to the event engine's on
    order-stable traces, close estimates otherwise.  ``"auto"`` still
    resolves to the event engine when a ``hierarchy`` is passed in
    explicitly — a caller handing over a hierarchy wants its exact,
    event-accurate counters.
    """
    if engine == "auto" and hierarchy is not None:
        engine = "event"
    return build_simulator(
        compiled, launch, engine=engine, hierarchy=hierarchy, max_cycles=max_cycles
    ).run()


def run_cycle_accurate(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    hierarchy: MemoryHierarchy | None = None,
    engine: str = "auto",
    max_cycles: int = 20_000_000,
) -> CycleResult:
    """Deprecated: use :func:`repro.sim.simulate` instead.

    Thin single-core wrapper kept for backwards compatibility; it
    delegates to the same dispatch core as ``simulate()`` and returns
    the legacy :class:`CycleResult`.
    """
    warnings.warn(
        "run_cycle_accurate() is deprecated; use repro.sim.simulate() "
        "(returns a SimulationResult with resolved engine/cores provenance)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_single_core(
        compiled,
        launch,
        hierarchy=hierarchy,
        engine=engine,
        max_cycles=max_cycles,
    )
