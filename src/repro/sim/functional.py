"""Untimed functional dataflow interpreter.

The functional interpreter is the correctness oracle of the repository:
it executes a kernel dataflow graph for every thread of the block, fully
honouring the inter-thread communication semantics (elevator nodes, eLDST
forwarding, transmission windows, barriers), but without modelling time.
Workload tests compare its results — and the cycle simulator's results —
against NumPy references.

Evaluation is demand driven with memoisation: the interpreter pulls the
values required by every side-effecting node (stores and outputs) of every
thread.  Inter-thread recurrences such as the prefix-sum example (Fig. 6)
become recursive demands into other threads' values; a genuine cyclic
dependency (a kernel that could never satisfy the dataflow firing rule) is
reported as a :class:`~repro.errors.DeadlockError` with the offending
chain, mirroring a hardware deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DeadlockError, SimulationError
from repro.graph.dfg import DataflowGraph
from repro.graph.interthread import eldst_source, elevator_source
from repro.graph.opcodes import Opcode
from repro.graph.semantics import PURE_OPCODES, coerce, evaluate_pure
from repro.kernel.geometry import ThreadGeometry
from repro.memory.image import MemoryImage
from repro.sim.launch import KernelLaunch

__all__ = ["FunctionalResult", "FunctionalSimulator", "run_functional"]


@dataclass
class FunctionalResult:
    """Outcome of a functional run."""

    memory: MemoryImage
    outputs: dict[str, list[Any]]
    node_executions: dict[int, int] = field(default_factory=dict)

    def array(self, name: str) -> np.ndarray:
        return self.memory.array(name)

    def output(self, name: str) -> list[Any]:
        return self.outputs[name]


_SINK_OPCODES = (Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT)


class FunctionalSimulator:
    """Demand-driven evaluator of one kernel launch."""

    def __init__(self, launch: KernelLaunch) -> None:
        self.launch = launch
        self.graph: DataflowGraph = launch.graph
        self.geometry: ThreadGeometry = launch.geometry
        self.num_threads = self.geometry.num_threads
        self.memory = launch.build_memory_image()
        self.outputs: dict[str, list[Any]] = {}
        self._values: dict[tuple[int, int], Any] = {}
        self._node_executions: dict[int, int] = {}
        self._inputs_cache: dict[int, dict[int, int]] = {
            node.node_id: self.graph.inputs_of(node.node_id) for node in self.graph.nodes
        }

    # ------------------------------------------------------------------ driver
    def run(self) -> FunctionalResult:
        sinks = [n for n in self.graph.nodes if n.opcode in _SINK_OPCODES]
        for node in self.graph.nodes:
            if node.opcode is Opcode.OUTPUT:
                self.outputs.setdefault(
                    str(node.param("name")), [None] * self.num_threads
                )
        for tid in range(self.num_threads):
            for sink in sinks:
                self._demand(sink.node_id, tid)
        return FunctionalResult(
            memory=self.memory,
            outputs=self.outputs,
            node_executions=dict(self._node_executions),
        )

    # ------------------------------------------------------------- evaluation
    def _demand(self, node_id: int, tid: int) -> Any:
        """Evaluate ``(node_id, tid)`` iteratively (no Python recursion)."""
        root = (node_id, tid)
        if root in self._values:
            return self._values[root]
        stack: list[tuple[int, int]] = [root]
        on_stack: set[tuple[int, int]] = {root}
        while stack:
            frame = stack[-1]
            if frame in self._values:
                stack.pop()
                on_stack.discard(frame)
                continue
            missing = self._missing_dependencies(frame)
            if missing:
                # Push one dependency at a time so the stack stays a pure
                # ancestor path; a missing dependency already on that path is
                # then a genuine cyclic (deadlocking) dataflow dependency.
                dep = missing[0]
                if dep in on_stack:
                    chain = self._format_cycle(stack, dep)
                    raise DeadlockError(
                        f"kernel '{self.graph.name}' deadlocks: cyclic dataflow "
                        f"dependency {chain}"
                    )
                stack.append(dep)
                on_stack.add(dep)
                continue
            value = self._evaluate(frame)
            self._values[frame] = value
            self._node_executions[frame[0]] = self._node_executions.get(frame[0], 0) + 1
            stack.pop()
            on_stack.discard(frame)
        return self._values[root]

    def _format_cycle(self, stack: list[tuple[int, int]], dep: tuple[int, int]) -> str:
        labels = [
            f"{self.graph.node(nid).label()}@t{t}" for nid, t in stack[stack.index(dep):]
        ]
        labels.append(f"{self.graph.node(dep[0]).label()}@t{dep[1]}")
        return " -> ".join(labels)

    # ------------------------------------------------------------ dependencies
    def _missing_dependencies(self, frame: tuple[int, int]) -> list[tuple[int, int]]:
        node_id, tid = frame
        node = self.graph.node(node_id)
        deps: list[tuple[int, int]] = []
        inputs = self._inputs_cache[node_id]

        if node.opcode is Opcode.ELEVATOR:
            src_tid = elevator_source(node, tid, self.geometry.block_dim, self.num_threads)
            if src_tid is not None:
                deps.append((inputs[0], src_tid))
        elif node.opcode is Opcode.ELDST:
            deps.append((inputs[1], tid))  # predicate
            if 2 in inputs:
                deps.append((inputs[2], tid))  # ordering token
            pred_key = (inputs[1], tid)
            if pred_key in self._values:
                if bool(self._values[pred_key]):
                    deps.append((inputs[0], tid))  # index for the real load
                else:
                    src_tid = eldst_source(
                        node, tid, self.geometry.block_dim, self.num_threads
                    )
                    if src_tid is None:
                        deps.append((inputs[0], tid))  # fallback: load anyway
                    else:
                        deps.append((node_id, src_tid))  # forwarded value
        elif node.opcode is Opcode.BARRIER:
            for other in range(self.num_threads):
                deps.append((inputs[0], other))
        else:
            for port in sorted(inputs):
                deps.append((inputs[port], tid))

        return [d for d in deps if d not in self._values]

    # --------------------------------------------------------------- execution
    def _evaluate(self, frame: tuple[int, int]) -> Any:
        node_id, tid = frame
        node = self.graph.node(node_id)
        op = node.opcode
        inputs = self._inputs_cache[node_id]

        if op is Opcode.CONST:
            return coerce(node.param("value"), node.dtype)
        if op in (Opcode.TID_X, Opcode.TID_Y, Opcode.TID_Z, Opcode.TID_LINEAR):
            x, y, z = self.geometry.unlinearize(tid)
            return {
                Opcode.TID_X: x,
                Opcode.TID_Y: y,
                Opcode.TID_Z: z,
                Opcode.TID_LINEAR: tid,
            }[op]

        if op in PURE_OPCODES:
            operands = [self._values[(inputs[p], tid)] for p in sorted(inputs)]
            return evaluate_pure(node, operands)

        if op is Opcode.LOAD or op is Opcode.SCRATCH_LOAD:
            index = self._values[(inputs[0], tid)]
            return coerce(self.memory.load(node.param("array"), index), node.dtype)
        if op is Opcode.STORE or op is Opcode.SCRATCH_STORE:
            index = self._values[(inputs[0], tid)]
            value = self._values[(inputs[1], tid)]
            self.memory.store(node.param("array"), index, value)
            return value
        if op is Opcode.OUTPUT:
            value = self._values[(inputs[0], tid)]
            self.outputs[str(node.param("name"))][tid] = value
            return value
        if op is Opcode.BARRIER:
            return self._values[(inputs[0], tid)]

        if op is Opcode.ELEVATOR:
            src_tid = elevator_source(node, tid, self.geometry.block_dim, self.num_threads)
            if src_tid is None:
                return coerce(node.param("const"), node.dtype)
            return self._values[(inputs[0], src_tid)]

        if op is Opcode.ELDST:
            predicate = bool(self._values[(inputs[1], tid)])
            if predicate:
                index = self._values[(inputs[0], tid)]
                return coerce(self.memory.load(node.param("array"), index), node.dtype)
            src_tid = eldst_source(node, tid, self.geometry.block_dim, self.num_threads)
            if src_tid is None:
                index = self._values[(inputs[0], tid)]
                return coerce(self.memory.load(node.param("array"), index), node.dtype)
            return self._values[(node_id, src_tid)]

        raise SimulationError(f"functional simulator cannot execute {op.value}")


def run_functional(launch: KernelLaunch) -> FunctionalResult:
    """Convenience wrapper: build a simulator, run it, return the result."""
    return FunctionalSimulator(launch).run()
