"""Wave-batched NumPy execution engine for inter-thread-free kernels.

The event-driven :class:`~repro.sim.cycle.CycleSimulator` schedules one
heap event per token per edge, which is exact but costs minutes per
configuration on the Figure 11/12 problem sizes.  The dMT-CGRA execution
model is thread-parallel — the same static graph is traversed by
thousands of tagged threads — so for graphs *without* inter-thread
dependences (no ELEVATOR/ELDST/BARRIER nodes, see
:meth:`DataflowGraph.has_interthread`) every thread's walk through the
graph is independent and each static node can be evaluated once per
injection wave over a NumPy vector of thread IDs, the way the ESL-CGRA
simulator steps whole-array state per cycle instead of per token.

Per-thread completion times are computed analytically:

* a thread injected as the ``p``-th thread of this core becomes live at
  cycle ``p // replicas`` (the streamer injects ``replicas`` threads per
  cycle);
* a node's operands are ready at the maximum over its input edges of the
  producer's completion time plus the routed edge latency (injection
  latency + one cycle per mapped NoC hop, exactly the event engine's
  edge model);
* issue-port contention is resolved with a deterministic multi-server
  queue: the node's ``replicas`` issue ports each retire one operation
  per cycle, and firings are serviced in ready order.  The recurrence
  ``t_k = max(r_k, t_{k-ports} + 1)`` is evaluated in closed form with a
  running maximum, so the whole queue is vectorised;
* memory timing uses a vectorised compulsory-miss line model (first
  touch of a cache line pays the full L1+L2+DRAM latency, later touches
  the L1 hit latency).  The classification is mirrored into the
  hierarchy's counters so the energy pipeline sees a consistent
  estimate, but it approximates the event engine's exact cache model
  (no capacity/conflict misses, MSHRs or bank conflicts).

Outputs and memory contents are bit-identical to the event engine and
all operation counters (``alu_ops``, ``fpu_ops``, ``global_loads``,
``global_stores``, token/NoC counters, ...) are equal by construction;
only the cycle estimate is analytic rather than event-exact.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.compiler.pipeline import CompiledKernel
from repro.config.system import SystemConfig
from repro.errors import DeadlockError, MemoryModelError, SimulationError
from repro.graph.dfg import DataflowGraph
from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode, UnitClass
from repro.graph.semantics import PURE_OPCODES, coerce
from repro.kernel.geometry import ThreadGeometry
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.sim.cycle import CycleResult, edge_timing, unit_latency
from repro.sim.launch import KernelLaunch
from repro.sim.stats import ExecutionStats

__all__ = ["BatchedSimulator", "run_batched"]

_NP_DTYPE = {DType.F32: np.float64, DType.I32: np.int64, DType.BOOL: np.bool_}
_U32_MASK = 0xFFFFFFFF

_SOURCE_OPCODES = (
    Opcode.CONST,
    Opcode.TID_X,
    Opcode.TID_Y,
    Opcode.TID_Z,
    Opcode.TID_LINEAR,
)


def _coerce_vec(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Vector form of :func:`repro.graph.semantics.coerce`."""
    if dtype is DType.F32:
        return values.astype(np.float64, copy=False)
    if dtype is DType.BOOL:
        return values.astype(np.bool_, copy=False)
    if values.dtype.kind == "f":
        # int(value) truncates toward zero, as does astype from float.
        return np.trunc(values).astype(np.int64)
    return values.astype(np.int64, copy=False)


def _as_u32(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64, copy=False) & _U32_MASK


def _eval_pure_vec(node: Node, operands: list[np.ndarray]) -> np.ndarray:
    """Vectorised twin of :func:`repro.graph.semantics.evaluate_pure`.

    Every branch mirrors the scalar semantics bit for bit (including the
    Python-style NaN/zero corner cases), so both engines produce the same
    IEEE doubles.
    """
    op = node.opcode
    dt = node.dtype
    a = operands[0] if operands else None
    b = operands[1] if len(operands) > 1 else None
    c = operands[2] if len(operands) > 2 else None

    if op is Opcode.ADD:
        return _coerce_vec(a + b, dt)
    if op is Opcode.SUB:
        return _coerce_vec(a - b, dt)
    if op is Opcode.MUL:
        return _coerce_vec(a * b, dt)
    if op is Opcode.DIV:
        if dt.is_float:
            af = a.astype(np.float64, copy=False)
            bf = b.astype(np.float64, copy=False)
            with np.errstate(divide="ignore", invalid="ignore"):
                out = af / bf
            zero = bf == 0
            if np.any(zero):
                # Scalar semantics ignore the sign of a zero divisor.
                out = np.where(
                    zero,
                    np.where(af > 0, math.inf, np.where(af < 0, -math.inf, math.nan)),
                    out,
                )
            return out
        ai = a.astype(np.int64, copy=False)
        bi = b.astype(np.int64, copy=False)
        if np.any(bi == 0):
            raise SimulationError("integer division by zero in kernel graph")
        q = np.abs(ai) // np.abs(bi)
        return np.where((ai >= 0) == (bi >= 0), q, -q)
    if op is Opcode.MOD:
        if dt.is_float:
            return np.fmod(a.astype(np.float64, copy=False), b.astype(np.float64, copy=False))
        ai = a.astype(np.int64, copy=False)
        bi = b.astype(np.int64, copy=False)
        if np.any(bi == 0):
            raise SimulationError("integer modulo by zero in kernel graph")
        q = np.abs(ai) // np.abs(bi)
        q = np.where((ai >= 0) == (bi >= 0), q, -q)
        return ai - q * bi
    if op is Opcode.MIN:
        # Python's min(a, b) returns b only when b < a (NaN-order included).
        return _coerce_vec(np.where(b < a, b, a), dt)
    if op is Opcode.MAX:
        return _coerce_vec(np.where(b > a, b, a), dt)
    if op is Opcode.ABS:
        return _coerce_vec(np.abs(a), dt)
    if op is Opcode.NEG:
        return _coerce_vec(-a, dt)
    if op is Opcode.FMA:
        return _coerce_vec(a * b + c, dt)

    if op is Opcode.SQRT:
        af = a.astype(np.float64, copy=False)
        with np.errstate(invalid="ignore"):
            return np.where(af >= 0, np.sqrt(np.abs(af)), math.nan)
    if op is Opcode.RSQRT:
        af = a.astype(np.float64, copy=False)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(af > 0, 1.0 / np.sqrt(np.abs(af)), math.inf)
    if op is Opcode.EXP:
        # math.exp/math.log are kept for bitwise parity with the scalar
        # interpreter; SPECIAL ops are rare enough that the loop is cheap.
        return np.array([math.exp(float(v)) for v in a], dtype=np.float64)
    if op is Opcode.LOG:
        return np.array(
            [math.log(float(v)) if v > 0 else -math.inf for v in a], dtype=np.float64
        )
    if op is Opcode.RCP:
        af = a.astype(np.float64, copy=False)
        with np.errstate(divide="ignore"):
            return np.where(af != 0, 1.0 / af, math.inf)

    if op is Opcode.AND:
        return _coerce_vec(_as_u32(a) & _as_u32(b), dt)
    if op is Opcode.OR:
        return _coerce_vec(_as_u32(a) | _as_u32(b), dt)
    if op is Opcode.XOR:
        return _coerce_vec(_as_u32(a) ^ _as_u32(b), dt)
    if op is Opcode.NOT:
        return _coerce_vec((~_as_u32(a)) & _U32_MASK, dt)
    if op is Opcode.SHL:
        shift = b.astype(np.int64, copy=False) & 31
        return _coerce_vec((_as_u32(a) << shift) & _U32_MASK, dt)
    if op is Opcode.SHR:
        shift = b.astype(np.int64, copy=False) & 31
        return _coerce_vec(_as_u32(a) >> shift, dt)

    if op is Opcode.LT:
        return a < b
    if op is Opcode.LE:
        return a <= b
    if op is Opcode.GT:
        return a > b
    if op is Opcode.GE:
        return a >= b
    if op is Opcode.EQ:
        return a == b
    if op is Opcode.NE:
        return a != b
    if op is Opcode.LAND:
        return a.astype(np.bool_) & b.astype(np.bool_)
    if op is Opcode.LOR:
        return a.astype(np.bool_) | b.astype(np.bool_)
    if op is Opcode.LNOT:
        return ~a.astype(np.bool_)

    if op is Opcode.SELECT:
        return _coerce_vec(np.where(a.astype(np.bool_), b, c), dt)
    if op is Opcode.SPLIT:
        return a
    if op is Opcode.JOIN:
        return a

    raise SimulationError(f"batched engine cannot evaluate {op.value}")


class BatchedSimulator:
    """Wave-batched vectorised model of one (d)MT-CGRA core.

    Only graphs without inter-thread dependences are supported; use
    :func:`repro.sim.cycle.run_cycle_accurate` with ``engine="auto"`` to
    fall back to the event engine automatically.
    """

    def __init__(
        self,
        compiled: CompiledKernel,
        launch: KernelLaunch,
        hierarchy: MemoryHierarchy | None = None,
        max_cycles: int = 20_000_000,
        wave_group: int = 1 << 14,
        thread_ids: Sequence[int] | None = None,
        memory: MemoryImage | None = None,
        dram_contention: int = 1,
    ) -> None:
        if compiled.graph.metadata.get("num_threads") != launch.graph.metadata.get(
            "num_threads"
        ):
            raise SimulationError("compiled kernel and launch disagree on thread count")
        if compiled.graph.has_interthread():
            raise SimulationError(
                "the batched engine requires an inter-thread-free graph "
                "(no ELEVATOR/ELDST/BARRIER nodes); use engine='event'"
            )
        if wave_group < 1:
            raise SimulationError("wave_group must be positive")
        self.compiled = compiled
        self.config: SystemConfig = compiled.config
        self.graph: DataflowGraph = compiled.graph
        self.launch = launch
        self.geometry: ThreadGeometry = ThreadGeometry(compiled.block_dim)
        self.num_threads = self.geometry.num_threads
        self.max_cycles = max_cycles
        self.wave_group = int(wave_group)

        if thread_ids is None:
            self._thread_ids = np.arange(self.num_threads, dtype=np.int64)
        else:
            self._thread_ids = np.asarray(list(thread_ids), dtype=np.int64)
            if self._thread_ids.size and (
                self._thread_ids.min() < 0 or self._thread_ids.max() >= self.num_threads
            ):
                raise SimulationError("thread_ids outside the launch geometry")

        self.memory = memory if memory is not None else launch.build_memory_image()
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        self.stats = ExecutionStats(threads=int(self._thread_ids.size))
        self.outputs: dict[str, list[Any]] = {}

        self._ports = max(1, compiled.replicas)
        self._order = self.graph.topological_order(ignore_temporal=False)
        self._inputs: dict[int, list[tuple[int, int]]] = {
            node.node_id: sorted(self.graph.inputs_of(node.node_id).items())
            for node in self._order
        }
        self._successors: dict[int, list[tuple[int, int]]] = {
            node.node_id: self.graph.successors(node.node_id) for node in self._order
        }
        self._edge_latency, self._edge_hops = edge_timing(compiled)
        self._sink_nodes = [
            n.node_id
            for n in self._order
            if n.opcode in (Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT)
        ]
        # Issue-queue tail per node: the last issue cycle of each port
        # stream, carried across wave groups.
        self._port_tail: dict[int, np.ndarray] = {
            node.node_id: np.full(self._ports, -np.inf) for node in self._order
        }
        # Cache lines touched so far (compulsory-miss memory model).
        self._touched_lines: set[int] = set()
        mem = self.config.memory
        self._line_bytes = mem.l1.line_bytes
        self._hit_latency = mem.l1.hit_latency
        # A line miss pays the full L1+L2+DRAM latency; when ``dram_contention``
        # cores share the DRAM device, each miss additionally expects to queue
        # behind one bank burst per contending core (the analytic twin of the
        # shared bank state the event engine models exactly).
        if dram_contention < 1:
            raise SimulationError("dram_contention must be >= 1")
        self._dram_queue_latency = (int(dram_contention) - 1) * mem.dram.bank_busy_cycles
        self._miss_latency = (
            mem.l1.hit_latency
            + mem.l2.hit_latency
            + mem.dram.access_latency
            + self._dram_queue_latency
        )
        self._completion = 0.0

    # ------------------------------------------------------------------- run
    def run(self) -> CycleResult:
        if not self._sink_nodes:
            raise SimulationError("kernel has no store or output nodes; nothing to run")
        for node in self._order:
            if node.opcode is Opcode.OUTPUT:
                self.outputs.setdefault(str(node.param("name")), [None] * self.num_threads)

        for start in range(0, self._thread_ids.size, self.wave_group):
            tids = self._thread_ids[start : start + self.wave_group]
            self._run_wave(tids, start)

        cycles = int(self._completion)
        if cycles > self.max_cycles:
            raise DeadlockError(
                f"simulation of '{self.graph.name}' exceeded {self.max_cycles} cycles"
            )
        self._accumulate_counters()
        self.stats.cycles = cycles
        self.stats.extra["engine"] = "batched"
        self.stats.extra.setdefault("cores", 1)
        return CycleResult(
            cycles=cycles,
            stats=self.stats,
            memory=self.memory,
            outputs=self.outputs,
            hierarchy=self.hierarchy,
        )

    # ------------------------------------------------------------ wave driver
    def _run_wave(self, tids: np.ndarray, offset: int) -> None:
        """Evaluate every node once over the wave's thread-ID vector."""
        n = tids.size
        if n == 0:
            return
        replicas = self._ports
        inject = ((offset + np.arange(n, dtype=np.int64)) // replicas).astype(np.float64)

        values: dict[int, np.ndarray] = {}
        avail: dict[int, np.ndarray] = {}
        uses = {nid: len(succ) for nid, succ in self._successors.items()}

        for node in self._order:
            nid = node.node_id
            if node.opcode in _SOURCE_OPCODES:
                values[nid] = self._source_value(node, tids, n)
                avail[nid] = inject
            else:
                inputs = self._inputs[nid]
                operands = [values[src] for _, src in inputs]
                ready = inject
                for _, src in inputs:
                    ready = np.maximum(ready, avail[src] + self._edge_latency[(src, nid)])
                issue = self._issue(nid, ready)
                values[nid], avail[nid] = self._execute(node, tids, operands, issue)
                for _, src in inputs:
                    uses[src] -= 1
                    if uses[src] == 0:
                        del values[src]
            if uses[nid] == 0:
                values.pop(nid, None)

    def _source_value(self, node: Node, tids: np.ndarray, n: int) -> np.ndarray:
        op = node.opcode
        if op is Opcode.CONST:
            scalar = coerce(node.param("value"), node.dtype)
            return np.full(n, scalar, dtype=_NP_DTYPE[node.dtype])
        dx, dy, _ = (self.geometry.block_dim + (1, 1, 1))[:3]
        if op is Opcode.TID_X:
            return tids % dx
        if op is Opcode.TID_Y:
            return (tids // dx) % dy
        if op is Opcode.TID_Z:
            return tids // (dx * dy)
        return tids.copy()  # TID_LINEAR

    # ----------------------------------------------------------- issue ports
    def _issue(self, nid: int, ready: np.ndarray) -> np.ndarray:
        """Deterministic multi-server queue over the node's issue ports.

        Firings are serviced in ready order, assigned round-robin to the
        ``replicas`` ports; each port retires one operation per cycle.
        ``t_k = max(r_k, t_{k-ports} + 1)`` has the closed form
        ``t_i = i + cummax(r_i - i)`` along each port stream.
        """
        ports = self._ports
        order = np.argsort(ready, kind="stable")
        r = ready[order]
        issue_sorted = np.empty_like(r)
        tail = self._port_tail[nid]
        for p in range(ports):
            seq = r[p::ports]
            if seq.size == 0:
                continue
            idx = np.arange(seq.size, dtype=np.float64)
            t = idx + np.maximum.accumulate(seq - idx)
            t = np.maximum(t, tail[p] + 1.0 + idx)
            issue_sorted[p::ports] = t
            tail[p] = t[-1]
        issue = np.empty_like(r)
        issue[order] = issue_sorted
        return issue

    # -------------------------------------------------------------- execution
    def _execute(
        self, node: Node, tids: np.ndarray, operands: list[np.ndarray], issue: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        op = node.opcode
        latency = unit_latency(self.config, node)
        if op in PURE_OPCODES:
            return _eval_pure_vec(node, operands), issue + latency
        if op is Opcode.LOAD:
            value, complete = self._access_global(node, operands[0], issue, store_value=None)
            return value, complete
        if op is Opcode.STORE:
            value, complete = self._access_global(
                node, operands[0], issue, store_value=operands[1]
            )
            self._completion = max(self._completion, float(complete.max()))
            return value, complete
        if op is Opcode.SCRATCH_LOAD:
            value, complete = self._access_scratch(node, operands[0], issue, store_value=None)
            return value, complete
        if op is Opcode.SCRATCH_STORE:
            value, complete = self._access_scratch(
                node, operands[0], issue, store_value=operands[1]
            )
            self._completion = max(self._completion, float(complete.max()))
            return value, complete
        if op is Opcode.OUTPUT:
            name = str(node.param("name"))
            slot = self.outputs[name]
            for tid, value in zip(tids.tolist(), operands[0].tolist()):
                slot[tid] = value
            complete = issue + 1.0
            self._completion = max(self._completion, float(complete.max()))
            return operands[0], complete
        raise SimulationError(f"batched engine cannot execute {op.value}")

    def _checked_indices(self, node: Node, index: np.ndarray, length: int) -> np.ndarray:
        idx = _coerce_vec(index, DType.I32)
        bad = (idx < 0) | (idx >= length)
        if np.any(bad):
            offender = int(idx[np.argmax(bad)])
            raise MemoryModelError(
                f"{'store' if node.opcode in (Opcode.STORE, Opcode.SCRATCH_STORE) else 'load'} "
                f"out of bounds: {node.param('array')}[{offender}] (length {length})"
            )
        return idx

    def _access_global(
        self,
        node: Node,
        index: np.ndarray,
        issue: np.ndarray,
        store_value: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        name = str(node.param("array"))
        spec = self.memory.spec(name)
        backing = self.memory.array(name)
        idx = self._checked_indices(node, index, spec.length)
        addresses = spec.base_address + idx * spec.elem_bytes
        complete = issue + self._line_model_latency(addresses, is_store=store_value is not None)
        if store_value is None:
            return _coerce_vec(backing[idx], node.dtype), complete
        backing[idx] = store_value
        return store_value, complete

    def _access_scratch(
        self,
        node: Node,
        index: np.ndarray,
        issue: np.ndarray,
        store_value: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        name = str(node.param("array"))
        spec = self.memory.spec(name)
        backing = self.memory.array(name)
        idx = self._checked_indices(node, index, spec.length)
        complete = issue + float(self.config.memory.scratchpad.access_latency)
        scratch = self.hierarchy.scratchpad.stats
        if store_value is None:
            scratch.reads += idx.size
            return _coerce_vec(backing[idx], node.dtype), complete
        scratch.writes += idx.size
        backing[idx] = store_value
        return store_value, complete

    def _line_model_latency(self, addresses: np.ndarray, is_store: bool) -> np.ndarray:
        """Compulsory-miss line model: first touch of a line pays the full
        L1+L2+DRAM latency, every later access the L1 hit latency.

        The classification is mirrored into the hierarchy's own counters
        (L1 hit/miss, one L2 miss and one DRAM transfer per new line) so
        the energy pipeline sees a consistent estimate; the event engine
        remains the exact reference for memory-system behaviour.
        """
        lines = addresses // self._line_bytes
        uniq, first_index = np.unique(lines, return_index=True)
        miss = np.zeros(addresses.size, dtype=bool)
        touched = self._touched_lines
        for line, pos in zip(uniq.tolist(), first_index.tolist()):
            if line not in touched:
                miss[pos] = True
                touched.add(line)
        misses = int(miss.sum())
        hits = addresses.size - misses
        l1, l2, dram = self.hierarchy.l1.stats, self.hierarchy.l2.stats, self.hierarchy.dram.stats
        if is_store:
            l1.write_hits += hits
            l1.write_misses += misses
            l2.write_misses += misses
            dram.writes += misses
        else:
            l1.read_hits += hits
            l1.read_misses += misses
            l2.read_misses += misses
            dram.reads += misses
        dram.queue_cycles += misses * self._dram_queue_latency
        if misses:
            self.stats.bump("batched_line_misses", misses)
        self.stats.bump("batched_line_hits", hits)
        return np.where(miss, float(self._miss_latency), float(self._hit_latency))

    # ------------------------------------------------------------- counters
    def _accumulate_counters(self) -> None:
        """Token, NoC and functional-unit counters.

        Every node fires exactly once per thread (there are no boundary
        cases without inter-thread nodes), so each counter is a per-graph
        constant times the thread count — by construction equal to what
        the event engine accumulates one token at a time.
        """
        n = int(self._thread_ids.size)
        stats = self.stats
        for node in self._order:
            nid = node.node_id
            succ = self._successors[nid]
            stats.tokens_sent += len(succ) * n
            for dst, _ in succ:
                stats.noc_hops += self._edge_hops[(nid, dst)] * n
            if node.opcode in _SOURCE_OPCODES:
                continue
            stats.token_buffer_inserts += len(self._inputs[nid]) * n
            stats.token_buffer_matches += n
            cls = node.unit_class
            if cls is UnitClass.ALU:
                stats.alu_ops += n
            elif cls is UnitClass.FPU:
                stats.fpu_ops += n
            elif cls is UnitClass.SPECIAL:
                stats.special_ops += n
            elif cls is UnitClass.CONTROL:
                stats.control_ops += n
            elif cls is UnitClass.SPLIT_JOIN:
                stats.split_join_ops += n
            if node.opcode is Opcode.LOAD:
                stats.global_loads += n
            elif node.opcode is Opcode.STORE:
                stats.global_stores += n
            elif node.opcode is Opcode.SCRATCH_LOAD:
                stats.scratch_loads += n
            elif node.opcode is Opcode.SCRATCH_STORE:
                stats.scratch_stores += n


def run_batched(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    hierarchy: MemoryHierarchy | None = None,
    max_cycles: int = 20_000_000,
) -> CycleResult:
    """Convenience wrapper mirroring :func:`run_cycle_accurate`."""
    return BatchedSimulator(compiled, launch, hierarchy=hierarchy, max_cycles=max_cycles).run()
