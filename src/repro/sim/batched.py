"""Wave-batched NumPy execution engine for inter-thread-free kernels.

The event-driven :class:`~repro.sim.cycle.CycleSimulator` schedules one
heap event per token per edge, which is exact but costs minutes per
configuration on the Figure 11/12 problem sizes.  The dMT-CGRA execution
model is thread-parallel — the same static graph is traversed by
thousands of tagged threads — so for graphs *without* inter-thread
dependences (no ELEVATOR/ELDST/BARRIER nodes, see
:meth:`DataflowGraph.has_interthread`) every thread's walk through the
graph is independent and each static node can be evaluated once per
injection wave over a NumPy vector of thread IDs, the way the ESL-CGRA
simulator steps whole-array state per cycle instead of per token.

Per-thread completion times are computed analytically:

* a thread injected as the ``p``-th thread of this core becomes live at
  cycle ``p // replicas`` (the streamer injects ``replicas`` threads per
  cycle);
* a node's operands are ready at the maximum over its input edges of the
  producer's completion time plus the routed edge latency (injection
  latency + one cycle per mapped NoC hop, exactly the event engine's
  edge model);
* issue-port contention is resolved with a deterministic multi-server
  queue: the node's ``replicas`` issue ports each retire one operation
  per cycle, and firings are serviced in ready order.  The recurrence
  ``t_k = max(r_k, t_{k-ports} + 1)`` is evaluated in closed form with a
  running maximum, so the whole queue is vectorised.

Memory model (:mod:`repro.sim.analytic_cache`)
----------------------------------------------
Global accesses run through a full set-associative LRU tag model of both
cache levels — compulsory, capacity *and* conflict misses, dirty
writebacks, MSHR merges and DRAM bank queueing — built on the same
:mod:`repro.memory.tagcore` tag/set/victim core the event engine's
caches use.  Because LRU classification depends on the order in which
the line-address stream reaches the cache, each wave's loads are
replayed in the *event engine's* processing order: the order a token
arrival fires a load is a thread-independent property of the graph (the
arrival-cycle chain through its pure index computation, tie-broken by
the heap's push sequence), so the engine precomputes one order key per
load node and sorts the whole wave's load stream with ``np.lexsort``
before running it through the tag model.  Stores are replayed after the
loads of their wave, in issue order — exact whenever the store phase
drains after the load phase (it does on the streaming workloads at the
fidelity-gate sizes) and a close approximation when the phases overlap.
Store misses follow write-allocate read-for-ownership: an L1
``write_miss`` whose fill *reads* L2, exactly the counter mapping the
event engine's hierarchy records.  Graphs whose load indices depend on
other loads fall back to per-node replay order (classification stays
capacity/conflict-aware; only the cross-engine ordering guarantee is
lost).

The tag walk itself is vectorised (``sim/analytic_cache.py``): per-set
LRU classification via :class:`~repro.memory.tagcore.LruTagArray`,
closed-form per-bank queue timing and a per-line previous-fill gather
for MSHR-merge timing, with only the L2-bound residue (misses,
writebacks, write-throughs) walked sequentially — counter- and
cycle-identical to the one-access-at-a-time reference walk kept behind
``AnalyticMemoryModel(vectorised=False)``.

The classification is mirrored into the hierarchy's counters, so the
energy pipeline and ``CycleResult.counters()`` see the analytic model
exactly where the event engine's exact counters would appear.  Residual
approximations (cache bank serialisation, MSHR entry limits, replay
order under overlapped load/store phases) affect timing only and are
measured by ``benchmarks/bench_batched_fidelity.py``: L1/L2 miss counts
are exactly equal to the event engine's on the streaming workloads even
under a thrashing 2-way 1 KiB L1, and cycle error stays within the
fidelity gate's 10% bar on the capacity/associativity sweeps.

Outputs and memory contents are bit-identical to the event engine and
all operation counters (``alu_ops``, ``fpu_ops``, ``global_loads``,
``global_stores``, token/NoC counters, ...) are equal by construction;
the cycle count and memory-hierarchy counters are analytic — exact on
order-stable traces, estimates otherwise.
"""

from __future__ import annotations

import math
from typing import Any, NamedTuple, Sequence

import numpy as np

# SOURCE_OPCODES is shared with the analyzer's replay-order pass so the
# static RA042/RA043 verdict and the engine's prepass decision agree.
from repro.analyze.passes import SOURCE_OPCODES as _SOURCE_OPCODES
from repro.compiler.pipeline import CompiledKernel
from repro.config.system import SystemConfig
from repro.errors import DeadlockError, MemoryModelError, SimulationError
from repro.graph.dfg import DataflowGraph
from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode, UnitClass
from repro.graph.semantics import PURE_OPCODES, coerce
from repro.kernel.geometry import ThreadGeometry
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.obs.trace import MEM_LANE, active_tracer
from repro.sim.analytic_cache import AnalyticMemoryModel
from repro.sim.cycle import CycleResult, edge_timing, unit_latency
from repro.sim.launch import KernelLaunch
from repro.sim.stats import ExecutionStats

__all__ = ["BatchedSimulator", "run_batched"]

_NP_DTYPE = {DType.F32: np.float64, DType.I32: np.int64, DType.BOOL: np.bool_}
_U32_MASK = 0xFFFFFFFF



class _StaticTables(NamedTuple):
    """Launch-independent analysis of one compiled kernel, cached on it."""

    order: list
    inputs: dict
    successors: dict
    edge_latency: dict
    edge_hops: dict
    sink_nodes: list
    order_pos: dict
    load_nodes: list
    prepass_nodes: "set[int] | None"
    ordered_loads: bool
    load_keys: dict


def _coerce_vec(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Vector form of :func:`repro.graph.semantics.coerce`."""
    if dtype is DType.F32:
        return values.astype(np.float64, copy=False)
    if dtype is DType.BOOL:
        return values.astype(np.bool_, copy=False)
    if values.dtype.kind == "f":
        # int(value) truncates toward zero, as does astype from float.
        return np.trunc(values).astype(np.int64)
    return values.astype(np.int64, copy=False)


def _as_u32(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64, copy=False) & _U32_MASK


def _eval_pure_vec(node: Node, operands: list[np.ndarray]) -> np.ndarray:
    """Vectorised twin of :func:`repro.graph.semantics.evaluate_pure`.

    Every branch mirrors the scalar semantics bit for bit (including the
    Python-style NaN/zero corner cases), so both engines produce the same
    IEEE doubles.
    """
    op = node.opcode
    dt = node.dtype
    a = operands[0] if operands else None
    b = operands[1] if len(operands) > 1 else None
    c = operands[2] if len(operands) > 2 else None

    if op is Opcode.ADD:
        return _coerce_vec(a + b, dt)
    if op is Opcode.SUB:
        return _coerce_vec(a - b, dt)
    if op is Opcode.MUL:
        return _coerce_vec(a * b, dt)
    if op is Opcode.DIV:
        if dt.is_float:
            af = a.astype(np.float64, copy=False)
            bf = b.astype(np.float64, copy=False)
            with np.errstate(divide="ignore", invalid="ignore"):
                out = af / bf
            zero = bf == 0
            if np.any(zero):
                # Scalar semantics ignore the sign of a zero divisor.
                out = np.where(
                    zero,
                    np.where(af > 0, math.inf, np.where(af < 0, -math.inf, math.nan)),
                    out,
                )
            return out
        ai = a.astype(np.int64, copy=False)
        bi = b.astype(np.int64, copy=False)
        if np.any(bi == 0):
            raise SimulationError("integer division by zero in kernel graph")
        q = np.abs(ai) // np.abs(bi)
        return np.where((ai >= 0) == (bi >= 0), q, -q)
    if op is Opcode.MOD:
        if dt.is_float:
            return np.fmod(a.astype(np.float64, copy=False), b.astype(np.float64, copy=False))
        ai = a.astype(np.int64, copy=False)
        bi = b.astype(np.int64, copy=False)
        if np.any(bi == 0):
            raise SimulationError("integer modulo by zero in kernel graph")
        q = np.abs(ai) // np.abs(bi)
        q = np.where((ai >= 0) == (bi >= 0), q, -q)
        return ai - q * bi
    if op is Opcode.MIN:
        # Python's min(a, b) returns b only when b < a (NaN-order included).
        return _coerce_vec(np.where(b < a, b, a), dt)
    if op is Opcode.MAX:
        return _coerce_vec(np.where(b > a, b, a), dt)
    if op is Opcode.ABS:
        return _coerce_vec(np.abs(a), dt)
    if op is Opcode.NEG:
        return _coerce_vec(-a, dt)
    if op is Opcode.FMA:
        return _coerce_vec(a * b + c, dt)

    if op is Opcode.SQRT:
        af = a.astype(np.float64, copy=False)
        with np.errstate(invalid="ignore"):
            return np.where(af >= 0, np.sqrt(np.abs(af)), math.nan)
    if op is Opcode.RSQRT:
        af = a.astype(np.float64, copy=False)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(af > 0, 1.0 / np.sqrt(np.abs(af)), math.inf)
    if op is Opcode.EXP:
        # math.exp/math.log are kept for bitwise parity with the scalar
        # interpreter; SPECIAL ops are rare enough that the loop is cheap.
        return np.array([math.exp(float(v)) for v in a], dtype=np.float64)
    if op is Opcode.LOG:
        return np.array(
            [math.log(float(v)) if v > 0 else -math.inf for v in a], dtype=np.float64
        )
    if op is Opcode.RCP:
        af = a.astype(np.float64, copy=False)
        with np.errstate(divide="ignore"):
            return np.where(af != 0, 1.0 / af, math.inf)

    if op is Opcode.AND:
        return _coerce_vec(_as_u32(a) & _as_u32(b), dt)
    if op is Opcode.OR:
        return _coerce_vec(_as_u32(a) | _as_u32(b), dt)
    if op is Opcode.XOR:
        return _coerce_vec(_as_u32(a) ^ _as_u32(b), dt)
    if op is Opcode.NOT:
        return _coerce_vec((~_as_u32(a)) & _U32_MASK, dt)
    if op is Opcode.SHL:
        shift = b.astype(np.int64, copy=False) & 31
        return _coerce_vec((_as_u32(a) << shift) & _U32_MASK, dt)
    if op is Opcode.SHR:
        shift = b.astype(np.int64, copy=False) & 31
        return _coerce_vec(_as_u32(a) >> shift, dt)

    if op is Opcode.LT:
        return a < b
    if op is Opcode.LE:
        return a <= b
    if op is Opcode.GT:
        return a > b
    if op is Opcode.GE:
        return a >= b
    if op is Opcode.EQ:
        return a == b
    if op is Opcode.NE:
        return a != b
    if op is Opcode.LAND:
        return a.astype(np.bool_) & b.astype(np.bool_)
    if op is Opcode.LOR:
        return a.astype(np.bool_) | b.astype(np.bool_)
    if op is Opcode.LNOT:
        return ~a.astype(np.bool_)

    if op is Opcode.SELECT:
        return _coerce_vec(np.where(a.astype(np.bool_), b, c), dt)
    if op is Opcode.SPLIT:
        return a
    if op is Opcode.JOIN:
        return a

    raise SimulationError(f"batched engine cannot evaluate {op.value}")


class BatchedSimulator:
    """Wave-batched vectorised model of one (d)MT-CGRA core.

    Only graphs without inter-thread dependences are supported; use
    :func:`repro.sim.cycle.run_cycle_accurate` with ``engine="auto"`` to
    fall back to the event engine automatically.
    """

    def __init__(
        self,
        compiled: CompiledKernel,
        launch: KernelLaunch,
        hierarchy: MemoryHierarchy | None = None,
        max_cycles: int = 20_000_000,
        wave_group: int = 1 << 14,
        thread_ids: Sequence[int] | None = None,
        memory: MemoryImage | None = None,
        dram_contention: int = 1,
        analytic_vectorised: bool = True,
        trace_pid: int = 0,
    ) -> None:
        if compiled.graph.metadata.get("num_threads") != launch.graph.metadata.get(
            "num_threads"
        ):
            raise SimulationError("compiled kernel and launch disagree on thread count")
        self._reject_unsupported(compiled)
        if wave_group < 1:
            raise SimulationError("wave_group must be positive")
        self.compiled = compiled
        self.config: SystemConfig = compiled.config
        self.graph: DataflowGraph = compiled.graph
        self.launch = launch
        self.geometry: ThreadGeometry = ThreadGeometry(compiled.block_dim)
        self.num_threads = self.geometry.num_threads
        self.max_cycles = max_cycles
        self.wave_group = int(wave_group)

        if thread_ids is None:
            self._thread_ids = np.arange(self.num_threads, dtype=np.int64)
        else:
            self._thread_ids = np.asarray(list(thread_ids), dtype=np.int64)
            if self._thread_ids.size and (
                self._thread_ids.min() < 0 or self._thread_ids.max() >= self.num_threads
            ):
                raise SimulationError("thread_ids outside the launch geometry")

        self.memory = memory if memory is not None else launch.build_memory_image()
        self.hierarchy = hierarchy or MemoryHierarchy(self.config.memory)
        self.stats = ExecutionStats(threads=int(self._thread_ids.size))
        self.outputs: dict[str, list[Any]] = {}

        self._ports = max(1, compiled.replicas)
        # The graph-structural tables and event-order keys depend only on
        # the compiled kernel, so they are computed once and cached on it:
        # repeated simulations of the same kernel (benchmark loops, wave
        # after wave of explore campaigns) skip the static analysis.
        static = compiled.__dict__.get("_batched_static")
        if static is None:
            static = self._build_static(compiled)
            compiled.__dict__["_batched_static"] = static
        self._order = static.order
        self._inputs = static.inputs
        self._successors = static.successors
        self._edge_latency = static.edge_latency
        self._edge_hops = static.edge_hops
        self._sink_nodes = static.sink_nodes
        self._order_pos = static.order_pos
        self._load_nodes = static.load_nodes
        self._prepass_nodes = static.prepass_nodes
        self._ordered_loads = static.ordered_loads
        self._load_keys = static.load_keys
        # Issue-queue tail per node: the last issue cycle of each port
        # stream, carried across wave groups.
        self._port_tail: dict[int, np.ndarray] = {
            node.node_id: np.full(self._ports, -np.inf) for node in self._order
        }
        # Capacity/conflict-aware analytic cache model (L1 + L2 + DRAM),
        # mirroring its classification into the hierarchy's counters.  When
        # ``dram_contention`` cores share the DRAM device, each access
        # additionally expects to queue behind one bank burst per contending
        # core (the analytic twin of the shared bank state the event engine
        # models exactly).
        if dram_contention < 1:
            raise SimulationError("dram_contention must be >= 1")
        # ``analytic_vectorised=False`` selects the sequential reference
        # walk; both walks are counter- and cycle-identical (pinned by
        # tests/sim/test_fidelity.py), the vectorised one is just fast.
        self._analytic = AnalyticMemoryModel(
            self.config.memory,
            self.hierarchy,
            dram_contention=dram_contention,
            vectorised=analytic_vectorised,
        )
        self._l1_baseline = (
            self.hierarchy.l1.stats.misses,
            self.hierarchy.l1.stats.hits,
        )
        self._completion = 0.0
        self._trace = active_tracer()
        self._trace_pid = int(trace_pid)
        self._lane: dict[int, int] = {}
        if self._trace is not None:
            self._init_trace_lanes()

    def _init_trace_lanes(self) -> None:
        """Name this core's trace process and map nodes to their PE lanes."""
        tracer = self._trace
        assert tracer is not None
        placement = (
            self.compiled.mapping.placement.node_to_unit if self.compiled.mapping else {}
        )
        tracer.set_process_name(self._trace_pid, f"core {self._trace_pid}")
        for node in self._order:
            lane = int(placement.get(node.node_id, node.node_id))
            self._lane[node.node_id] = lane
            tracer.set_lane_name(self._trace_pid, lane, f"PE {lane}")

    def _trace_node(self, node: Node, issue: np.ndarray, complete: np.ndarray) -> None:
        """One count-weighted op event spanning the node's wave activity."""
        tracer = self._trace
        if tracer is None or issue.size == 0:
            return
        ts = float(issue.min())
        finite = complete[np.isfinite(complete)]
        end = float(finite.max()) if finite.size else ts
        tracer.event(
            node.label(),
            "op",
            ts,
            end - ts,
            pid=self._trace_pid,
            tid=self._lane[node.node_id],
            args={"count": int(issue.size), "cls": node.unit_class.name},
        )

    def _reject_unsupported(self, compiled: CompiledKernel) -> None:
        """Graph-eligibility check; the window-batched subclass relaxes it."""
        if compiled.graph.has_interthread():
            raise SimulationError(
                "the batched engine requires an inter-thread-free graph "
                "(no ELEVATOR/ELDST/BARRIER nodes); use engine='auto' "
                "to dispatch communicating kernels automatically"
            )

    def _build_static(self, compiled: CompiledKernel) -> _StaticTables:
        """Launch-independent tables, cached on the compiled kernel.

        The graph-walk helpers (``_pure_load_ancestors``,
        ``_event_order_keys``) read the structural tables through
        ``self``, so those are assigned here as they are built; the
        caller re-assigns every field from the returned record by name.
        """
        self._order = self.graph.topological_order(ignore_temporal=False)
        self._inputs = {
            node.node_id: sorted(self.graph.inputs_of(node.node_id).items())
            for node in self._order
        }
        self._successors = {
            node.node_id: self.graph.successors(node.node_id) for node in self._order
        }
        self._edge_latency, self._edge_hops = edge_timing(compiled)
        self._order_pos = {node.node_id: i for i, node in enumerate(self._order)}
        # Memory issue points whose accesses the event-order prepass can
        # classify: plain LOADs plus (window-batched engine) the loading
        # threads of eLDST nodes.
        self._load_nodes = [
            n for n in self._order if n.opcode in (Opcode.LOAD, Opcode.ELDST)
        ]
        prepass_nodes = self._pure_load_ancestors()
        ordered_loads = prepass_nodes is not None
        return _StaticTables(
            order=self._order,
            inputs=self._inputs,
            successors=self._successors,
            edge_latency=self._edge_latency,
            edge_hops=self._edge_hops,
            sink_nodes=[
                n.node_id
                for n in self._order
                if n.opcode in (Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT)
            ],
            order_pos=self._order_pos,
            load_nodes=self._load_nodes,
            prepass_nodes=prepass_nodes,
            ordered_loads=ordered_loads,
            load_keys=self._event_order_keys() if ordered_loads else {},
        )

    # ------------------------------------------------------- event-order keys
    def _pure_load_ancestors(self) -> "set[int] | None":
        """Nodes to pre-evaluate so every load's issue cycle is known early.

        Delegates to the static analyzer's replay-order pass
        (:func:`repro.analyze.passes.pure_load_ancestors`) so the
        ``RA042``/``RA043`` verdict and the engine's dynamic decision
        agree by construction: the union of every LOAD node and its
        transitive ancestors when those ancestors are all pure/source
        nodes, or ``None`` when some load index depends on another memory
        access — the engine then falls back to per-node replay order.
        """
        from repro.analyze.passes import pure_load_ancestors

        return pure_load_ancestors(self.graph)

    def _event_order_keys(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per-load-node key vectors reproducing the event engine's order.

        The event engine classifies a load at the heap-processing moment
        of its index token's arrival.  For a pure index chain that moment
        is ``d + inject(t)`` with a thread-independent ``d``, and
        same-cycle arrivals process in push-sequence order — recursively,
        the chain of the deciding producer's own fire moments, tie-broken
        by its push index within that fire, bottoming out at the
        injection event (which pops *after* same-cycle token events).

        Each node therefore gets a component vector: fire moments encoded
        as ``2*cycle + kind`` (token fire = 0, injection = 1) that shift
        by ``2*inject(t)`` per thread, interleaved with shift-free
        push-index components.  Sorting all of a wave's load accesses by
        these vectors (then node position, then thread position)
        reproduces the event engine's access order exactly.
        """
        arrival: dict[int, float] = {}
        chains: dict[int, list[tuple[float, bool]]] = {}
        keys: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for node in self._order:
            nid = node.node_id
            if node.opcode in _SOURCE_OPCODES:
                arrival[nid] = 0.0
                chains[nid] = [(1.0, True), (float(self._order_pos[nid]), False)]
                continue
            inputs = self._inputs[nid]
            if not inputs or any(src not in chains for _, src in inputs):
                continue  # downstream of a memory access: thread-varying
            best: "tuple[float, list[tuple[float, bool]], int] | None" = None
            arr = 0.0
            for port, src in inputs:
                src_node = self.graph.node(src)
                moment = (
                    arrival[src]
                    + unit_latency(self.config, src_node)
                    + self._edge_latency[(src, nid)]
                )
                arr = max(arr, moment)
                push_index = next(
                    i
                    for i, (dst, dst_port) in enumerate(self._successors[src])
                    if dst == nid and dst_port == port
                )
                candidate = (moment, chains[src], push_index)
                if best is None or candidate > best:
                    best = candidate
            chain = [(2.0 * arr, True)] + best[1] + [(float(best[2]), False)]
            if node.opcode in (Opcode.LOAD, Opcode.ELDST):
                components = np.array([value for value, _ in chain])
                moments = np.array([is_moment for _, is_moment in chain])
                keys[nid] = (components, moments)
            elif node.opcode in PURE_OPCODES:
                arrival[nid] = arr
                chains[nid] = chain
        return keys

    # ------------------------------------------------------------------- run
    def run(self) -> CycleResult:
        if not self._sink_nodes:
            raise SimulationError("kernel has no store or output nodes; nothing to run")
        for node in self._order:
            if node.opcode is Opcode.OUTPUT:
                self.outputs.setdefault(str(node.param("name")), [None] * self.num_threads)

        for start in range(0, self._thread_ids.size, self.wave_group):
            tids = self._thread_ids[start : start + self.wave_group]
            if self._trace is None:
                self._run_wave(tids, start)
            else:
                begin = self._trace.clock()
                self._run_wave(tids, start)
                self._trace.wall_event(
                    f"wave@{start}", begin, args={"threads": int(tids.size)}
                )

        cycles = int(self._completion)
        if cycles > self.max_cycles:
            raise DeadlockError(
                f"simulation of '{self.graph.name}' exceeded {self.max_cycles} cycles"
            )
        self._accumulate_counters()
        self.stats.cycles = cycles
        l1 = self.hierarchy.l1.stats
        misses = l1.misses - self._l1_baseline[0]
        hits = l1.hits - self._l1_baseline[1]
        if misses:
            self.stats.bump("batched_line_misses", misses)
        self.stats.bump("batched_line_hits", hits)
        self.stats.extra["engine"] = "batched"
        self.stats.extra.setdefault("cores", 1)
        return CycleResult(
            cycles=cycles,
            stats=self.stats,
            memory=self.memory,
            outputs=self.outputs,
            hierarchy=self.hierarchy,
        )

    # ------------------------------------------------------------ wave driver
    def _run_wave(self, tids: np.ndarray, offset: int) -> None:
        """Evaluate every node once over the wave's thread-ID vector."""
        n = tids.size
        if n == 0:
            return
        replicas = self._ports
        inject = ((offset + np.arange(n, dtype=np.int64)) // replicas).astype(np.float64)
        # Kept for node executors that need injection cycles directly
        # (the window-batched engine's elevator fallback constants).
        self._wave_inject = inject

        values: dict[int, np.ndarray] = {}
        avail: dict[int, np.ndarray] = {}
        uses = {nid: len(succ) for nid, succ in self._successors.items()}
        evaluated: set[int] = set()
        load_results: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        if self._ordered_loads and self._load_nodes:
            self._classify_wave_loads(tids, inject, values, avail, evaluated, load_results)

        for node in self._order:
            nid = node.node_id
            if node.opcode in _SOURCE_OPCODES:
                if nid not in evaluated:
                    values[nid] = self._source_value(node, tids, n)
                    avail[nid] = inject
            else:
                inputs = self._inputs[nid]
                if nid in load_results:
                    # Classified in the pre-pass; read the data here, at the
                    # access's topological position (stores earlier in the
                    # graph must land in the backing array first).
                    values[nid], avail[nid] = self._finish_prepassed(
                        node, load_results[nid]
                    )
                    if self._trace is not None:
                        self._trace_node(node, load_results[nid][0], avail[nid])
                elif nid not in evaluated:
                    operands = [values[src] for _, src in inputs]
                    ready = inject
                    for _, src in inputs:
                        ready = np.maximum(ready, avail[src] + self._edge_latency[(src, nid)])
                    issue = self._issue(nid, ready)
                    values[nid], avail[nid] = self._execute(node, tids, operands, issue)
                    if self._trace is not None:
                        self._trace_node(node, issue, avail[nid])
                for _, src in inputs:
                    uses[src] -= 1
                    if uses[src] == 0:
                        del values[src]
            if uses[nid] == 0:
                values.pop(nid, None)

    def _classify_wave_loads(
        self,
        tids: np.ndarray,
        inject: np.ndarray,
        values: dict[int, np.ndarray],
        avail: dict[int, np.ndarray],
        evaluated: set[int],
        load_results: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Pre-pass: classify the wave's whole load stream in event order.

        Evaluates the pure index sub-DAG (each node exactly once — the
        main sweep reuses these values and never re-applies the issue
        queues), gathers every load's issue cycles and line addresses,
        sorts the combined stream with the precomputed event-order keys
        and replays it through the analytic cache model.  Load *data* is
        deliberately not read here; the main sweep reads it at the load's
        topological position.
        """
        n = tids.size
        tracer = self._trace
        prepass_begin = tracer.clock() if tracer is not None else 0.0
        pending: list[tuple] = []
        for node in self._order:
            nid = node.node_id
            if nid not in self._prepass_nodes:
                continue
            if node.opcode in _SOURCE_OPCODES:
                values[nid] = self._source_value(node, tids, n)
                avail[nid] = inject
                evaluated.add(nid)
                continue
            inputs = self._inputs[nid]
            operands = [values[src] for _, src in inputs]
            ready = inject
            for _, src in inputs:
                ready = np.maximum(ready, avail[src] + self._edge_latency[(src, nid)])
            issue = self._issue(nid, ready)
            entry = self._prepass_access(node, operands, issue)
            if entry is not None:
                pending.append(entry)
            else:
                values[nid], avail[nid] = self._execute(node, tids, operands, issue)
                if tracer is not None:
                    self._trace_node(node, issue, avail[nid])
            evaluated.add(nid)

        if tracer is not None:
            tracer.wall_event("prepass", prepass_begin, args={"loads": len(pending)})
        if not pending:
            return
        # The order key of an access is fully determined by its (load
        # node, inject cycle) pair — the moment components shift by
        # ``2 * inject`` and everything else is per-node constant — and
        # a wave has only ``len(pending) * n_injects`` distinct pairs
        # against ``len(pending) * n`` accesses (``replicas`` threads
        # share each inject cycle).  So rank the distinct pairs with a
        # small lexsort over their component matrix and sort the whole
        # wave by one composite integer: pair rank, tie-broken by thread
        # position exactly like the previous full-width per-access sort.
        # ``valid`` masks (eLDST: only the loading threads touch memory)
        # drop masked rows from the replayed stream without perturbing
        # the surviving rows' relative order.
        depth = max(self._load_keys[node.node_id][0].size for node, *_ in pending)
        total = n * len(pending)
        inject_ids = (inject - inject[0]).astype(np.int64)
        n_injects = int(inject_ids[-1]) + 1
        shifts = 2.0 * (inject[0] + np.arange(n_injects, dtype=np.float64))
        pairs = len(pending) * n_injects
        pair_columns = np.full((depth, pairs), -1.0)
        pair_node = np.empty(pairs)
        issue_all = np.empty(total)
        address_all = np.empty(total, dtype=np.int64)
        valid_all = np.ones(total, dtype=np.bool_)
        for block, (node, issue, _, addresses, valid) in enumerate(pending):
            nid = node.node_id
            rows = slice(block * n_injects, (block + 1) * n_injects)
            components, moments = self._load_keys[nid]
            for j in range(components.size):
                if moments[j]:
                    pair_columns[j, rows] = components[j] + shifts
                else:
                    pair_columns[j, rows] = components[j]
            pair_node[rows] = float(self._order_pos[nid])
            issue_all[block * n : (block + 1) * n] = issue
            address_all[block * n : (block + 1) * n] = addresses
            if valid is not None:
                valid_all[block * n : (block + 1) * n] = valid
        pair_order = np.lexsort(tuple([pair_node] + list(pair_columns[::-1])))
        pair_rank = np.empty(pairs, dtype=np.int64)
        pair_rank[pair_order] = np.arange(pairs)
        block_base = np.repeat(
            np.arange(len(pending), dtype=np.int64) * n_injects, n
        )
        composite = pair_rank[block_base + np.tile(inject_ids, len(pending))] * n
        composite += np.tile(np.arange(n, dtype=np.int64), len(pending))
        if bool(valid_all.all()):
            order = np.argsort(composite)
        else:
            sel = np.flatnonzero(valid_all)
            order = sel[np.argsort(composite[sel])]
        completions = np.full(total, np.nan)
        walk_begin = tracer.clock() if tracer is not None else 0.0
        completions[order] = self._analytic.access_batch(
            address_all[order], issue_all[order], is_store=False
        )
        if tracer is not None:
            tracer.wall_event("tag walk", walk_begin, args={"accesses": int(order.size)})
            if order.size:
                ts = float(issue_all[order].min())
                done = completions[order]
                end = float(done[np.isfinite(done)].max()) if done.size else ts
                tracer.event(
                    "wave loads", "mem", ts, end - ts,
                    pid=self._trace_pid, tid=MEM_LANE,
                    args={"count": int(order.size)},
                )
        for block, (node, issue, idx, _, valid) in enumerate(pending):
            load_results[node.node_id] = (
                issue,
                idx,
                completions[block * n : (block + 1) * n],
                valid,
            )

    def _prepass_access(
        self, node: Node, operands: list[np.ndarray], issue: np.ndarray
    ):
        """One prepass entry ``(node, issue, idx, addresses, valid)`` for a
        memory issue point, or ``None`` to evaluate the node inline.
        ``valid`` masks the threads that really touch memory (``None`` =
        all; the window-batched engine masks eLDST to its loading
        threads)."""
        if node.opcode is not Opcode.LOAD:
            return None
        spec = self.memory.spec(str(node.param("array")))
        idx = self._checked_indices(node, operands[0], spec.length)
        addresses = spec.base_address + idx * spec.elem_bytes
        return (node, issue, idx, addresses, None)

    def _finish_prepassed(
        self, node: Node, entry: tuple
    ) -> tuple[np.ndarray, np.ndarray]:
        """Materialise a prepass-classified access at its topological slot."""
        _, idx, complete, _ = entry
        backing = self.memory.array(str(node.param("array")))
        return _coerce_vec(backing[idx], node.dtype), complete

    def _source_value(self, node: Node, tids: np.ndarray, n: int) -> np.ndarray:
        op = node.opcode
        if op is Opcode.CONST:
            scalar = coerce(node.param("value"), node.dtype)
            return np.full(n, scalar, dtype=_NP_DTYPE[node.dtype])
        dx, dy, _ = (self.geometry.block_dim + (1, 1, 1))[:3]
        if op is Opcode.TID_X:
            return tids % dx
        if op is Opcode.TID_Y:
            return (tids // dx) % dy
        if op is Opcode.TID_Z:
            return tids // (dx * dy)
        return tids.copy()  # TID_LINEAR

    # ----------------------------------------------------------- issue ports
    def _issue(self, nid: int, ready: np.ndarray) -> np.ndarray:
        """Deterministic multi-server queue over the node's issue ports.

        Firings are serviced in ready order, assigned round-robin to the
        ``replicas`` ports; each port retires one operation per cycle.
        ``t_k = max(r_k, t_{k-ports} + 1)`` has the closed form
        ``t_i = i + cummax(r_i - i)`` along each port stream.
        """
        ports = self._ports
        # Ready times of a pure chain are monotone in thread position
        # (inject order plus uniform latencies), so the sort is usually a
        # no-op; detect that with one cheap pass instead of an argsort.
        if ready.size < 2 or bool((ready[1:] >= ready[:-1]).all()):
            order = None
            r = ready
        else:
            order = np.argsort(ready, kind="stable")
            r = ready[order]
        issue_sorted = np.empty_like(r)
        tail = self._port_tail[nid]
        for p in range(ports):
            seq = r[p::ports]
            if seq.size == 0:
                continue
            idx = np.arange(seq.size, dtype=np.float64)
            t = idx + np.maximum.accumulate(seq - idx)
            t = np.maximum(t, tail[p] + 1.0 + idx)
            issue_sorted[p::ports] = t
            tail[p] = t[-1]
        if order is None:
            return issue_sorted
        issue = np.empty_like(r)
        issue[order] = issue_sorted
        return issue

    # -------------------------------------------------------------- execution
    def _execute(
        self, node: Node, tids: np.ndarray, operands: list[np.ndarray], issue: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        op = node.opcode
        latency = unit_latency(self.config, node)
        if op in PURE_OPCODES:
            return _eval_pure_vec(node, operands), issue + latency
        if op is Opcode.LOAD:
            value, complete = self._access_global(node, operands[0], issue, store_value=None)
            return value, complete
        if op is Opcode.STORE:
            value, complete = self._access_global(
                node, operands[0], issue, store_value=operands[1]
            )
            self._completion = max(self._completion, float(complete.max()))
            return value, complete
        if op is Opcode.SCRATCH_LOAD:
            value, complete = self._access_scratch(node, operands[0], issue, store_value=None)
            return value, complete
        if op is Opcode.SCRATCH_STORE:
            value, complete = self._access_scratch(
                node, operands[0], issue, store_value=operands[1]
            )
            self._completion = max(self._completion, float(complete.max()))
            return value, complete
        if op is Opcode.OUTPUT:
            name = str(node.param("name"))
            slot = self.outputs[name]
            for tid, value in zip(tids.tolist(), operands[0].tolist()):
                slot[tid] = value
            complete = issue + 1.0
            self._completion = max(self._completion, float(complete.max()))
            return operands[0], complete
        raise SimulationError(f"batched engine cannot execute {op.value}")

    def _checked_indices(self, node: Node, index: np.ndarray, length: int) -> np.ndarray:
        idx = _coerce_vec(index, DType.I32)
        bad = (idx < 0) | (idx >= length)
        if np.any(bad):
            offender = int(idx[np.argmax(bad)])
            raise MemoryModelError(
                f"{'store' if node.opcode in (Opcode.STORE, Opcode.SCRATCH_STORE) else 'load'} "
                f"out of bounds: {node.param('array')}[{offender}] (length {length})"
            )
        return idx

    def _access_global(
        self,
        node: Node,
        index: np.ndarray,
        issue: np.ndarray,
        store_value: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stores (and loads in fallback mode): classify at the node's
        topological position, replaying the node's accesses in issue order
        (the order the event engine's heap services them when the phases
        do not overlap)."""
        name = str(node.param("array"))
        spec = self.memory.spec(name)
        backing = self.memory.array(name)
        idx = self._checked_indices(node, index, spec.length)
        addresses = spec.base_address + idx * spec.elem_bytes
        order = np.lexsort((np.arange(idx.size), issue))
        complete = np.empty(issue.shape)
        complete[order] = self._analytic.access_batch(
            addresses[order], issue[order], is_store=store_value is not None
        )
        if self._trace is not None and idx.size:
            ts = float(issue.min())
            self._trace.event(
                f"{'store' if store_value is not None else 'load'} {name}", "mem",
                ts, float(complete.max()) - ts,
                pid=self._trace_pid, tid=MEM_LANE, args={"count": int(idx.size)},
            )
        if store_value is None:
            return _coerce_vec(backing[idx], node.dtype), complete
        backing[idx] = store_value
        return store_value, complete

    def _access_scratch(
        self,
        node: Node,
        index: np.ndarray,
        issue: np.ndarray,
        store_value: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        name = str(node.param("array"))
        spec = self.memory.spec(name)
        backing = self.memory.array(name)
        idx = self._checked_indices(node, index, spec.length)
        complete = issue + float(self.config.memory.scratchpad.access_latency)
        if self._trace is not None and idx.size:
            ts = float(issue.min())
            self._trace.event(
                f"{'scratch store' if store_value is not None else 'scratch load'} {name}",
                "scratch", ts, float(complete.max()) - ts,
                pid=self._trace_pid, tid=MEM_LANE, args={"count": int(idx.size)},
            )
        scratch = self.hierarchy.scratchpad.stats
        if store_value is None:
            scratch.reads += idx.size
            return _coerce_vec(backing[idx], node.dtype), complete
        scratch.writes += idx.size
        backing[idx] = store_value
        return store_value, complete

    # ------------------------------------------------------------- counters
    def _accumulate_counters(self) -> None:
        """Token, NoC and functional-unit counters.

        Every node fires exactly once per thread (there are no boundary
        cases without inter-thread nodes), so each counter is a per-graph
        constant times the thread count — by construction equal to what
        the event engine accumulates one token at a time.
        """
        n = int(self._thread_ids.size)
        stats = self.stats
        for node in self._order:
            nid = node.node_id
            succ = self._successors[nid]
            stats.tokens_sent += len(succ) * n
            for dst, _ in succ:
                stats.noc_hops += self._edge_hops[(nid, dst)] * n
            if node.opcode in _SOURCE_OPCODES:
                continue
            stats.token_buffer_inserts += len(self._inputs[nid]) * n
            stats.token_buffer_matches += n
            cls = node.unit_class
            if cls is UnitClass.ALU:
                stats.alu_ops += n
            elif cls is UnitClass.FPU:
                stats.fpu_ops += n
            elif cls is UnitClass.SPECIAL:
                stats.special_ops += n
            elif cls is UnitClass.CONTROL:
                stats.control_ops += n
            elif cls is UnitClass.SPLIT_JOIN:
                stats.split_join_ops += n
            if node.opcode is Opcode.LOAD:
                stats.global_loads += n
            elif node.opcode is Opcode.STORE:
                stats.global_stores += n
            elif node.opcode is Opcode.SCRATCH_LOAD:
                stats.scratch_loads += n
            elif node.opcode is Opcode.SCRATCH_STORE:
                stats.scratch_stores += n


def run_batched(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    hierarchy: MemoryHierarchy | None = None,
    max_cycles: int = 20_000_000,
) -> CycleResult:
    """Convenience wrapper mirroring :func:`run_cycle_accurate`."""
    return BatchedSimulator(compiled, launch, hierarchy=hierarchy, max_cycles=max_cycles).run()
