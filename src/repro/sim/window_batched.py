"""Window-group batching for communicating dMT kernels.

The wave-batched engine (:mod:`repro.sim.batched`) requires an
inter-thread-free graph: ELEVATOR/ELDST/BARRIER nodes couple threads, so
a thread's walk through the graph is no longer independent.  But the
coupling is *static* — each inter-thread node's consumer→producer map is
a pure function of linear thread IDs (:func:`elevator_source_vec`), and
a BARRIER's groups are the ``tid // window`` transmission windows of
Sec. 3.2 — so when the traffic is feed-forward
(:func:`repro.graph.interthread.window_batch_problem`), token resolution
is a gather over per-thread vectors rather than an event exchange:

* **ELEVATOR** — consumers with a valid source gather the producer's
  value/issue directly (``value[src]``, ``issue[src] + elevator
  latency``); consumers without one receive the fallback constant at
  their injection cycle, exactly the event engine's ``_inject_thread``
  path.
* **ELDST** — the predicate (plus invalid-source threads) selects the
  *loading heads*; only their indices touch the memory system.  The
  forwarding chain ``head → head+Δ → …`` is a static pointer structure,
  so values propagate by level (chain depth) with the event engine's
  exact timing recurrence ``complete[t] = max(issue[t],
  complete[src]) + L``.
* **BARRIER** — windows partition the (sorted) thread vector into
  contiguous groups; the release cycle is a segmented maximum of the
  group's arrival cycles plus the control latency.

All threads of the core run as **one wave** (``wave_group`` is the whole
thread subset), so a forwarding chain or barrier group can never be
split across wave boundaries.  Thread subsets (multi-core shards) are
accepted under the same closure rule as the event engine
(:func:`thread_subset_problem`: a union of whole transmission windows).

Outputs are bit-identical to the event engine and all operation
counters (op counts, token traffic, ``elevator_retags``,
``elevator_constants``, ``eldst_forwards``, ``eldst_memory_loads``,
``barrier_arrivals``, LVC/spill counters, ...) are equal by
construction; cycle counts and memory-hierarchy counters are analytic
estimates exactly as for the base engine (``barrier_wait_cycles`` is a
timing statistic and inherits the same estimate status as the cycle
count).  Fidelity is measured by ``benchmarks/bench_batched_fidelity.py``
and gated by ``tests/sim/test_fidelity.py``.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from repro.arch.lvc import LiveValueCache
from repro.compiler.pipeline import CompiledKernel
from repro.errors import DeadlockError, SimulationError
from repro.graph.interthread import (
    elevator_source_vec,
    thread_subset_problem,
    window_batch_problem,
)
from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode
from repro.graph.semantics import coerce
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.obs.trace import MEM_LANE
from repro.sim.batched import _NP_DTYPE, BatchedSimulator, _coerce_vec
from repro.sim.cycle import CycleResult, unit_latency
from repro.sim.launch import KernelLaunch

__all__ = ["WindowBatchedSimulator", "run_window_batched"]


class _InterthreadTable(NamedTuple):
    """Static consumer→producer structure of one inter-thread node.

    ``src_pos`` maps each row (position in the core's thread vector) to
    the row of its producer, or ``-1`` when the thread has no valid
    source; ``receives`` marks rows the event engine actually pushes a
    forwarded value to (eLDST: ``consumer == source + |delta|``, the
    Fig. 9 loop-back condition).
    """

    src_pos: np.ndarray
    receives: np.ndarray


class WindowBatchedSimulator(BatchedSimulator):
    """Wave-batched engine extended to feed-forward communicating graphs.

    Constructed for graphs where
    :func:`repro.graph.interthread.window_batch_problem` returns ``None``
    — the same predicate behind the analyzer's ``RA044``/``RA045``
    verdict and ``engine="auto"`` dispatch, so eligibility is decided in
    exactly one place.
    """

    def __init__(
        self,
        compiled: CompiledKernel,
        launch: KernelLaunch,
        hierarchy: MemoryHierarchy | None = None,
        max_cycles: int = 20_000_000,
        wave_group: int = 1 << 14,
        thread_ids: Sequence[int] | None = None,
        memory: MemoryImage | None = None,
        dram_contention: int = 1,
        analytic_vectorised: bool = True,
        trace_pid: int = 0,
    ) -> None:
        super().__init__(
            compiled,
            launch,
            hierarchy=hierarchy,
            max_cycles=max_cycles,
            wave_group=wave_group,
            thread_ids=thread_ids,
            memory=memory,
            dram_contention=dram_contention,
            analytic_vectorised=analytic_vectorised,
            trace_pid=trace_pid,
        )
        if self._thread_ids.size != self.num_threads:
            problem = thread_subset_problem(
                self.graph, self._thread_ids.tolist(), self.num_threads
            )
            if problem is not None:
                raise SimulationError(
                    f"cannot simulate this thread subset of '{self.graph.name}': "
                    f"{problem}"
                )
        # Forwarding chains and barrier groups must never straddle a wave
        # boundary, so the whole subset runs as a single wave.
        self.wave_group = max(1, int(self._thread_ids.size))
        self._lvc_latency = LiveValueCache().access_latency
        self._it = {
            node.node_id: self._build_interthread_table(node)
            for node in self._order
            if node.opcode in (Opcode.ELEVATOR, Opcode.ELDST)
        }

    def _reject_unsupported(self, compiled: CompiledKernel) -> None:
        problem = window_batch_problem(compiled.graph)
        if problem is not None:
            raise SimulationError(
                f"'{compiled.graph.name}' is not window-batchable: {problem}; "
                "use engine='auto' to dispatch to a capable engine automatically"
            )

    # --------------------------------------------------------- static tables
    def _build_interthread_table(self, node: Node) -> _InterthreadTable:
        t = self._thread_ids
        src = elevator_source_vec(
            node, t, self.geometry.block_dim, self.num_threads
        )
        # Map global source TIDs to rows of this core's thread vector.
        # Shards need not be contiguous, so go through a sorted view.
        perm = np.argsort(t, kind="stable")
        t_sorted = t[perm]
        loc = np.searchsorted(t_sorted, np.where(src >= 0, src, 0))
        loc = np.minimum(loc, t.size - 1)
        found = (src >= 0) & (t_sorted[loc] == np.where(src >= 0, src, 0))
        if bool((~found & (src >= 0)).any()):
            # Closed subsets (checked in __init__) keep every source
            # in-subset; a miss here would be an engine bug.
            raise SimulationError(
                f"{node.label()} communicates with a thread outside this "
                "core's subset"
            )
        src_pos = np.where(found, perm[loc], np.int64(-1))
        if node.opcode is Opcode.ELDST:
            delta = abs(int(node.param("delta")))
            receives = (src_pos >= 0) & (t == src + delta)
        else:
            receives = src_pos >= 0
        return _InterthreadTable(src_pos=src_pos, receives=receives)

    # ------------------------------------------------------------- execution
    def _execute(
        self, node: Node, tids: np.ndarray, operands: list[np.ndarray], issue: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        op = node.opcode
        if op is Opcode.ELEVATOR:
            return self._execute_elevator_vec(node, operands, issue)
        if op is Opcode.ELDST:
            return self._execute_eldst_vec(node, operands, issue)
        if op is Opcode.BARRIER:
            return self._execute_barrier_vec(node, tids, operands, issue)
        return super()._execute(node, tids, operands, issue)

    def _execute_elevator_vec(
        self, node: Node, operands: list[np.ndarray], issue: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Every producer fires (consuming its issue port); consumers with
        a valid source gather its token, the rest get the fallback
        constant at their injection cycle (``_inject_thread``)."""
        table = self._it[node.node_id]
        valid = table.src_pos >= 0
        gather = np.where(valid, table.src_pos, 0)
        n = issue.size
        n_valid = int(valid.sum())
        latency = float(unit_latency(self.config, node))
        complete_valid = issue[gather] + latency
        if node.param("spilled"):
            # Producer writes the LVC, consumer reads it back.
            complete_valid = complete_valid + 2.0 * self._lvc_latency
            self.stats.spilled_tokens += n_valid
            self.stats.lvc_accesses += 2 * n_valid
        const = coerce(node.param("const"), node.dtype)
        value = np.where(valid, operands[0][gather], const)
        avail = np.where(valid, complete_valid, self._wave_inject + latency)
        self.stats.elevator_retags += n_valid
        self.stats.elevator_constants += n - n_valid
        if self._trace is not None and n:
            ts = float(issue.min())
            self._trace.event(
                f"{node.label()} retag", "interthread", ts, float(avail.max()) - ts,
                pid=self._trace_pid, tid=self._lane[node.node_id],
                args={"retags": n_valid, "constants": n - n_valid},
            )
        return value, avail

    def _execute_eldst_vec(
        self, node: Node, operands: list[np.ndarray], issue: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fallback path (replay order not event-stable): classify the
        heads' loads here, in issue order, then resolve the chain."""
        heads, idx = self._eldst_heads(node, operands)
        spec = self.memory.spec(str(node.param("array")))
        addresses = spec.base_address + idx * spec.elem_bytes
        head_rows = np.flatnonzero(heads)
        order = head_rows[
            np.lexsort((np.arange(head_rows.size), issue[head_rows]))
        ]
        load_complete = np.full(issue.size, np.nan)
        walk_begin = self._trace.clock() if self._trace is not None else 0.0
        load_complete[order] = self._analytic.access_batch(
            addresses[order], issue[order], is_store=False
        )
        if self._trace is not None:
            self._trace.wall_event(
                "tag walk", walk_begin, args={"accesses": int(order.size)}
            )
            if order.size:
                ts = float(issue[order].min())
                done = load_complete[order]
                end = float(done[np.isfinite(done)].max()) if done.size else ts
                self._trace.event(
                    f"eldst loads {node.param('array')}", "mem", ts, end - ts,
                    pid=self._trace_pid, tid=MEM_LANE,
                    args={"count": int(order.size)},
                )
        return self._eldst_resolve(node, issue, idx, heads, load_complete)

    def _eldst_heads(
        self, node: Node, operands: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Loading-head mask and (bounds-checked, head-only) indices."""
        table = self._it[node.node_id]
        predicate = operands[1].astype(np.bool_, copy=False)
        heads = predicate | (table.src_pos < 0)
        spec = self.memory.spec(str(node.param("array")))
        idx = _coerce_vec(operands[0], DType.I32)
        # Only the heads' indices reach memory; the event engine never
        # evaluates a forwarded thread's index, so neither may we.
        idx = np.where(heads, idx, np.int64(0))
        self._checked_indices(node, idx, spec.length)
        return heads, idx

    def _eldst_resolve(
        self,
        node: Node,
        issue: np.ndarray,
        idx: np.ndarray,
        heads: np.ndarray,
        load_complete: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Propagate values and timing down the static forwarding chains.

        Timing follows the event engine exactly: a head completes at its
        memory load's completion plus the eLDST completion latency ``L``
        (issue latency plus spill/external-buffer extra); a forwarded
        thread at ``complete[t] = max(issue[t], complete[src]) + L``.
        """
        table = self._it[node.node_id]
        n = issue.size
        lat = self.config.latency
        extra = 0.0
        if node.param("spilled"):
            extra = 2.0 * self._lvc_latency
            self.stats.spilled_tokens += n
            self.stats.lvc_accesses += 2 * n
        elif node.param("external_buffer_nodes"):
            extra = float(int(node.param("external_buffer_nodes")) * lat.elevator)
        latency = float(lat.ldst_issue) + extra

        waiting = ~heads & ~table.receives
        if bool(waiting.any()):
            tid = int(self._thread_ids[np.argmax(waiting)])
            raise DeadlockError(
                f"kernel '{self.graph.name}' deadlocked: thread {tid} waits "
                f"forever for a value {node.label()} never forwards to it"
            )

        # Chain depth of every row (heads are depth 0: they depend on
        # nobody for timing or data, whatever their position in the
        # forwarding chain).
        dep = np.where(heads, np.int64(-1), table.src_pos)
        pos = np.zeros(n, dtype=np.int64)
        cursor = dep.copy()
        for _ in range(n + 1):
            active = cursor >= 0
            if not bool(active.any()):
                break
            pos[active] += 1
            cursor[active] = dep[cursor[active]]
        else:  # pragma: no cover - window_batch_problem rejects recurrences
            raise DeadlockError(
                f"{node.label()} forwarding chain does not terminate"
            )

        backing = self.memory.array(str(node.param("array")))
        value = np.zeros(n, dtype=_NP_DTYPE[node.dtype])
        complete = np.empty(n)
        value[heads] = _coerce_vec(backing[idx[heads]], node.dtype)
        complete[heads] = load_complete[heads] + latency

        depth = int(pos.max(initial=0))
        if depth > 0:
            fwd_begin = self._trace.clock() if self._trace is not None else 0.0
            rows_by_depth = np.argsort(pos, kind="stable")
            bounds = np.cumsum(np.bincount(pos))[:-1]
            for rows in np.split(rows_by_depth, bounds)[1:]:
                src = dep[rows]
                value[rows] = value[src]
                complete[rows] = np.maximum(issue[rows], complete[src]) + latency
            if self._trace is not None:
                self._trace.wall_event(
                    "forwarding levels", fwd_begin, args={"depth": depth}
                )

        n_heads = int(heads.sum())
        n_forwards = int(table.receives.sum())
        self.stats.global_loads += n_heads
        self.stats.eldst_memory_loads += n_heads
        self.stats.eldst_forwards += n_forwards
        if self._trace is not None and n:
            ts = float(issue.min())
            self._trace.event(
                f"{node.label()} forward", "interthread", ts, float(complete.max()) - ts,
                pid=self._trace_pid, tid=self._lane[node.node_id],
                args={"heads": n_heads, "forwards": n_forwards, "depth": depth},
            )
        return value, complete

    def _execute_barrier_vec(
        self, node: Node, tids: np.ndarray, operands: list[np.ndarray], issue: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented-max release per transmission window group."""
        window = int(node.param("window"))
        groups = tids // window
        unique, inverse = np.unique(groups, return_inverse=True)
        release = np.full(unique.size, -np.inf)
        np.maximum.at(release, inverse, issue)
        release += float(self.config.latency.control)
        per_thread = release[inverse]
        n = issue.size
        self.stats.barrier_arrivals += n
        # One LVC write parking each value, one read releasing it.
        self.stats.lvc_accesses += 2 * n
        self.stats.barrier_wait_cycles += int(round(float((per_thread - issue).sum())))
        if self._trace is not None and n:
            first = np.full(unique.size, np.inf)
            np.minimum.at(first, inverse, issue)
            counts = np.bincount(inverse, minlength=unique.size)
            for g in range(unique.size):
                self._trace.event(
                    "barrier_release", "interthread", float(first[g]),
                    float(release[g] - first[g]),
                    pid=self._trace_pid, tid=self._lane[node.node_id],
                    args={"group": int(unique[g]), "count": int(counts[g])},
                )
        return operands[0], per_thread + float(self._lvc_latency)

    # --------------------------------------------------------------- prepass
    def _prepass_access(
        self, node: Node, operands: list[np.ndarray], issue: np.ndarray
    ):
        if node.opcode is not Opcode.ELDST:
            return super()._prepass_access(node, operands, issue)
        heads, idx = self._eldst_heads(node, operands)
        spec = self.memory.spec(str(node.param("array")))
        addresses = spec.base_address + idx * spec.elem_bytes
        return (node, issue, idx, addresses, heads)

    def _finish_prepassed(
        self, node: Node, entry: tuple
    ) -> tuple[np.ndarray, np.ndarray]:
        if node.opcode is not Opcode.ELDST:
            return super()._finish_prepassed(node, entry)
        issue, idx, load_complete, heads = entry
        return self._eldst_resolve(node, issue, idx, heads, load_complete)

    # ------------------------------------------------------------------- run
    def run(self) -> CycleResult:
        result = super().run()
        self.stats.extra["engine"] = "window-batched"
        return result


def run_window_batched(
    compiled: CompiledKernel,
    launch: KernelLaunch,
    hierarchy: MemoryHierarchy | None = None,
    max_cycles: int = 20_000_000,
) -> CycleResult:
    """Convenience wrapper mirroring :func:`repro.sim.batched.run_batched`."""
    return WindowBatchedSimulator(
        compiled, launch, hierarchy=hierarchy, max_cycles=max_cycles
    ).run()
