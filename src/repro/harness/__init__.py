"""Experiment orchestration and figure/table regeneration."""

from repro.harness.experiments import (
    RunResult,
    compare_architectures,
    outputs_digest,
    run_suite,
    run_workload,
)
from repro.harness.figures import (
    BENCHMARK_SUITE_PARAMS,
    DEFAULT_SUITE_PARAMS,
    FigureResult,
    figure5,
    figure11,
    figure12,
    table2,
    table3,
)

__all__ = [
    "BENCHMARK_SUITE_PARAMS",
    "DEFAULT_SUITE_PARAMS",
    "FigureResult",
    "RunResult",
    "compare_architectures",
    "figure5",
    "figure11",
    "figure12",
    "outputs_digest",
    "run_suite",
    "run_workload",
    "table2",
    "table3",
]
