"""Regeneration of every table and figure of the paper's evaluation.

Each function returns plain data (and a rendered text block) for one
artefact:

* :func:`table2`  — the system configuration dump.
* :func:`table3`  — the benchmark inventory.
* :func:`figure5` — the ΔTID transmission-distance CDF.
* :func:`figure11`/- :func:`figure12` — the speedup / energy-efficiency
  comparison, produced from a full suite run.

The benchmark modules under ``benchmarks/`` call these functions and print
their output, so running ``pytest benchmarks/ --benchmark-only`` recreates
the paper's evaluation artefacts end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.comparison import ComparisonTable
from repro.analysis.delta_cdf import TransmissionCdf, build_cdf
from repro.analysis.report import (
    render_figure5,
    render_figure11,
    render_figure12,
    render_table3,
)
from repro.config.system import SystemConfig, default_system_config
from repro.harness.experiments import run_suite
from repro.power.tables import EnergyTable
from repro.workloads.base import Workload
from repro.workloads.registry import paper_workloads
from repro.workloads.registry import table3 as table3_rows

__all__ = [
    "FigureResult",
    "table2",
    "table3",
    "figure5",
    "figure11",
    "figure12",
    "DEFAULT_SUITE_PARAMS",
    "BENCHMARK_SUITE_PARAMS",
]

#: Small problem sizes used by the tests and quick sweeps so that the full
#: suite (9 kernels x 3 architectures) runs in a few seconds.
DEFAULT_SUITE_PARAMS: dict[str, dict[str, Any]] = {
    "scan": {"n": 128},
    "matrixMul": {"dim": 12},
    "convolution": {"n": 192},
    "reduce": {"n": 128, "window": 32},
    "lud": {"dim": 10},
    "srad": {"dim": 12},
    "bpnn": {"n_in": 8, "n_out": 16},
    "hotspot": {"dim": 12},
    "pathfinder": {"cols": 128, "rows": 5},
}

#: Larger, throughput-dominated problem sizes used by the benchmark harness
#: when regenerating Figs. 11/12 (the regime the paper evaluates: enough
#: threads that steady-state throughput, not pipeline fill, dominates).
BENCHMARK_SUITE_PARAMS: dict[str, dict[str, Any]] = {
    "scan": {"n": 512},
    "matrixMul": {"dim": 20},
    "convolution": {"n": 512},
    "reduce": {"n": 512, "window": 64},
    "lud": {"dim": 16},
    "srad": {"dim": 20},
    "bpnn": {"n_in": 16, "n_out": 16},
    "hotspot": {"dim": 20},
    "pathfinder": {"cols": 512, "rows": 6},
}


@dataclass
class FigureResult:
    """One regenerated artefact: structured data plus its text rendering."""

    name: str
    data: Any
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def table2(config: SystemConfig | None = None) -> FigureResult:
    """Table 2: the dMT-CGRA system configuration."""
    config = config or default_system_config()
    return FigureResult(name="table2", data=config.to_dict(), text=config.describe())


def table3(workloads: Sequence[Workload] | None = None) -> FigureResult:
    """Table 3: the benchmark inventory."""
    rows = table3_rows(workloads)
    return FigureResult(name="table3", data=rows, text=render_table3(rows))


def figure5(
    workloads: Sequence[Workload] | None = None,
    params: Mapping[str, Mapping[str, Any]] | None = None,
    buffer_size: int = 16,
) -> FigureResult:
    """Figure 5: CDF of ΔTID transmission distances across the suite."""
    selected = list(workloads or paper_workloads())
    overrides = params if params is not None else DEFAULT_SUITE_PARAMS
    graphs = []
    for workload in selected:
        merged = workload.params_with_defaults(overrides.get(workload.name))
        graphs.append(workload.build_dmt(merged))
    cdf: TransmissionCdf = build_cdf(graphs)
    return FigureResult(
        name="figure5",
        data={
            "points": cdf.points(),
            "fraction_within_buffer": cdf.fraction_within(buffer_size),
            "max_distance": cdf.max_distance(),
        },
        text=render_figure5(cdf, buffer_size),
    )


def _suite(
    params: Mapping[str, Mapping[str, Any]] | None,
    config: SystemConfig | None,
    energy_table: EnergyTable | None,
    workloads: Sequence[Workload] | None,
) -> ComparisonTable:
    return run_suite(
        workloads=workloads,
        params=params if params is not None else DEFAULT_SUITE_PARAMS,
        config=config,
        energy_table=energy_table,
    )


def figure11(
    params: Mapping[str, Mapping[str, Any]] | None = None,
    config: SystemConfig | None = None,
    energy_table: EnergyTable | None = None,
    workloads: Sequence[Workload] | None = None,
    table: ComparisonTable | None = None,
) -> FigureResult:
    """Figure 11: speedup of MT-CGRA and dMT-CGRA over the Fermi SM."""
    table = table or _suite(params, config, energy_table, workloads)
    data = {
        "speedup_mt": table.speedups("mt"),
        "speedup_dmt": table.speedups("dmt"),
        "geomean_mt": table.geomean_speedup("mt"),
        "geomean_dmt": table.geomean_speedup("dmt"),
        "max_dmt": table.max_speedup("dmt"),
    }
    return FigureResult(name="figure11", data=data, text=render_figure11(table))


def figure12(
    params: Mapping[str, Mapping[str, Any]] | None = None,
    config: SystemConfig | None = None,
    energy_table: EnergyTable | None = None,
    workloads: Sequence[Workload] | None = None,
    table: ComparisonTable | None = None,
) -> FigureResult:
    """Figure 12: energy efficiency of MT-CGRA and dMT-CGRA over the Fermi SM."""
    table = table or _suite(params, config, energy_table, workloads)
    data = {
        "efficiency_mt": table.energy_efficiencies("mt"),
        "efficiency_dmt": table.energy_efficiencies("dmt"),
        "geomean_mt": table.geomean_energy_efficiency("mt"),
        "geomean_dmt": table.geomean_energy_efficiency("dmt"),
        "max_dmt": table.max_energy_efficiency("dmt"),
    }
    return FigureResult(name="figure12", data=data, text=render_figure12(table))
