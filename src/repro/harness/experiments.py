"""End-to-end experiment orchestration.

This module glues the whole pipeline together the way the paper's
methodology does (Sec. 5.1): instantiate a workload, run it on one of the
three architectures, verify the results against the NumPy reference,
collect the execution counters and convert them into energy.  The figure
generators in :mod:`repro.harness.figures` and the benchmark suite are thin
wrappers around these functions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis.comparison import ArchitectureComparison, ComparisonTable
from repro.analyze.manager import analyze_kernel
from repro.compiler.pipeline import CompiledKernel, CompilerOptions, compile_kernel
from repro.config.system import SystemConfig, default_system_config
from repro.errors import WorkloadError
from repro.gpgpu.simulator import run_fermi
from repro.obs.metrics import timer
from repro.power.model import EnergyBreakdown, cgra_energy, fermi_energy
from repro.power.tables import EnergyTable
from repro.sim import simulate
from repro.workloads.base import ARCHITECTURES, PreparedWorkload, Workload
from repro.workloads.registry import get_workload, paper_workloads

__all__ = [
    "GRAPH_VARIANTS",
    "RunResult",
    "outputs_digest",
    "run_workload",
    "run_workload_record",
    "compare_architectures",
    "run_suite",
]

#: Dataflow-graph variants runnable on the CGRA simulators in addition to
#: the paper's three architectures: ``dmt_win`` is the window-bounded dMT
#: kernel (legal for multi-core sharding) and ``stream`` the
#: inter-thread-free kernel (legal for the batched engine).
GRAPH_VARIANTS = ("mt", "dmt", "dmt_win", "stream")


@dataclass
class RunResult:
    """One (workload, architecture) execution."""

    workload: str
    architecture: str
    cycles: int
    counters: dict[str, int | float]
    energy: EnergyBreakdown
    outputs: dict[str, np.ndarray]
    compiled: CompiledKernel | None = None
    params: dict[str, Any] = field(default_factory=dict)
    #: Static-analyzer findings for the compiled kernel (plain
    #: ``Diagnostic.to_dict`` form; empty for the Fermi baseline).
    diagnostics: list[dict[str, Any]] = field(default_factory=list)
    #: Wall-clock seconds per pipeline phase (compile, simulate, analyze,
    #: report, ...).  Kept apart from ``counters`` on purpose: counters
    #: are bit-for-bit deterministic (and cached as such by the explore
    #: layer); phase timings are host-dependent provenance.
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    def summary(self) -> str:
        return (
            f"{self.workload:<12} {self.architecture:<6} "
            f"cycles={self.cycles:<8} energy={self.energy.total_uj:.2f} uJ"
        )

    def to_record(self) -> dict[str, Any]:
        """Plain-data form of this result (picklable and JSON-serialisable).

        Drops the output arrays and the compiled kernel — everything a
        sweep needs to cache, compare or re-render a run survives: the
        counters (with their engine/core provenance), the energy
        breakdown, the parameters including the input seed, and a
        deterministic :func:`outputs_digest` standing in for the dropped
        arrays, so cached records can still prove output bit-identity.
        """
        return {
            "workload": self.workload,
            "architecture": self.architecture,
            "cycles": int(self.cycles),
            "counters": {k: _plain_scalar(v) for k, v in self.counters.items()},
            "energy_pj": float(self.energy.total_pj),
            "energy": {k: float(v) for k, v in self.energy.components.items()},
            "params": {k: _plain_scalar(v) for k, v in self.params.items()},
            "diagnostics": list(self.diagnostics),
            "phases": {k: float(v) for k, v in self.phases.items()},
            "outputs_digest": outputs_digest(self.outputs),
        }


def outputs_digest(outputs: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over the named output arrays (name, dtype, shape, bytes).

    Deterministic by the engines' bit-identical-outputs contract, so it
    may live inside cached records: a served simulate response proves it
    returned exactly what a direct :func:`repro.sim.simulate` call would
    have produced by matching this digest.
    """
    digest = hashlib.sha256()
    for name in sorted(outputs):
        array = np.ascontiguousarray(outputs[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(str(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _plain_scalar(value: Any) -> Any:
    """Convert NumPy scalars to native Python so records serialise to JSON."""
    return value.item() if isinstance(value, np.generic) else value


def _resolve(workload: Workload | str) -> Workload:
    if isinstance(workload, str):
        return get_workload(workload)
    return workload


def _outputs_from_memory(prepared: PreparedWorkload, memory) -> dict[str, np.ndarray]:
    return {name: memory.array(name).copy() for name in prepared.expected}


def run_workload(
    workload: Workload | str,
    architecture: str,
    params: Mapping[str, Any] | None = None,
    seed: int = 0,
    config: SystemConfig | None = None,
    energy_table: EnergyTable | None = None,
    check: bool = True,
    compiler_options: CompilerOptions | None = None,
    engine: str = "auto",
    cores: int | None = None,
) -> RunResult:
    """Run one workload on one architecture and return cycles/energy/outputs.

    ``architecture`` is one of the paper's three architectures
    (``fermi``/``mt``/``dmt``) or an additional graph variant from
    :data:`GRAPH_VARIANTS` (``dmt_win``, ``stream``).  ``engine`` and
    ``cores`` are forwarded to :func:`repro.sim.simulate`; the resolved
    engine (never ``"auto"``) lands in ``counters["engine"]``.  Both are
    ignored by the Fermi baseline.
    """
    if architecture not in ARCHITECTURES and architecture not in GRAPH_VARIANTS:
        raise WorkloadError(
            f"unknown architecture '{architecture}'; expected one of "
            f"{ARCHITECTURES + tuple(v for v in GRAPH_VARIANTS if v not in ARCHITECTURES)}"
        )
    config = config or default_system_config()
    resolved = _resolve(workload)
    phases: dict[str, float] = {}
    with timer("prepare") as span:
        prepared = resolved.prepare(params, seed=seed)
    phases["prepare"] = span.seconds

    if architecture == "fermi":
        program = prepared.fermi_program()
        with timer("simulate") as span:
            result = run_fermi(program, prepared.fermi_inputs(), config=config)
        phases["simulate"] = span.seconds
        with timer("report") as span:
            counters = result.counters()
            energy = fermi_energy(counters, config, energy_table)
            outputs = _outputs_from_memory(prepared, result.memory)
        phases["report"] = span.seconds
        compiled = None
        cycles = result.cycles
        diagnostics = []
    else:
        launch = prepared.launch(architecture)
        with timer("compile") as span:
            compiled = compile_kernel(launch.graph, config, compiler_options)
        phases["compile"] = span.seconds
        with timer("simulate") as span:
            result = simulate(compiled, launch, engine=engine, cores=cores)
        phases["simulate"] = span.seconds
        counters = result.counters()
        # Report the static critical-path lower bound next to the measured
        # cycle count (cached on the kernel by the compile-time analysis).
        with timer("analyze") as span:
            analysis = analyze_kernel(compiled)
        phases["analyze"] = span.seconds
        counters["static_min_cycles"] = analysis.min_cycles
        diagnostics = [d.to_dict() for d in analysis.diagnostics]
        with timer("report") as span:
            energy = cgra_energy(
                counters,
                config,
                energy_table,
                configured_units=len(compiled.mapping.placement.node_to_unit)
                if compiled.mapping
                else None,
            )
            outputs = _outputs_from_memory(prepared, result.memory)
        phases["report"] = span.seconds
        cycles = result.cycles

    if check:
        with timer("check") as span:
            prepared.check_outputs(outputs)
        phases["check"] = span.seconds

    return RunResult(
        workload=resolved.name,
        architecture=architecture,
        cycles=cycles,
        counters=dict(counters),
        energy=energy,
        outputs=outputs,
        compiled=compiled,
        # The seed is part of the run's identity (it generated the input
        # data), so it travels with the parameters.
        params={**prepared.params, "seed": prepared.seed},
        diagnostics=diagnostics,
        phases=phases,
    )


def run_workload_record(
    workload: str,
    architecture: str,
    params: Mapping[str, Any] | None = None,
    seed: int = 0,
    config: Mapping[str, Any] | SystemConfig | None = None,
    engine: str = "auto",
    check: bool = True,
) -> dict[str, Any]:
    """Pure, picklable form of :func:`run_workload` for worker processes.

    Accepts only plain data (the configuration may be a ``to_dict``
    mapping) and returns :meth:`RunResult.to_record` output, so it can be
    shipped through a :class:`~concurrent.futures.ProcessPoolExecutor`
    without dragging graphs, memory images or NumPy views across the
    pickle boundary.
    """
    if config is not None and not isinstance(config, SystemConfig):
        config = SystemConfig.from_dict(config)
    result = run_workload(
        workload,
        architecture,
        params=params,
        seed=seed,
        config=config,
        engine=engine,
        check=check,
    )
    return result.to_record()


def compare_architectures(
    workload: Workload | str,
    params: Mapping[str, Any] | None = None,
    seed: int = 0,
    config: SystemConfig | None = None,
    energy_table: EnergyTable | None = None,
    architectures: Sequence[str] = ARCHITECTURES,
    check: bool = True,
    engine: str = "auto",
    cores: int | None = None,
) -> dict[str, RunResult]:
    """Run one workload on every requested architecture."""
    return {
        architecture: run_workload(
            workload,
            architecture,
            params=params,
            seed=seed,
            config=config,
            energy_table=energy_table,
            check=check,
            engine=engine,
            cores=cores,
        )
        for architecture in architectures
    }


def run_suite(
    workloads: Sequence[Workload | str] | None = None,
    params: Mapping[str, Mapping[str, Any]] | None = None,
    seed: int = 0,
    config: SystemConfig | None = None,
    energy_table: EnergyTable | None = None,
    check: bool = True,
    engine: str = "auto",
    cores: int | None = None,
) -> ComparisonTable:
    """Run the full Table 3 suite on all three architectures (Figs. 11/12)."""
    table = ComparisonTable()
    selected = [_resolve(w) for w in (workloads or paper_workloads())]
    for workload in selected:
        overrides = (params or {}).get(workload.name)
        results = compare_architectures(
            workload,
            params=overrides,
            seed=seed,
            config=config,
            energy_table=energy_table,
            check=check,
            engine=engine,
            cores=cores,
        )
        table.add(
            ArchitectureComparison(
                workload=workload.name,
                cycles={arch: r.cycles for arch, r in results.items()},
                energy_pj={arch: r.energy_pj for arch, r in results.items()},
            )
        )
    return table
