"""A small PTX-like ISA for the Fermi SIMT baseline.

The paper's GPGPU baseline is an NVIDIA Fermi SM simulated with GPGPU-Sim.
Re-creating PTX is out of scope; instead the baseline kernels are written
in a compact register-level ISA that exposes exactly the von Neumann costs
the paper contrasts against the CGRA: every executed operation is fetched,
decoded and issued; every operand passes through the register file; shared
memory is addressed explicitly; and barriers synchronise the whole block.

Operands are element indices for memory operations (the simulator converts
them to byte addresses using the array table), which keeps hand-written
kernels short without hiding any instruction the real machine would need —
address arithmetic is still explicit in the kernels (MAD/ADD of indices).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import IsaError

__all__ = ["Op", "Reg", "Pred", "Imm", "Special", "Operand", "Instruction", "LATENCY_CLASS"]


class Op(enum.Enum):
    """Instruction opcodes of the SIMT baseline ISA."""

    # data movement / integer & float arithmetic
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    MIN = "min"
    MAX = "max"
    FMA = "fma"
    MAD = "mad"
    NEG = "neg"
    ABS = "abs"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"

    # special function unit
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    EXP = "exp"
    LOG = "log"
    RCP = "rcp"

    # predicates and selection
    SETP_LT = "setp.lt"
    SETP_LE = "setp.le"
    SETP_GT = "setp.gt"
    SETP_GE = "setp.ge"
    SETP_EQ = "setp.eq"
    SETP_NE = "setp.ne"
    PAND = "pand"
    POR = "por"
    PNOT = "pnot"
    SEL = "sel"

    # memory
    LD_GLOBAL = "ld.global"
    ST_GLOBAL = "st.global"
    LD_SHARED = "ld.shared"
    ST_SHARED = "st.shared"

    # control
    BAR_SYNC = "bar.sync"
    BRA = "bra"
    EXIT = "exit"


#: Latency class of each opcode, mapped to cycle counts by the simulator.
LATENCY_CLASS: dict[Op, str] = {
    **{op: "alu" for op in (
        Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.MIN, Op.MAX, Op.FMA, Op.MAD, Op.NEG,
        Op.ABS, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.SEL,
        Op.SETP_LT, Op.SETP_LE, Op.SETP_GT, Op.SETP_GE, Op.SETP_EQ, Op.SETP_NE,
        Op.PAND, Op.POR, Op.PNOT,
    )},
    **{op: "sfu" for op in (Op.DIV, Op.MOD, Op.SQRT, Op.RSQRT, Op.EXP, Op.LOG, Op.RCP)},
    Op.LD_GLOBAL: "memory",
    Op.ST_GLOBAL: "memory",
    Op.LD_SHARED: "shared",
    Op.ST_SHARED: "shared",
    Op.BAR_SYNC: "sync",
    Op.BRA: "control",
    Op.EXIT: "control",
}


@dataclass(frozen=True)
class Reg:
    """A general-purpose (per-thread) register."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise IsaError("register index must be non-negative")

    def __repr__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Pred:
    """A predicate (per-thread boolean) register."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise IsaError("predicate index must be non-negative")

    def __repr__(self) -> str:
        return f"p{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: float | int | bool

    def __repr__(self) -> str:
        return f"#{self.value}"


class Special(enum.Enum):
    """Special read-only registers (CUDA built-ins)."""

    TID_X = "%tid.x"
    TID_Y = "%tid.y"
    TID_Z = "%tid.z"
    TID_LINEAR = "%tid.linear"
    NTID_X = "%ntid.x"
    NTID_Y = "%ntid.y"
    NTID_Z = "%ntid.z"


Operand = Union[Reg, Pred, Imm, Special]


@dataclass
class Instruction:
    """One static instruction of a SIMT program."""

    op: Op
    dst: Optional[Reg | Pred] = None
    srcs: tuple[Operand, ...] = ()
    array: Optional[str] = None
    target: Optional[str] = None
    guard: Optional[Pred] = None
    guard_negated: bool = False
    comment: str = ""

    def __post_init__(self) -> None:
        self.srcs = tuple(self.srcs)
        self._validate()

    def _validate(self) -> None:
        if self.op in (Op.LD_GLOBAL, Op.ST_GLOBAL, Op.LD_SHARED, Op.ST_SHARED):
            if not self.array:
                raise IsaError(f"{self.op.value} needs an array name")
        if self.op is Op.BRA and not self.target:
            raise IsaError("bra needs a target label")
        if self.op is Op.BRA and self.dst is not None:
            raise IsaError("bra has no destination register")
        if self.op in (Op.BAR_SYNC, Op.EXIT) and (self.dst or self.srcs):
            raise IsaError(f"{self.op.value} takes no operands")
        if self.op.value.startswith("setp") and not isinstance(self.dst, Pred):
            raise IsaError(f"{self.op.value} writes a predicate register")

    # ------------------------------------------------------------------ helpers
    @property
    def latency_class(self) -> str:
        return LATENCY_CLASS[self.op]

    @property
    def is_memory(self) -> bool:
        return self.op in (Op.LD_GLOBAL, Op.ST_GLOBAL, Op.LD_SHARED, Op.ST_SHARED)

    @property
    def reads(self) -> tuple[Operand, ...]:
        regs = tuple(s for s in self.srcs if isinstance(s, (Reg, Pred)))
        if self.guard is not None:
            regs = regs + (self.guard,)
        return regs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        guard = ""
        if self.guard is not None:
            guard = f"@{'!' if self.guard_negated else ''}{self.guard} "
        parts = [repr(self.dst)] if self.dst is not None else []
        parts += [repr(s) for s in self.srcs]
        if self.array:
            parts.append(f"[{self.array}]")
        if self.target:
            parts.append(self.target)
        return f"{guard}{self.op.value} " + ", ".join(parts)
