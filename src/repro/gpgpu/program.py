"""SIMT programs and the builder used to write the Fermi baseline kernels.

A :class:`SimtProgram` is the baseline analogue of a compiled dataflow
graph: a list of instructions, the labels branch targets resolve to, the
kernel's array declarations and the thread-block geometry.  The
:class:`SimtProgramBuilder` offers a thin, register-allocating layer so the
nine baseline kernels read close to hand-written PTX without bookkeeping
noise; loops are emitted as explicit backward branches so the simulator
pays instruction fetch/issue for every iteration, exactly the von Neumann
cost the paper contrasts against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import IsaError
from repro.graph.opcodes import DType
from repro.gpgpu.isa import Imm, Instruction, Op, Operand, Pred, Reg, Special
from repro.kernel.arrays import ArraySpec, ArrayTable, MemorySpace
from repro.kernel.geometry import ThreadGeometry

__all__ = ["SimtProgram", "SimtProgramBuilder"]


@dataclass
class SimtProgram:
    """A complete SIMT kernel for the Fermi baseline."""

    name: str
    geometry: ThreadGeometry
    instructions: list[Instruction]
    labels: dict[str, int]
    arrays: ArrayTable
    num_registers: int
    num_predicates: int

    def __post_init__(self) -> None:
        for instr in self.instructions:
            if instr.op is Op.BRA and instr.target not in self.labels:
                raise IsaError(f"undefined branch target '{instr.target}'")
        if not any(instr.op is Op.EXIT for instr in self.instructions):
            raise IsaError(f"program '{self.name}' has no EXIT instruction")

    @property
    def num_threads(self) -> int:
        return self.geometry.num_threads

    def static_size(self) -> int:
        return len(self.instructions)

    def shared_bytes(self) -> int:
        return self.arrays.total_shared_bytes()

    def listing(self) -> str:
        """Human-readable assembly listing."""
        by_pc: dict[int, list[str]] = {}
        for label, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(label)
        lines = [f"// kernel {self.name}  block={self.geometry.block_dim}"]
        for pc, instr in enumerate(self.instructions):
            for label in by_pc.get(pc, []):
                lines.append(f"{label}:")
            lines.append(f"  {pc:3d}: {instr!r}")
        return "\n".join(lines)


class SimtProgramBuilder:
    """Builds a :class:`SimtProgram` instruction by instruction."""

    def __init__(self, name: str, block_dim: Sequence[int] | int) -> None:
        if isinstance(block_dim, int):
            block_dim = (block_dim,)
        self.name = name
        self.geometry = ThreadGeometry(tuple(block_dim))
        self.arrays = ArrayTable()
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._next_reg = 0
        self._next_pred = 0

    # ------------------------------------------------------------------ arrays
    def global_array(
        self, name: str, length: int, dtype: DType = DType.F32, elem_bytes: int = 4
    ) -> ArraySpec:
        return self.arrays.declare(name, length, dtype, MemorySpace.GLOBAL, elem_bytes)

    def shared_array(
        self, name: str, length: int, dtype: DType = DType.F32, elem_bytes: int = 4
    ) -> ArraySpec:
        return self.arrays.declare(name, length, dtype, MemorySpace.SHARED, elem_bytes)

    # --------------------------------------------------------------- registers
    def reg(self) -> Reg:
        """Allocate a fresh general-purpose register."""
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    def pred(self) -> Pred:
        """Allocate a fresh predicate register."""
        pred = Pred(self._next_pred)
        self._next_pred += 1
        return pred

    # ------------------------------------------------------------------ labels
    def label(self, name: str) -> str:
        """Define label ``name`` at the current position."""
        if name in self._labels:
            raise IsaError(f"label '{name}' is already defined")
        self._labels[name] = len(self._instructions)
        return name

    # ----------------------------------------------------------------- emitter
    def emit(self, instruction: Instruction) -> Instruction:
        self._instructions.append(instruction)
        return instruction

    def _binary(self, op: Op, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(op, dst=dst, srcs=(a, b)))
        return dst

    # Arithmetic helpers -----------------------------------------------------
    def mov(self, src: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.MOV, dst=dst, srcs=(src,)))
        return dst

    def add(self, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        return self._binary(Op.ADD, a, b, dst)

    def sub(self, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        return self._binary(Op.SUB, a, b, dst)

    def mul(self, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        return self._binary(Op.MUL, a, b, dst)

    def div(self, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        return self._binary(Op.DIV, a, b, dst)

    def mod(self, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        return self._binary(Op.MOD, a, b, dst)

    def neg(self, a: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.NEG, dst=dst, srcs=(a,)))
        return dst

    def absolute(self, a: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.ABS, dst=dst, srcs=(a,)))
        return dst

    def minimum(self, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        return self._binary(Op.MIN, a, b, dst)

    def maximum(self, a: Operand, b: Operand, dst: Reg | None = None) -> Reg:
        return self._binary(Op.MAX, a, b, dst)

    def fma(self, a: Operand, b: Operand, c: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.FMA, dst=dst, srcs=(a, b, c)))
        return dst

    def mad(self, a: Operand, b: Operand, c: Operand, dst: Reg | None = None) -> Reg:
        """Integer multiply-add (index arithmetic)."""
        dst = dst or self.reg()
        self.emit(Instruction(Op.MAD, dst=dst, srcs=(a, b, c)))
        return dst

    def sqrt(self, a: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.SQRT, dst=dst, srcs=(a,)))
        return dst

    def exp(self, a: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.EXP, dst=dst, srcs=(a,)))
        return dst

    def rcp(self, a: Operand, dst: Reg | None = None) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.RCP, dst=dst, srcs=(a,)))
        return dst

    # Predicates / select ------------------------------------------------------
    def setp(self, op: Op, a: Operand, b: Operand, dst: Pred | None = None) -> Pred:
        if not op.value.startswith("setp"):
            raise IsaError(f"{op.value} is not a predicate comparison")
        dst = dst or self.pred()
        self.emit(Instruction(op, dst=dst, srcs=(a, b)))
        return dst

    def select(
        self, pred: Pred, if_true: Operand, if_false: Operand, dst: Reg | None = None
    ) -> Reg:
        dst = dst or self.reg()
        self.emit(Instruction(Op.SEL, dst=dst, srcs=(pred, if_true, if_false)))
        return dst

    # Memory -------------------------------------------------------------------
    def ld_global(self, array: str, index: Operand, dst: Reg | None = None,
                  guard: Pred | None = None, guard_negated: bool = False) -> Reg:
        self._check_space(array, MemorySpace.GLOBAL)
        dst = dst or self.reg()
        self.emit(Instruction(Op.LD_GLOBAL, dst=dst, srcs=(index,), array=array,
                              guard=guard, guard_negated=guard_negated))
        return dst

    def st_global(self, array: str, index: Operand, value: Operand,
                  guard: Pred | None = None, guard_negated: bool = False) -> None:
        self._check_space(array, MemorySpace.GLOBAL)
        self.emit(Instruction(Op.ST_GLOBAL, srcs=(index, value), array=array,
                              guard=guard, guard_negated=guard_negated))

    def ld_shared(self, array: str, index: Operand, dst: Reg | None = None,
                  guard: Pred | None = None, guard_negated: bool = False) -> Reg:
        self._check_space(array, MemorySpace.SHARED)
        dst = dst or self.reg()
        self.emit(Instruction(Op.LD_SHARED, dst=dst, srcs=(index,), array=array,
                              guard=guard, guard_negated=guard_negated))
        return dst

    def st_shared(self, array: str, index: Operand, value: Operand,
                  guard: Pred | None = None, guard_negated: bool = False) -> None:
        self._check_space(array, MemorySpace.SHARED)
        self.emit(Instruction(Op.ST_SHARED, srcs=(index, value), array=array,
                              guard=guard, guard_negated=guard_negated))

    def _check_space(self, array: str, space: str) -> None:
        spec = self.arrays.get(array)
        if spec.space != space:
            raise IsaError(f"array '{array}' is not in the {space} space")

    # Control ------------------------------------------------------------------
    def barrier(self) -> None:
        """CUDA ``__syncthreads()``."""
        self.emit(Instruction(Op.BAR_SYNC))

    def branch(self, target: str, guard: Pred | None = None, guard_negated: bool = False) -> None:
        self.emit(Instruction(Op.BRA, target=target, guard=guard, guard_negated=guard_negated))

    def exit(self) -> None:
        self.emit(Instruction(Op.EXIT))

    # Convenience --------------------------------------------------------------
    def tid_x(self) -> Reg:
        return self.mov(Special.TID_X)

    def tid_y(self) -> Reg:
        return self.mov(Special.TID_Y)

    def tid_linear(self) -> Reg:
        return self.mov(Special.TID_LINEAR)

    def imm(self, value: float | int | bool) -> Imm:
        return Imm(value)

    # ------------------------------------------------------------------- build
    def finish(self) -> SimtProgram:
        if not self._instructions or self._instructions[-1].op is not Op.EXIT:
            self.exit()
        return SimtProgram(
            name=self.name,
            geometry=self.geometry,
            instructions=list(self._instructions),
            labels=dict(self._labels),
            arrays=self.arrays,
            num_registers=self._next_reg,
            num_predicates=self._next_pred,
        )
