"""Fermi-like von Neumann GPGPU baseline: ISA, programs and SIMT simulator."""

from repro.gpgpu.isa import Imm, Instruction, Op, Pred, Reg, Special
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.gpgpu.simulator import FermiResult, FermiSimulator, run_fermi

__all__ = [
    "FermiResult",
    "FermiSimulator",
    "Imm",
    "Instruction",
    "Op",
    "Pred",
    "Reg",
    "SimtProgram",
    "SimtProgramBuilder",
    "Special",
    "run_fermi",
]
