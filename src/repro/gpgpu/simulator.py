"""Cycle-level simulator of the Fermi-like SIMT baseline (one GTX480 SM).

The model reproduces the first-order von Neumann costs the paper measures
the CGRA against:

* **instruction issue width** — two warp schedulers, each issuing one
  instruction per cycle from a ready warp, which caps throughput at
  ``2 x 32`` lane-operations per cycle no matter how many ALUs exist;
* **register-file traffic** — every operand is read from and every result
  written to the register file (counted per lane for the energy model);
* **scoreboarding** — an instruction does not issue until the registers it
  reads are ready (ALU latency, SFU latency, or the memory latency returned
  by the shared L1/L2/DRAM hierarchy);
* **shared-memory** accesses with bank-conflict serialisation, and global
  accesses coalesced into 128-byte transactions (write-through,
  write-no-allocate L1, as configured for Fermi in the paper);
* **barriers** that stall every warp until the whole block arrives.

Branches must be warp-uniform (the nine evaluated kernels use predication
for lane-divergent behaviour), which matches how the hand-written baseline
kernels are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.config.system import SystemConfig, default_system_config
from repro.errors import GpgpuExecutionError
from repro.gpgpu.isa import Imm, Instruction, Op, Operand, Pred, Reg, Special
from repro.gpgpu.program import SimtProgram
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.memory.request import AccessType
from repro.sim.stats import ExecutionStats

__all__ = ["FermiResult", "FermiSimulator", "run_fermi"]


@dataclass
class FermiResult:
    """Outcome of one SIMT kernel execution."""

    cycles: int
    stats: ExecutionStats
    memory: MemoryImage
    hierarchy: MemoryHierarchy

    def array(self, name: str) -> np.ndarray:
        return self.memory.array(name)

    def counters(self) -> dict[str, int | float]:
        merged = dict(self.stats.as_dict())
        merged.update(self.hierarchy.stats().flat())
        return merged


@dataclass
class _Warp:
    """Mutable per-warp execution state."""

    warp_id: int
    lanes: np.ndarray  # linear thread IDs covered by this warp
    pc: int = 0
    done: bool = False
    at_barrier: bool = False
    next_free: int = 0
    reg_ready: dict[int, int] = field(default_factory=dict)
    pred_ready: dict[int, int] = field(default_factory=dict)


class FermiSimulator:
    """Executes a :class:`SimtProgram` on the Fermi-like SM model."""

    def __init__(
        self,
        program: SimtProgram,
        inputs: Mapping[str, np.ndarray] | None = None,
        config: SystemConfig | None = None,
        max_cycles: int = 20_000_000,
    ) -> None:
        self.program = program
        self.config = config or default_system_config()
        self.fermi = self.config.fermi
        self.max_cycles = max_cycles

        self.num_threads = program.num_threads
        self.memory = MemoryImage(program.arrays)
        if inputs:
            self.memory.initialise(dict(inputs))
        self.hierarchy = MemoryHierarchy(
            self.config.memory, l1_write_through=self.fermi.l1_write_through
        )
        self.stats = ExecutionStats(threads=self.num_threads)

        self.registers = np.zeros((max(1, program.num_registers), self.num_threads))
        self.predicates = np.zeros(
            (max(1, program.num_predicates), self.num_threads), dtype=bool
        )
        self._warps = self._build_warps()
        self._coords = np.array(
            [program.geometry.unlinearize(t) for t in range(self.num_threads)]
        )
        # Execution-pipe occupancy: a warp instruction is dispatched over the
        # SM's execution units of its class (32 CUDA cores, 16 LD/ST units,
        # 4 SFUs), which bounds per-class instruction throughput.
        self._pipe_free: dict[str, int] = {}

    # ------------------------------------------------------------------ setup
    def _build_warps(self) -> list[_Warp]:
        warp_size = self.fermi.warp_size
        warps = []
        for start in range(0, self.num_threads, warp_size):
            lanes = np.arange(start, min(start + warp_size, self.num_threads))
            warps.append(_Warp(warp_id=len(warps), lanes=lanes))
        if len(warps) > self.fermi.max_resident_warps:
            raise GpgpuExecutionError(
                f"kernel needs {len(warps)} warps, the SM holds "
                f"{self.fermi.max_resident_warps}"
            )
        return warps

    # ------------------------------------------------------------------ driver
    def run(self) -> FermiResult:
        cycle = 0
        rr_start = 0
        while not all(w.done for w in self._warps):
            if cycle > self.max_cycles:
                raise GpgpuExecutionError(
                    f"SIMT kernel '{self.program.name}' exceeded {self.max_cycles} cycles"
                )
            self._maybe_release_barrier(cycle)
            issued = 0
            issued_warps: set[int] = set()
            order = [
                self._warps[(rr_start + i) % len(self._warps)]
                for i in range(len(self._warps))
            ]
            for warp in order:
                if issued >= self.fermi.schedulers * self.fermi.issue_width_per_scheduler:
                    break
                if warp.warp_id in issued_warps:
                    continue
                if self._eligible(warp, cycle):
                    self._issue(warp, cycle)
                    issued += 1
                    issued_warps.add(warp.warp_id)
            rr_start += 1
            if issued == 0:
                cycle = self._next_interesting_cycle(cycle)
            else:
                cycle += 1

        self.stats.cycles = cycle
        self.stats.extra["engine"] = "fermi"
        self.stats.extra.setdefault("cores", 1)
        return FermiResult(
            cycles=cycle, stats=self.stats, memory=self.memory, hierarchy=self.hierarchy
        )

    def _next_interesting_cycle(self, cycle: int) -> int:
        """Skip idle cycles directly to the next scoreboard/barrier event."""
        candidates = []
        for warp in self._warps:
            if warp.done or warp.at_barrier:
                continue
            candidates.append(warp.next_free)
            instr = self.program.instructions[warp.pc]
            candidates.append(self._pipe_free.get(instr.latency_class, 0))
            for operand in instr.reads:
                if isinstance(operand, Reg):
                    candidates.append(warp.reg_ready.get(operand.index, 0))
                elif isinstance(operand, Pred):
                    candidates.append(warp.pred_ready.get(operand.index, 0))
        future = [c for c in candidates if c > cycle]
        if not future:
            return cycle + 1
        return min(future)

    # -------------------------------------------------------------- scheduling
    def _eligible(self, warp: _Warp, cycle: int) -> bool:
        if warp.done or warp.at_barrier or warp.next_free > cycle:
            return False
        instr = self.program.instructions[warp.pc]
        if self._pipe_free.get(instr.latency_class, 0) > cycle:
            return False
        for operand in instr.reads:
            if isinstance(operand, Reg) and warp.reg_ready.get(operand.index, 0) > cycle:
                return False
            if isinstance(operand, Pred) and warp.pred_ready.get(operand.index, 0) > cycle:
                return False
        return True

    def _maybe_release_barrier(self, cycle: int) -> None:
        active = [w for w in self._warps if not w.done]
        if active and all(w.at_barrier for w in active):
            for warp in active:
                warp.at_barrier = False
                warp.next_free = cycle + 1

    # ------------------------------------------------------------------- issue
    def _issue(self, warp: _Warp, cycle: int) -> None:
        instr = self.program.instructions[warp.pc]
        warp.pc += 1
        warp.next_free = cycle + 1
        dispatch = self.fermi.dispatch_cycles(instr.latency_class)
        self._pipe_free[instr.latency_class] = cycle + dispatch
        self.stats.instructions_issued += 1

        mask = self._guard_mask(warp, instr)
        active_lanes = int(mask.sum())
        self.stats.instructions_per_lane += active_lanes
        self.stats.register_reads += active_lanes * sum(
            1 for s in instr.srcs if isinstance(s, (Reg, Pred))
        )
        if instr.dst is not None:
            self.stats.register_writes += active_lanes

        op = instr.op
        if op is Op.EXIT:
            warp.done = True
            return
        if op is Op.BAR_SYNC:
            warp.at_barrier = True
            self.stats.barrier_arrivals += len(warp.lanes)
            return
        if op is Op.BRA:
            self._execute_branch(warp, instr, mask)
            return
        if instr.is_memory:
            self._execute_memory(warp, instr, mask, cycle)
            return
        self._execute_alu(warp, instr, mask, cycle, active_lanes)

    # ---------------------------------------------------------------- operands
    def _guard_mask(self, warp: _Warp, instr: Instruction) -> np.ndarray:
        mask = np.ones(len(warp.lanes), dtype=bool)
        if instr.guard is not None:
            values = self.predicates[instr.guard.index, warp.lanes]
            mask = ~values if instr.guard_negated else values.copy()
        return mask

    def _operand(self, warp: _Warp, operand: Operand) -> np.ndarray:
        lanes = warp.lanes
        if isinstance(operand, Reg):
            return self.registers[operand.index, lanes]
        if isinstance(operand, Pred):
            return self.predicates[operand.index, lanes].astype(float)
        if isinstance(operand, Imm):
            return np.full(len(lanes), float(operand.value))
        if isinstance(operand, Special):
            dims = self.program.geometry.block_dim + (1, 1)
            table = {
                Special.TID_X: self._coords[lanes, 0],
                Special.TID_Y: self._coords[lanes, 1],
                Special.TID_Z: self._coords[lanes, 2],
                Special.TID_LINEAR: lanes,
                Special.NTID_X: np.full(len(lanes), dims[0]),
                Special.NTID_Y: np.full(len(lanes), dims[1]),
                Special.NTID_Z: np.full(len(lanes), dims[2]),
            }
            return np.asarray(table[operand], dtype=float)
        raise GpgpuExecutionError(f"unknown operand {operand!r}")

    def _writeback(
        self, warp: _Warp, dst: Reg | Pred, values: np.ndarray, mask: np.ndarray, ready: int
    ) -> None:
        lanes = warp.lanes[mask]
        if isinstance(dst, Reg):
            self.registers[dst.index, lanes] = values[mask]
            warp.reg_ready[dst.index] = ready
        else:
            self.predicates[dst.index, lanes] = values[mask].astype(bool)
            warp.pred_ready[dst.index] = ready

    # --------------------------------------------------------------------- ALU
    def _execute_alu(
        self, warp: _Warp, instr: Instruction, mask: np.ndarray, cycle: int, active: int
    ) -> None:
        op = instr.op
        srcs = [self._operand(warp, s) for s in instr.srcs]
        if instr.latency_class == "sfu":
            latency = self.fermi.sfu_latency
            self.stats.special_ops += active
        else:
            latency = self.fermi.alu_latency
            self.stats.alu_ops += active

        values = self._alu_result(op, srcs)
        if instr.dst is not None:
            self._writeback(warp, instr.dst, values, mask, cycle + latency)

    def _alu_result(self, op: Op, srcs: list[np.ndarray]) -> np.ndarray:
        a = srcs[0] if srcs else None
        b = srcs[1] if len(srcs) > 1 else None
        c = srcs[2] if len(srcs) > 2 else None
        if op is Op.MOV:
            return a.copy()
        if op is Op.ADD:
            return a + b
        if op is Op.SUB:
            return a - b
        if op is Op.MUL:
            return a * b
        if op is Op.DIV:
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(b != 0, a / np.where(b == 0, 1, b), np.inf)
        if op is Op.MOD:
            return np.where(b != 0, np.fmod(a, np.where(b == 0, 1, b)), 0.0)
        if op is Op.MIN:
            return np.minimum(a, b)
        if op is Op.MAX:
            return np.maximum(a, b)
        if op in (Op.FMA, Op.MAD):
            return a * b + c
        if op is Op.NEG:
            return -a
        if op is Op.ABS:
            return np.abs(a)
        if op is Op.AND:
            return (a.astype(np.int64) & b.astype(np.int64)).astype(float)
        if op is Op.OR:
            return (a.astype(np.int64) | b.astype(np.int64)).astype(float)
        if op is Op.XOR:
            return (a.astype(np.int64) ^ b.astype(np.int64)).astype(float)
        if op is Op.SHL:
            return (a.astype(np.int64) << b.astype(np.int64)).astype(float)
        if op is Op.SHR:
            return (a.astype(np.int64) >> b.astype(np.int64)).astype(float)
        if op is Op.SQRT:
            return np.sqrt(np.maximum(a, 0.0))
        if op is Op.RSQRT:
            return 1.0 / np.sqrt(np.maximum(a, 1e-30))
        if op is Op.EXP:
            return np.exp(a)
        if op is Op.LOG:
            return np.log(np.maximum(a, 1e-30))
        if op is Op.RCP:
            return np.where(a != 0, 1.0 / np.where(a == 0, 1, a), np.inf)
        if op is Op.SETP_LT:
            return (a < b).astype(float)
        if op is Op.SETP_LE:
            return (a <= b).astype(float)
        if op is Op.SETP_GT:
            return (a > b).astype(float)
        if op is Op.SETP_GE:
            return (a >= b).astype(float)
        if op is Op.SETP_EQ:
            return (a == b).astype(float)
        if op is Op.SETP_NE:
            return (a != b).astype(float)
        if op is Op.PAND:
            return ((a != 0) & (b != 0)).astype(float)
        if op is Op.POR:
            return ((a != 0) | (b != 0)).astype(float)
        if op is Op.PNOT:
            return (a == 0).astype(float)
        if op is Op.SEL:
            return np.where(a != 0, b, c)
        raise GpgpuExecutionError(f"unhandled ALU opcode {op.value}")

    # ------------------------------------------------------------------ memory
    def _execute_memory(
        self, warp: _Warp, instr: Instruction, mask: np.ndarray, cycle: int
    ) -> None:
        op = instr.op
        spec = self.program.arrays.get(instr.array)
        indices = self._operand(warp, instr.srcs[0]).astype(np.int64)
        lanes = warp.lanes

        if op in (Op.LD_SHARED, Op.ST_SHARED):
            addresses = [
                spec.base_address + int(idx) * spec.elem_bytes
                for idx, active in zip(indices, mask)
                if active
            ]
            complete = self.hierarchy.scratch_access_group(
                addresses, op is Op.ST_SHARED, cycle
            )
            if op is Op.ST_SHARED:
                values = self._operand(warp, instr.srcs[1])
                for idx, value, active in zip(indices, values, mask):
                    if active:
                        self.memory.store(instr.array, int(idx), float(value))
                self.stats.scratch_stores += int(mask.sum())
            else:
                loaded = np.zeros(len(lanes))
                for i, (idx, active) in enumerate(zip(indices, mask)):
                    if active:
                        loaded[i] = self.memory.load(instr.array, int(idx))
                self.stats.scratch_loads += int(mask.sum())
                self._writeback(warp, instr.dst, loaded, mask, complete)
            return

        # Global memory: coalesce the active lanes into line transactions.
        addresses = [
            spec.base_address + int(idx) * spec.elem_bytes if active else None
            for idx, active in zip(indices, mask)
        ]
        access = AccessType.STORE if op is Op.ST_GLOBAL else AccessType.LOAD
        complete, transactions = self.hierarchy.access_group(addresses, access, cycle)
        self.stats.extra["global_transactions"] = (
            self.stats.extra.get("global_transactions", 0) + transactions
        )
        if op is Op.ST_GLOBAL:
            values = self._operand(warp, instr.srcs[1])
            for idx, value, active in zip(indices, values, mask):
                if active:
                    self.memory.store(instr.array, int(idx), float(value))
            self.stats.global_stores += int(mask.sum())
        else:
            loaded = np.zeros(len(lanes))
            for i, (idx, active) in enumerate(zip(indices, mask)):
                if active:
                    loaded[i] = self.memory.load(instr.array, int(idx))
            self.stats.global_loads += int(mask.sum())
            self._writeback(warp, instr.dst, loaded, mask, complete)

    # ----------------------------------------------------------------- control
    def _execute_branch(self, warp: _Warp, instr: Instruction, mask: np.ndarray) -> None:
        taken_mask = mask
        if instr.guard is None:
            taken = True
        else:
            values = taken_mask
            if not (values.all() or (~values).all()):
                raise GpgpuExecutionError(
                    f"divergent branch at pc {warp.pc - 1} in '{self.program.name}'; "
                    "baseline kernels must use predication for lane-divergent control"
                )
            taken = bool(values.all())
        if taken:
            warp.pc = self.program.labels[instr.target]


def run_fermi(
    program: SimtProgram,
    inputs: Mapping[str, np.ndarray] | None = None,
    config: SystemConfig | None = None,
) -> FermiResult:
    """Convenience wrapper: run ``program`` on the Fermi baseline model."""
    return FermiSimulator(program, inputs=inputs, config=config).run()
