"""Shared-memory scratchpad timing model.

The scratchpad is the structure the paper is trying to avoid: a banked
SRAM used by CUDA-style shared memory (``__shared__``) and by the plain
MT-CGRA baseline for inter-thread communication.  The model charges a
fixed access latency, serialises accesses that hit the same bank in the
same cycle (bank conflicts) and counts every access so the power model can
charge scratchpad energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config.system import ScratchpadConfig
from repro.errors import MemoryModelError

__all__ = ["ScratchpadStats", "Scratchpad"]


@dataclass
class ScratchpadStats:
    """Event counters of the scratchpad."""

    reads: int = 0
    writes: int = 0
    bank_conflicts: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bank_conflicts": self.bank_conflicts,
        }


class Scratchpad:
    """A banked shared-memory scratchpad."""

    def __init__(self, config: ScratchpadConfig, word_bytes: int = 4) -> None:
        config.validate()
        if word_bytes <= 0:
            raise MemoryModelError("word_bytes must be positive")
        self.config = config
        self.word_bytes = word_bytes
        self.stats = ScratchpadStats()
        self._bank_free_at = [0] * config.banks

    def bank_of(self, address: int) -> int:
        return (address // self.word_bytes) % self.config.banks

    def access(self, address: int, is_write: bool, cycle: int) -> int:
        """One scalar access; returns the absolute completion cycle."""
        if cycle < 0:
            raise MemoryModelError("access cycle must be non-negative")
        bank = self.bank_of(address)
        start = max(cycle, self._bank_free_at[bank])
        if start > cycle:
            self.stats.bank_conflicts += 1
        self._bank_free_at[bank] = start + self.config.bank_conflict_penalty
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return start + self.config.access_latency

    def access_group(self, addresses: Sequence[int], is_write: bool, cycle: int) -> int:
        """A warp-wide access: one address per active lane, issued together.

        Returns the completion cycle of the slowest lane.  Lanes touching
        the same bank are serialised (the classic shared-memory bank
        conflict), lanes touching the same *word* are broadcast and count
        as a single access.
        """
        if not addresses:
            return cycle + self.config.access_latency
        unique_words = sorted({int(a) // self.word_bytes for a in addresses})
        complete = cycle
        for word in unique_words:
            complete = max(complete, self.access(word * self.word_bytes, is_write, cycle))
        return complete

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scratchpad(banks={self.config.banks}, accesses={self.stats.accesses})"
