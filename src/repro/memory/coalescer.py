"""Memory-access coalescing.

A warp (Fermi) or a burst of CGRA load/store tokens touching consecutive
addresses should not generate one DRAM transaction per element.  The
coalescer groups scalar accesses into line-sized transactions exactly the
way the Fermi memory pipeline does: accesses falling in the same
``line_bytes``-aligned segment become one transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Transaction", "coalesce"]


@dataclass(frozen=True)
class Transaction:
    """One line-sized memory transaction produced by the coalescer."""

    line_address: int
    size: int
    lanes: tuple[int, ...]

    @property
    def num_lanes(self) -> int:
        return len(self.lanes)


def coalesce(addresses: Sequence[int | None], line_bytes: int = 128) -> list[Transaction]:
    """Group per-lane byte addresses into line transactions.

    ``addresses`` holds one byte address per lane; ``None`` marks an
    inactive lane.  The result is ordered by line address, and each
    transaction records which lanes it serves (used for statistics and for
    computing per-lane completion times).
    """
    if line_bytes <= 0:
        raise ValueError("line_bytes must be positive")
    grouped: dict[int, list[int]] = {}
    for lane, address in enumerate(addresses):
        if address is None:
            continue
        line = int(address) - (int(address) % line_bytes)
        grouped.setdefault(line, []).append(lane)
    return [
        Transaction(line_address=line, size=line_bytes, lanes=tuple(lanes))
        for line, lanes in sorted(grouped.items())
    ]


def coalescing_efficiency(addresses: Iterable[int | None], line_bytes: int = 128) -> float:
    """Fraction of the ideal (1 transaction) achieved: ``1/num_transactions``.

    Returns 1.0 for an empty or fully-inactive access.
    """
    transactions = coalesce(list(addresses), line_bytes)
    if not transactions:
        return 1.0
    return 1.0 / len(transactions)
