"""Memory hierarchy models: caches, DRAM, scratchpad, coalescer, image."""

from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.coalescer import Transaction, coalesce, coalescing_efficiency
from repro.memory.dram import DramModel, DramStats
from repro.memory.hierarchy import HierarchyStats, MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.memory.request import AccessResult, AccessType, HitLevel, MemoryRequest
from repro.memory.scratchpad import Scratchpad, ScratchpadStats
from repro.memory.shared_dram import SharedDRAM, SharedDramPort
from repro.memory.tagcore import CacheGeometry, LruTagStore, TagEntry

__all__ = [
    "AccessResult",
    "AccessType",
    "CacheGeometry",
    "CacheStats",
    "DramModel",
    "DramStats",
    "HierarchyStats",
    "HitLevel",
    "LruTagStore",
    "MemoryHierarchy",
    "MemoryImage",
    "MemoryRequest",
    "Scratchpad",
    "ScratchpadStats",
    "SetAssociativeCache",
    "SharedDRAM",
    "SharedDramPort",
    "TagEntry",
    "Transaction",
    "coalesce",
    "coalescing_efficiency",
]
