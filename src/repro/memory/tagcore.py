"""Shared set-associative tag/set/victim core for both simulation engines.

The event-driven engine (:class:`repro.memory.cache.SetAssociativeCache`)
and the wave-batched engine's analytic cache model
(:mod:`repro.sim.analytic_cache`) must classify the same line-address
stream identically — the cross-engine fidelity contract is *exact* L1/L2
miss-count equality on order-stable traces.  That only holds if both
engines share one implementation of the address math and the LRU
replacement decision, which is what this module provides:

* :class:`CacheGeometry` — line/set/tag address arithmetic written with
  plain arithmetic operators so the same methods work on Python ints
  (event engine, one access at a time) and on NumPy arrays (batched
  engine, one wave of accesses at a time);
* :class:`LruTagStore` — the tag array of one cache level with LRU
  replacement.  Entries carry the full line address (not just the tag),
  so a victim's writeback goes to the victim's *actual* address — the
  previous tag-only reconstruction dropped the set bits and aimed every
  writeback at set 0.

Timing, banks, MSHRs and statistics deliberately stay out of this module:
the event engine keeps its cycle-stamped models in ``memory/cache.py``
and the batched engine keeps its analytic ones in ``sim/analytic_cache.py``;
both delegate the "which line, which set, hit or miss, which victim"
questions here.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.config.system import CacheConfig

__all__ = ["CacheGeometry", "LruTagStore", "TagEntry"]


class CacheGeometry:
    """Address arithmetic of a set-associative level (scalar and vector).

    Every method uses only ``//``, ``%`` and ``*``, so ``address`` may be
    a Python int or a NumPy integer array; the result has the same type.
    """

    __slots__ = ("line_bytes", "num_sets", "ways")

    def __init__(self, line_bytes: int, num_sets: int, ways: int) -> None:
        self.line_bytes = int(line_bytes)
        self.num_sets = int(num_sets)
        self.ways = int(ways)

    @classmethod
    def from_config(cls, config: CacheConfig) -> "CacheGeometry":
        return cls(config.line_bytes, config.num_sets, config.ways)

    def line_address(self, address):
        """First byte address of the line holding ``address``."""
        return address - (address % self.line_bytes)

    def line_index(self, address):
        """Global line number (line address / line size)."""
        return address // self.line_bytes

    def set_index(self, line_addr):
        """Which set a line address maps to."""
        return (line_addr // self.line_bytes) % self.num_sets

    def tag_of(self, line_addr):
        """The tag stored for a line address."""
        return line_addr // (self.line_bytes * self.num_sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheGeometry(line_bytes={self.line_bytes}, "
            f"num_sets={self.num_sets}, ways={self.ways})"
        )


class TagEntry:
    """One resident line: its full line address and its dirty bit."""

    __slots__ = ("line_addr", "dirty")

    def __init__(self, line_addr: int, dirty: bool) -> None:
        self.line_addr = line_addr
        self.dirty = dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TagEntry(line_addr={self.line_addr:#x}, dirty={self.dirty})"


class LruTagStore:
    """Tag array of one set-associative LRU cache level.

    Each set is an MRU-ordered list of :class:`TagEntry` (least recently
    used first), which makes the LRU victim choice the list head and a
    "touch" a move-to-back — exactly the ordering the event engine's
    access-counter bookkeeping produced, without the counter.
    """

    __slots__ = ("geometry", "_sets")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: list[list[TagEntry]] = [[] for _ in range(geometry.num_sets)]

    @classmethod
    def from_config(cls, config: CacheConfig) -> "LruTagStore":
        return cls(CacheGeometry.from_config(config))

    # ------------------------------------------------------------------ access
    def probe(self, line_addr: int) -> Optional[TagEntry]:
        """Return the resident entry for ``line_addr`` without touching LRU."""
        for entry in self._sets[self.geometry.set_index(line_addr)]:
            if entry.line_addr == line_addr:
                return entry
        return None

    def touch(self, line_addr: int) -> Optional[TagEntry]:
        """Mark ``line_addr`` most recently used; return its entry (or None)."""
        cset = self._sets[self.geometry.set_index(line_addr)]
        for position, entry in enumerate(cset):
            if entry.line_addr == line_addr:
                if position != len(cset) - 1:
                    del cset[position]
                    cset.append(entry)
                return entry
        return None

    def install(self, line_addr: int, dirty: bool) -> Optional[TagEntry]:
        """Fill ``line_addr`` as MRU; return the evicted entry if the set
        was full (the caller decides what a dirty eviction costs)."""
        cset = self._sets[self.geometry.set_index(line_addr)]
        victim = None
        if len(cset) >= self.geometry.ways:
            victim = cset.pop(0)
        cset.append(TagEntry(line_addr, dirty))
        return victim

    # ----------------------------------------------------------------- queries
    def contains(self, address: int) -> bool:
        return self.probe(self.geometry.line_address(address)) is not None

    def entries(self) -> Iterator[TagEntry]:
        for cset in self._sets:
            yield from cset

    def resident_lines(self) -> int:
        return sum(len(cset) for cset in self._sets)

    def flush(self) -> int:
        """Drop every line; return how many were dirty."""
        dirty = sum(1 for entry in self.entries() if entry.dirty)
        for cset in self._sets:
            cset.clear()
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LruTagStore({self.geometry!r}, resident={self.resident_lines()})"
