"""Shared set-associative tag/set/victim core for both simulation engines.

The event-driven engine (:class:`repro.memory.cache.SetAssociativeCache`)
and the wave-batched engine's analytic cache model
(:mod:`repro.sim.analytic_cache`) must classify the same line-address
stream identically — the cross-engine fidelity contract is *exact* L1/L2
miss-count equality on order-stable traces.  That only holds if both
engines share one implementation of the address math and the LRU
replacement decision, which is what this module provides:

* :class:`CacheGeometry` — line/set/tag address arithmetic written with
  plain arithmetic operators so the same methods work on Python ints
  (event engine, one access at a time) and on NumPy arrays (batched
  engine, one wave of accesses at a time);
* :class:`LruTagStore` — the tag array of one cache level with LRU
  replacement.  Entries carry the full line address (not just the tag),
  so a victim's writeback goes to the victim's *actual* address — the
  previous tag-only reconstruction dropped the set bits and aimed every
  writeback at set 0.
* :class:`LruTagArray` — the vectorised twin of :class:`LruTagStore`:
  the same per-set MRU-ordered tag state held as ``(num_sets, ways)``
  NumPy arrays, replayed over a whole replay-ordered line-address stream
  at once.  Each set's LRU state is independent, so the stream is
  decomposed per set (:func:`group_spans`) and walked in synchronous
  rounds — round ``r`` advances the ``r``-th access of *every* set with
  one vector operation — after collapsing consecutive same-line runs
  (guaranteed hits under write-allocate).  Per access it reports the
  same hit/victim/victim-dirty decisions the scalar store makes.

Timing, banks, MSHRs and statistics deliberately stay out of this module:
the event engine keeps its cycle-stamped models in ``memory/cache.py``
and the batched engine keeps its analytic ones in ``sim/analytic_cache.py``;
both delegate the "which line, which set, hit or miss, which victim"
questions here.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional

import numpy as np

from repro.config.system import CacheConfig

__all__ = [
    "CacheGeometry",
    "LruTagArray",
    "LruTagStore",
    "TagEntry",
    "TagReplay",
    "group_spans",
]


def group_spans(
    keys: np.ndarray, upper_bound: "int | None" = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable-partition an access stream by an integer key (set or bank).

    Returns ``(order, starts, ends)``: ``order`` permutes the stream so
    equal keys are contiguous while preserving stream order inside each
    group, and ``keys[order][starts[g]:ends[g]]`` is the ``g``-th group.

    ``upper_bound`` (exclusive) lets callers with small keys — set and
    bank indices — promise a narrow dtype, which switches NumPy's stable
    sort to its much faster radix path.
    """
    if keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if upper_bound is not None and upper_bound <= np.iinfo(np.int16).max:
        keys = keys.astype(np.int16, copy=False)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
    ends = np.r_[starts[1:], keys.size]
    return order, starts, ends


class CacheGeometry:
    """Address arithmetic of a set-associative level (scalar and vector).

    Every method uses only ``//``, ``%`` and ``*``, so ``address`` may be
    a Python int or a NumPy integer array; the result has the same type.
    """

    __slots__ = ("line_bytes", "num_sets", "ways")

    def __init__(self, line_bytes: int, num_sets: int, ways: int) -> None:
        self.line_bytes = int(line_bytes)
        self.num_sets = int(num_sets)
        self.ways = int(ways)

    @classmethod
    def from_config(cls, config: CacheConfig) -> "CacheGeometry":
        return cls(config.line_bytes, config.num_sets, config.ways)

    def line_address(self, address):
        """First byte address of the line holding ``address``."""
        return address - (address % self.line_bytes)

    def line_index(self, address):
        """Global line number (line address / line size)."""
        return address // self.line_bytes

    def set_index(self, line_addr):
        """Which set a line address maps to."""
        return (line_addr // self.line_bytes) % self.num_sets

    def tag_of(self, line_addr):
        """The tag stored for a line address."""
        return line_addr // (self.line_bytes * self.num_sets)

    def bank_index(self, line_addr, banks: int):
        """Which of ``banks`` line-interleaved banks services a line address."""
        return (line_addr // self.line_bytes) % banks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheGeometry(line_bytes={self.line_bytes}, "
            f"num_sets={self.num_sets}, ways={self.ways})"
        )


class TagEntry:
    """One resident line: its full line address and its dirty bit."""

    __slots__ = ("line_addr", "dirty")

    def __init__(self, line_addr: int, dirty: bool) -> None:
        self.line_addr = line_addr
        self.dirty = dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TagEntry(line_addr={self.line_addr:#x}, dirty={self.dirty})"


class LruTagStore:
    """Tag array of one set-associative LRU cache level.

    Each set is an MRU-ordered list of :class:`TagEntry` (least recently
    used first), which makes the LRU victim choice the list head and a
    "touch" a move-to-back — exactly the ordering the event engine's
    access-counter bookkeeping produced, without the counter.
    """

    __slots__ = ("geometry", "_sets")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: list[list[TagEntry]] = [[] for _ in range(geometry.num_sets)]

    @classmethod
    def from_config(cls, config: CacheConfig) -> "LruTagStore":
        return cls(CacheGeometry.from_config(config))

    # ------------------------------------------------------------------ access
    def probe(self, line_addr: int) -> Optional[TagEntry]:
        """Return the resident entry for ``line_addr`` without touching LRU."""
        for entry in self._sets[self.geometry.set_index(line_addr)]:
            if entry.line_addr == line_addr:
                return entry
        return None

    def touch(self, line_addr: int) -> Optional[TagEntry]:
        """Mark ``line_addr`` most recently used; return its entry (or None)."""
        cset = self._sets[self.geometry.set_index(line_addr)]
        for position, entry in enumerate(cset):
            if entry.line_addr == line_addr:
                if position != len(cset) - 1:
                    del cset[position]
                    cset.append(entry)
                return entry
        return None

    def install(self, line_addr: int, dirty: bool) -> Optional[TagEntry]:
        """Fill ``line_addr`` as MRU; return the evicted entry if the set
        was full (the caller decides what a dirty eviction costs)."""
        cset = self._sets[self.geometry.set_index(line_addr)]
        victim = None
        if len(cset) >= self.geometry.ways:
            victim = cset.pop(0)
        cset.append(TagEntry(line_addr, dirty))
        return victim

    # ----------------------------------------------------------------- queries
    def contains(self, address: int) -> bool:
        return self.probe(self.geometry.line_address(address)) is not None

    def entries(self) -> Iterator[TagEntry]:
        for cset in self._sets:
            yield from cset

    def resident_lines(self) -> int:
        return sum(len(cset) for cset in self._sets)

    def flush(self) -> int:
        """Drop every line; return how many were dirty."""
        dirty = sum(1 for entry in self.entries() if entry.dirty)
        for cset in self._sets:
            cset.clear()
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LruTagStore({self.geometry!r}, resident={self.resident_lines()})"


class TagReplay(NamedTuple):
    """Per-access classification of one replayed line-address stream.

    ``victim_line`` is ``-1`` where an access evicted nothing; where it
    did, ``victim_dirty`` says whether the eviction owes a writeback.
    """

    hit: np.ndarray
    victim_line: np.ndarray
    victim_dirty: np.ndarray


class LruTagArray:
    """Vectorised per-set twin of :class:`LruTagStore`.

    State is ``(num_sets, ways)`` arrays ordered MRU-first per row;
    invalid ways hold line ``-1`` and stay contiguous at the LRU end, so
    an install is always "shift right, insert at column 0" and the
    victim of a full set is always column ``ways - 1`` — exactly the
    move-to-back list discipline of the scalar store, transposed.

    Unlike :class:`LruTagStore`, the write policy lives *here*: whether
    a write miss installs (write-allocate) and whether a write hit dirties
    the line (write-back) changes which accesses update LRU state, so the
    replay cannot be policy-agnostic.  The scalar walk applies the same
    policy outside the store; the equivalence is pinned by the hypothesis
    sweep in ``tests/memory/test_tagcore.py``.
    """

    __slots__ = ("geometry", "write_back", "write_allocate", "_lines", "_dirty")

    def __init__(
        self,
        geometry: CacheGeometry,
        write_back: bool = True,
        write_allocate: bool = True,
    ) -> None:
        self.geometry = geometry
        self.write_back = bool(write_back)
        self.write_allocate = bool(write_allocate)
        self._lines = np.full((geometry.num_sets, geometry.ways), -1, dtype=np.int64)
        self._dirty = np.zeros((geometry.num_sets, geometry.ways), dtype=bool)

    @classmethod
    def from_config(cls, config: CacheConfig) -> "LruTagArray":
        return cls(
            CacheGeometry.from_config(config),
            write_back=config.write_back,
            write_allocate=config.write_allocate,
        )

    # ------------------------------------------------------------------ replay
    def replay(self, line_addrs: np.ndarray, is_write: np.ndarray) -> TagReplay:
        """Classify a replay-ordered stream of (non-negative) line addresses.

        The stream is stably partitioned per set, consecutive same-line
        runs are collapsed under write-allocate (every access after the
        first is a guaranteed hit that at most dirties the line), and the
        compressed per-set streams advance in synchronous rounds: one
        vector step touches the next pending run of every set at once.
        State persists across calls, so replaying a stream in chunks is
        identical to replaying it whole.
        """
        lines = np.asarray(line_addrs, dtype=np.int64)
        writes = np.asarray(is_write, dtype=bool)
        n = lines.size
        hit = np.zeros(n, dtype=bool)
        victim_line = np.full(n, -1, dtype=np.int64)
        victim_dirty = np.zeros(n, dtype=bool)
        if n == 0:
            return TagReplay(hit, victim_line, victim_dirty)

        order, set_starts_g, _ = group_spans(
            self.geometry.set_index(lines), upper_bound=self.geometry.num_sets
        )
        g_lines = lines[order]
        g_writes = writes[order]
        set_first = np.zeros(n, dtype=bool)
        set_first[set_starts_g] = True

        if self.write_allocate:
            run_first = set_first | np.r_[True, g_lines[1:] != g_lines[:-1]]
        else:
            # Under write-no-allocate a missing write leaves the set
            # untouched, so same-line runs do not collapse.
            run_first = np.ones(n, dtype=bool)
        run_starts = np.flatnonzero(run_first)
        nruns = run_starts.size
        r_lines = g_lines[run_starts]
        r_wfirst = g_writes[run_starts]
        write_counts = np.add.reduceat(g_writes, run_starts)
        r_any_write = write_counts > 0
        r_rest_write = write_counts > r_wfirst

        # Per-set sequences of runs: seq_starts/seq_counts index into runs.
        r_setfirst = set_first[run_starts]
        seq_starts = np.flatnonzero(r_setfirst)
        seq_counts = np.r_[seq_starts[1:], nruns] - seq_starts
        seq_sets = self.geometry.set_index(r_lines[seq_starts])

        r_hit = np.zeros(nruns, dtype=bool)
        r_vline = np.full(nruns, -1, dtype=np.int64)
        r_vdirty = np.zeros(nruns, dtype=bool)

        ways = self.geometry.ways
        cols = np.arange(ways)
        state_lines, state_dirty = self._lines, self._dirty
        wb, wa = self.write_back, self.write_allocate
        for rnd in range(int(seq_counts.max())):
            live = seq_counts > rnd
            runs = seq_starts[live] + rnd
            rows = seq_sets[live]
            cur = r_lines[runs]
            cur_w = r_wfirst[runs]
            sl = state_lines[rows]
            sd = state_dirty[rows]
            eq = sl == cur[:, None]
            h = eq.any(axis=1)
            depth = np.where(h, eq.argmax(axis=1), ways - 1)
            row_idx = np.arange(rows.size)
            install = ~h if wa else ~h & ~cur_w
            lru_line = sl[:, ways - 1]
            has_victim = install & (lru_line != -1)
            r_hit[runs] = h
            r_vline[runs] = np.where(has_victim, lru_line, -1)
            r_vdirty[runs] = has_victim & sd[:, ways - 1]
            # The new MRU entry's dirty bit: on a hit the run's writes
            # dirty the old entry (write-back only); on a miss the first
            # access installs dirty under write-allocate and the rest of
            # the run are write hits.
            d_front = np.where(
                h,
                sd[row_idx, depth] | (r_any_write[runs] & wb),
                (cur_w & wa) | (r_rest_write[runs] & wb),
            )
            # Rotate columns 0..depth right by one and insert at the front.
            src = np.where(cols <= depth[:, None], cols - 1, cols)
            np.clip(src, 0, None, out=src)
            new_l = sl[row_idx[:, None], src]
            new_d = sd[row_idx[:, None], src]
            new_l[:, 0] = cur
            new_d[:, 0] = d_front
            changed = h | install
            state_lines[rows[changed]] = new_l[changed]
            state_dirty[rows[changed]] = new_d[changed]

        # Expand runs back to accesses: every non-first access of a run
        # is a guaranteed hit; victims belong to the run's first access.
        g_hit = r_hit[np.cumsum(run_first) - 1]
        g_hit[~run_first] = True
        hit[order] = g_hit
        first_orig = order[run_starts]
        victim_line[first_orig] = r_vline
        victim_dirty[first_orig] = r_vdirty
        return TagReplay(hit, victim_line, victim_dirty)

    # ----------------------------------------------------------------- queries
    def contains(self, address: int) -> bool:
        line_addr = self.geometry.line_address(int(address))
        row = self._lines[self.geometry.set_index(line_addr)]
        return bool((row == line_addr).any())

    def resident_lines(self) -> int:
        return int((self._lines != -1).sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LruTagArray({self.geometry!r}, resident={self.resident_lines()})"
