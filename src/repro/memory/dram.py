"""GDDR5-like DRAM timing model (channels x banks, Table 2 configuration).

The model is deliberately first-order: every access pays a fixed device
latency plus queueing delay on its bank, banks are interleaved on line
addresses across channels, and each access occupies its bank for
``bank_busy_cycles`` (the burst time).  This captures the two effects the
paper's evaluation depends on — DRAM bandwidth saturation under redundant
loads and the latency seen by cold misses — without modelling row-buffer
policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import DramConfig
from repro.errors import MemoryModelError

__all__ = ["DramStats", "DramModel"]


@dataclass
class DramStats:
    """Event counters of the DRAM device."""

    reads: int = 0
    writes: int = 0
    queue_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "queue_cycles": self.queue_cycles,
        }


class DramModel:
    """Banked, multi-channel DRAM with fixed access latency."""

    def __init__(self, config: DramConfig, line_bytes: int = 128) -> None:
        config.validate()
        if line_bytes <= 0:
            raise MemoryModelError("line_bytes must be positive")
        self.config = config
        self.line_bytes = line_bytes
        self.stats = DramStats()
        self._bank_free_at = [
            [0] * config.banks_per_channel for _ in range(config.channels)
        ]

    def _map(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        channel = line % self.config.channels
        bank = (line // self.config.channels) % self.config.banks_per_channel
        return channel, bank

    def access(self, address: int, is_write: bool, cycle: int) -> int:
        """Issue one line-sized access; return the absolute completion cycle."""
        if cycle < 0:
            raise MemoryModelError("access cycle must be non-negative")
        channel, bank = self._map(address)
        free_at = self._bank_free_at[channel][bank]
        start = max(cycle, free_at)
        self.stats.queue_cycles += start - cycle
        self._bank_free_at[channel][bank] = start + self.config.bank_busy_cycles
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return start + self.config.access_latency

    def busy_until(self) -> int:
        """The cycle at which the last scheduled access frees its bank."""
        return max(max(row) for row in self._bank_free_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DramModel(channels={self.config.channels}, "
            f"banks={self.config.banks_per_channel}, accesses={self.stats.accesses})"
        )
