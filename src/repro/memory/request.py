"""Memory request/response primitives shared by every timing model.

The cycle-level CGRA simulator, the eLDST unit and the Fermi SIMT core all
talk to the memory hierarchy through :class:`MemoryRequest` objects and
receive :class:`AccessResult` objects back.  Keeping these tiny and
immutable makes the memory models trivially reusable across architectures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AccessType", "MemoryRequest", "AccessResult", "HitLevel"]


class AccessType(enum.Enum):
    """Kind of memory operation."""

    LOAD = "load"
    STORE = "store"


class HitLevel(enum.Enum):
    """The level of the hierarchy that satisfied an access."""

    L1 = "l1"
    L2 = "l2"
    DRAM = "dram"
    SCRATCHPAD = "scratchpad"


@dataclass(frozen=True)
class MemoryRequest:
    """One memory access as seen by the hierarchy.

    Attributes
    ----------
    address:
        Byte address of the first byte touched.
    size:
        Number of bytes accessed (typically the element size, or a full
        coalesced transaction of up to one cache line).
    access:
        LOAD or STORE.
    issue_cycle:
        The cycle at which the requesting unit presents the request.
    requester:
        Free-form tag used only for statistics/debugging (e.g. a node
        label or ``"warp3"``).
    """

    address: int
    size: int
    access: AccessType
    issue_cycle: int
    requester: str = ""

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.issue_cycle < 0:
            raise ValueError("issue_cycle must be non-negative")


@dataclass(frozen=True)
class AccessResult:
    """Timing outcome of one memory access.

    ``complete_cycle`` is the absolute cycle at which the data (for loads)
    or the acknowledgement (for stores) is available to the requester;
    ``latency`` is the same information relative to the issue cycle.
    """

    complete_cycle: int
    hit_level: HitLevel
    latency: int

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
