"""Functional memory image: the actual values stored in simulated memory.

Timing (caches, DRAM, banks) and *contents* are deliberately separated:
the timing models in this package never hold data, while the
:class:`MemoryImage` holds one NumPy array per named kernel array and is
shared by the functional interpreter, the cycle-level CGRA simulator and
the Fermi SIMT core, so all three produce bit-identical results.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import MemoryModelError
from repro.graph.opcodes import DType
from repro.kernel.arrays import ArraySpec

__all__ = ["MemoryImage"]

_NUMPY_DTYPE = {
    DType.F32: np.float64,  # accumulate in double to avoid reference drift
    DType.I32: np.int64,
    DType.BOOL: np.bool_,
}


class MemoryImage:
    """Holds the contents of every kernel array (global and shared)."""

    def __init__(self, arrays: Iterable[ArraySpec]) -> None:
        self._specs: dict[str, ArraySpec] = {}
        self._data: dict[str, np.ndarray] = {}
        for spec in arrays:
            self._specs[spec.name] = spec
            self._data[spec.name] = np.zeros(spec.length, dtype=_NUMPY_DTYPE[spec.dtype])

    # ------------------------------------------------------------------ setup
    def set_array(self, name: str, values: np.ndarray | Iterable[float]) -> None:
        """Initialise array ``name`` with ``values`` (length must match)."""
        spec = self.spec(name)
        arr = np.asarray(values, dtype=_NUMPY_DTYPE[spec.dtype]).ravel()
        if arr.size != spec.length:
            raise MemoryModelError(
                f"array '{name}' has length {spec.length}, got {arr.size} values"
            )
        self._data[name] = arr.copy()

    def initialise(self, inputs: Mapping[str, np.ndarray | Iterable[float]]) -> None:
        """Initialise several arrays at once."""
        for name, values in inputs.items():
            self.set_array(name, values)

    # ------------------------------------------------------------------ query
    def spec(self, name: str) -> ArraySpec:
        try:
            return self._specs[name]
        except KeyError as exc:
            raise MemoryModelError(f"array '{name}' is not part of the memory image") from exc

    def array(self, name: str) -> np.ndarray:
        """Return the live backing array (mutations are visible to the image)."""
        self.spec(name)
        return self._data[name]

    def names(self) -> list[str]:
        return list(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    # ------------------------------------------------------------------ access
    def load(self, name: str, index: int) -> float | int | bool:
        """Read element ``index`` of array ``name``."""
        spec = self.spec(name)
        idx = int(index)
        if not spec.contains_index(idx):
            raise MemoryModelError(
                f"load out of bounds: {name}[{idx}] (length {spec.length})"
            )
        return self._data[name][idx].item()

    def store(self, name: str, index: int, value: float | int | bool) -> None:
        """Write ``value`` to element ``index`` of array ``name``."""
        spec = self.spec(name)
        idx = int(index)
        if not spec.contains_index(idx):
            raise MemoryModelError(
                f"store out of bounds: {name}[{idx}] (length {spec.length})"
            )
        self._data[name][idx] = value

    def address_of(self, name: str, index: int) -> int:
        """Byte address of ``name[index]`` (used by the timing models)."""
        spec = self.spec(name)
        idx = int(index)
        if not spec.contains_index(idx):
            raise MemoryModelError(
                f"address out of bounds: {name}[{idx}] (length {spec.length})"
            )
        return spec.address_of(idx)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Return a copy of every array (for result comparison)."""
        return {name: arr.copy() for name, arr in self._data.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryImage(arrays={list(self._specs)})"
