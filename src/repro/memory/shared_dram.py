"""A single DRAM device shared by every simulated core.

The multi-core sharding layer used to give each core a private
:class:`~repro.memory.dram.DramModel`, which let ``cores`` cores enjoy
``cores``-times the paper's DRAM bandwidth.  :class:`SharedDRAM` restores
the two-level model: one banked GDDR5 device whose bank-busy time is a
shared resource, accessed by the cores through per-core
:class:`SharedDramPort` objects.

Every port shares the device's bank timing state — an access issued by one
core occupies the bank for ``bank_busy_cycles`` and delays any other core
that targets the same bank — while traffic counters are kept per port, so
summing the per-core hierarchy stats still yields the total device traffic
exactly once.

Modelling note: the sharded cores are *simulated* sequentially, so a core
simulated later sees the full bank schedule left behind by earlier cores,
while the first core runs uncontended.  Total bank-busy time is conserved,
which makes the aggregate cycle count behave like a bandwidth-saturated
shared device (the effect the paper's evaluation depends on) even though
per-core queueing is first-order rather than cycle-interleaved.
"""

from __future__ import annotations

from repro.config.system import DramConfig
from repro.memory.dram import DramModel, DramStats

__all__ = ["SharedDRAM", "SharedDramPort"]


class SharedDRAM:
    """One :class:`DramModel` with shared timing state and per-core ports."""

    def __init__(self, config: DramConfig, line_bytes: int = 128) -> None:
        self.device = DramModel(config, line_bytes=line_bytes)
        self._ports: list["SharedDramPort"] = []

    @property
    def config(self) -> DramConfig:
        return self.device.config

    @property
    def stats(self) -> DramStats:
        """Aggregate counters over every port.

        Summed from the per-port stats rather than read off the device:
        the event engine drives the device through ``port().access`` (the
        two agree), but the batched engine mirrors its analytic line-model
        classification straight into its port's counters without issuing
        device accesses, and those must still show up here.
        """
        total = DramStats()
        for port in self._ports:
            total.reads += port.stats.reads
            total.writes += port.stats.writes
            total.queue_cycles += port.stats.queue_cycles
        return total

    @property
    def ports(self) -> tuple["SharedDramPort", ...]:
        return tuple(self._ports)

    def port(self) -> "SharedDramPort":
        """Open a new per-core port onto the shared device."""
        port = SharedDramPort(self)
        self._ports.append(port)
        return port

    def busy_until(self) -> int:
        return self.device.busy_until()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedDRAM(ports={len(self._ports)}, "
            f"accesses={self.device.stats.accesses})"
        )


class SharedDramPort:
    """One core's view of a :class:`SharedDRAM`.

    Exposes the same interface as :class:`DramModel` (``access``, ``stats``,
    ``busy_until``) so a :class:`~repro.memory.hierarchy.MemoryHierarchy`
    can use it as the level below its L2 slice.  Timing goes through the
    shared device — including the queueing caused by the other cores —
    while ``stats`` counts only this port's traffic.
    """

    def __init__(self, shared: SharedDRAM) -> None:
        self._shared = shared
        self.stats = DramStats()

    @property
    def config(self) -> DramConfig:
        return self._shared.config

    @property
    def line_bytes(self) -> int:
        return self._shared.device.line_bytes

    def access(self, address: int, is_write: bool, cycle: int) -> int:
        """Issue one line-sized access on the shared device."""
        device = self._shared.device
        queued_before = device.stats.queue_cycles
        complete = device.access(address, is_write, cycle)
        self.stats.queue_cycles += device.stats.queue_cycles - queued_before
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return complete

    def busy_until(self) -> int:
        return self._shared.busy_until()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedDramPort(accesses={self.stats.accesses})"
