"""Set-associative cache timing model with banks, LRU replacement and MSHRs.

The model tracks tags only (data lives in :class:`repro.memory.image.MemoryImage`).
It answers "at which cycle does this access complete, and which level
serviced it" while recording the statistics the power model needs
(hits/misses/writebacks per level).

The tag/set/victim bookkeeping itself lives in
:mod:`repro.memory.tagcore` and is shared with the batched engine's
analytic cache model, so both engines classify an identical line-address
stream identically; this module adds the event-engine specifics on top —
cycle-stamped bank contention, MSHR merge timing, and the write policies.

Two policies from the paper are supported:

* write-back + write-allocate (the CGRA cores, Table 2), and
* write-through + write-no-allocate (the Fermi baseline L1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config.system import CacheConfig
from repro.errors import MemoryModelError
from repro.memory.request import AccessType
from repro.memory.tagcore import LruTagStore

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclass
class CacheStats:
    """Event counters of one cache level."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    mshr_merges: int = 0
    bank_conflict_cycles: int = 0

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "writebacks": self.writebacks,
            "mshr_merges": self.mshr_merges,
            "bank_conflict_cycles": self.bank_conflict_cycles,
        }


class SetAssociativeCache:
    """An LRU set-associative cache level.

    Parameters
    ----------
    config:
        Geometry, latency and policy of the level.
    next_level_access:
        Callable ``(line_address, is_write, cycle) -> complete_cycle`` used
        on misses (and write-throughs / writebacks).  ``None`` models a
        cache backed by an ideal memory that responds immediately.
    """

    def __init__(
        self,
        config: CacheConfig,
        next_level_access: Optional[Callable[[int, bool, int], int]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.next_level_access = next_level_access
        self.stats = CacheStats()
        self.tags = LruTagStore.from_config(config)
        self._bank_free_at: list[int] = [0] * config.banks
        # Outstanding misses: line address -> cycle at which the fill completes.
        self._mshr: dict[int, int] = {}

    # ------------------------------------------------------------------ helpers
    def line_address(self, address: int) -> int:
        return self.tags.geometry.line_address(address)

    def _bank_index(self, line_addr: int) -> int:
        return (line_addr // self.config.line_bytes) % self.config.banks

    def _bank_ready(self, line_addr: int, cycle: int) -> int:
        """Account for bank contention; return the cycle the bank accepts us."""
        bank = self._bank_index(line_addr)
        start = max(cycle, self._bank_free_at[bank])
        self.stats.bank_conflict_cycles += start - cycle
        self._bank_free_at[bank] = start + 1
        return start

    # ------------------------------------------------------------------ access
    def access(self, address: int, access: AccessType, cycle: int) -> int:
        """Perform one access; return the absolute completion cycle."""
        if cycle < 0:
            raise MemoryModelError("access cycle must be non-negative")
        line_addr = self.line_address(address)
        start = self._bank_ready(line_addr, cycle)
        entry = self.tags.touch(line_addr)
        is_write = access is AccessType.STORE

        if entry is not None:
            # A "hit" on a line whose fill is still outstanding merges into the
            # MSHR entry and completes when the fill returns.
            outstanding = self._mshr.get(line_addr)
            pending_fill = outstanding is not None and outstanding > start
            if pending_fill:
                self.stats.mshr_merges += 1
            if is_write:
                self.stats.write_hits += 1
                if self.config.write_back:
                    entry.dirty = True
                    complete = start + self.config.hit_latency
                    return max(complete, outstanding) if pending_fill else complete
                # write-through: forward the write below
                complete = start + self.config.hit_latency
                if self.next_level_access is not None:
                    complete = max(
                        complete, self.next_level_access(line_addr, True, start)
                    )
                return complete
            self.stats.read_hits += 1
            complete = start + self.config.hit_latency
            return max(complete, outstanding) if pending_fill else complete

        # ------------------------------------------------------------- miss path
        if is_write:
            self.stats.write_misses += 1
            if not self.config.write_allocate:
                # write-no-allocate: the write goes straight to the next level.
                if self.next_level_access is not None:
                    return max(
                        start + self.config.hit_latency,
                        self.next_level_access(line_addr, True, start),
                    )
                return start + self.config.hit_latency
        else:
            self.stats.read_misses += 1

        # MSHR merge: an outstanding fill of the same line absorbs this miss.
        outstanding = self._mshr.get(line_addr)
        if outstanding is not None and outstanding > start:
            self.stats.mshr_merges += 1
            fill_complete = outstanding
        else:
            # The fill is a *read* of the next level even for a store miss
            # (read-for-ownership under write-allocate).
            fill_complete = start + self.config.hit_latency
            if self.next_level_access is not None:
                fill_complete = max(
                    fill_complete, self.next_level_access(line_addr, False, start)
                )
            self._mshr[line_addr] = fill_complete
            if len(self._mshr) > 4 * self.config.mshr_entries:
                self._prune_mshr(start)

        self._fill(line_addr, dirty=is_write and self.config.write_allocate, cycle=start)
        return fill_complete

    def _fill(self, line_addr: int, dirty: bool, cycle: int) -> None:
        victim = self.tags.install(line_addr, dirty)
        if victim is not None and victim.dirty:
            self.stats.writebacks += 1
            if self.next_level_access is not None:
                self.next_level_access(victim.line_addr, True, cycle)

    def _prune_mshr(self, cycle: int) -> None:
        self._mshr = {addr: t for addr, t in self._mshr.items() if t > cycle}

    # ------------------------------------------------------------------ queries
    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is currently resident."""
        return self.tags.contains(address)

    def flush(self) -> int:
        """Invalidate every line; return the number of dirty lines written back."""
        dirty = self.tags.flush()
        self.stats.writebacks += dirty
        self._mshr.clear()
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self.config.name}, sets={self.config.num_sets}, "
            f"ways={self.config.ways}, accesses={self.stats.accesses})"
        )
