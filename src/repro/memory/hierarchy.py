"""The assembled memory hierarchy: L1 -> L2 -> DRAM (+ scratchpad).

One :class:`MemoryHierarchy` instance is shared by a whole simulated core.
It offers scalar accesses (used by the CGRA load/store units, one token at
a time) and coalesced group accesses (used by the Fermi SIMT core, one
warp at a time), both returning absolute completion cycles.

The CGRA cores use a write-back / write-allocate L1 while the Fermi
baseline uses write-through / write-no-allocate, exactly as stated in the
paper's methodology; the policy difference is injected through the
:class:`repro.config.system.CacheConfig` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.config.system import MemorySystemConfig
from repro.errors import MemoryModelError
from repro.memory.cache import SetAssociativeCache
from repro.memory.coalescer import coalesce
from repro.memory.dram import DramModel
from repro.memory.request import AccessResult, AccessType, HitLevel
from repro.memory.scratchpad import Scratchpad

__all__ = ["MemoryHierarchy", "HierarchyStats"]


@dataclass
class HierarchyStats:
    """Aggregated counters of every level (flattened for the power model)."""

    l1: dict[str, int]
    l2: dict[str, int]
    dram: dict[str, int]
    scratchpad: dict[str, int]

    def flat(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for prefix, counters in (
            ("l1", self.l1),
            ("l2", self.l2),
            ("dram", self.dram),
            ("scratchpad", self.scratchpad),
        ):
            for key, value in counters.items():
                out[f"{prefix}_{key}"] = value
        return out


class MemoryHierarchy:
    """L1 + L2 + DRAM + scratchpad with shared timing state."""

    def __init__(
        self,
        config: MemorySystemConfig,
        l1_write_through: bool = False,
        dram: "DramModel | None" = None,
    ) -> None:
        """``dram`` may be a private :class:`DramModel` (the default) or a
        per-core :class:`~repro.memory.shared_dram.SharedDramPort` onto a
        device shared with the other cores; any object with the model's
        ``access``/``stats``/``busy_until`` interface works."""
        config.validate()
        self.config = config
        self.dram = dram if dram is not None else DramModel(
            config.dram, line_bytes=config.l2.line_bytes
        )
        self.l2 = SetAssociativeCache(config.l2, next_level_access=self.dram.access)

        def l2_access(line_addr: int, is_write: bool, cycle: int) -> int:
            # Adapt the boolean next-level protocol to the cache's
            # AccessType one: an L1 writeback (or write-through) must reach
            # L2 as a *store* — passing the bool straight through silently
            # classified every L1 writeback as an L2 read, so L2 lines
            # never turned dirty and DRAM never saw a write.
            access = AccessType.STORE if is_write else AccessType.LOAD
            return self.l2.access(line_addr, access, cycle)

        l1_config = config.l1
        if l1_write_through:
            l1_config = replace(l1_config, write_back=False, write_allocate=False)
        self.l1 = SetAssociativeCache(l1_config, next_level_access=l2_access)
        self.scratchpad = Scratchpad(config.scratchpad)

    # ----------------------------------------------------------------- scalar
    def access(
        self, address: int, access: AccessType, cycle: int, size: int = 4
    ) -> AccessResult:
        """One scalar global-memory access through L1/L2/DRAM."""
        if size <= 0:
            raise MemoryModelError("access size must be positive")
        before = (self.l1.stats.misses, self.l2.stats.misses)
        complete = self.l1.access(address, access, cycle)
        after = (self.l1.stats.misses, self.l2.stats.misses)
        if after[0] == before[0]:
            level = HitLevel.L1
        elif after[1] == before[1]:
            level = HitLevel.L2
        else:
            level = HitLevel.DRAM
        return AccessResult(
            complete_cycle=complete, hit_level=level, latency=complete - cycle
        )

    def load(self, address: int, cycle: int, size: int = 4) -> AccessResult:
        return self.access(address, AccessType.LOAD, cycle, size)

    def store(self, address: int, cycle: int, size: int = 4) -> AccessResult:
        return self.access(address, AccessType.STORE, cycle, size)

    # ------------------------------------------------------------ group access
    def access_group(
        self,
        addresses: Sequence[int | None],
        access: AccessType,
        cycle: int,
    ) -> tuple[int, int]:
        """A warp-wide coalesced access.

        Returns ``(complete_cycle, num_transactions)`` where the completion
        cycle is that of the slowest transaction.
        """
        transactions = coalesce(addresses, self.config.l1.line_bytes)
        if not transactions:
            return cycle, 0
        complete = cycle
        for txn in transactions:
            result = self.access(txn.line_address, access, cycle, size=txn.size)
            complete = max(complete, result.complete_cycle)
        return complete, len(transactions)

    # ------------------------------------------------------------- scratchpad
    def scratch_access(self, address: int, is_write: bool, cycle: int) -> int:
        """One scalar scratchpad (shared-memory) access."""
        return self.scratchpad.access(address, is_write, cycle)

    def scratch_access_group(
        self, addresses: Sequence[int], is_write: bool, cycle: int
    ) -> int:
        """A warp-wide scratchpad access with bank-conflict serialisation."""
        return self.scratchpad.access_group(addresses, is_write, cycle)

    # ----------------------------------------------------------------- queries
    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            l1=self.l1.stats.as_dict(),
            l2=self.l2.stats.as_dict(),
            dram=self.dram.stats.as_dict(),
            scratchpad=self.scratchpad.stats.as_dict(),
        )

    def dram_accesses(self) -> int:
        return self.dram.stats.accesses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryHierarchy(l1_accesses={self.l1.stats.accesses}, "
            f"l2_accesses={self.l2.stats.accesses}, dram_accesses={self.dram.stats.accesses})"
        )
