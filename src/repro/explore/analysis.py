"""Campaign analysis: Pareto frontiers, sensitivity, best configurations.

Consumes the plain point records a campaign produced (from a
:class:`~repro.explore.runner.CampaignResult` or straight out of the
cache) and renders the same plain-text tables the rest of the evaluation
pipeline uses (:func:`repro.analysis.report.format_table`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping, Sequence

from repro.analysis.report import format_table
from repro.explore.spec import CampaignSpec

__all__ = [
    "best_per_workload",
    "pareto_front",
    "render_campaign_report",
    "sensitivity_rows",
    "timing_rows",
]


def _ok_records(records: Sequence[Mapping[str, Any]]) -> list[Mapping[str, Any]]:
    return [r for r in records if r.get("status") == "ok" and r.get("result")]


def _overrides_label(record: Mapping[str, Any]) -> str:
    overrides = record["point"].get("overrides", {})
    if not overrides:
        return "(defaults)"
    return ",".join(f"{path}={value}" for path, value in sorted(overrides.items()))


def pareto_front(records: Sequence[Mapping[str, Any]]) -> list[Mapping[str, Any]]:
    """Non-dominated records under (minimise cycles, minimise energy).

    A record is on the frontier when no other record has both fewer (or
    equal) cycles and less (or equal) energy with at least one strict
    improvement.  Input records for several workloads should be split by
    the caller — cycles are only comparable within one workload.
    """
    ok = _ok_records(records)
    ranked = sorted(ok, key=lambda r: (r["result"]["cycles"], r["result"]["energy_pj"]))
    front: list[Mapping[str, Any]] = []
    best_energy = float("inf")
    last_kept: tuple[int, float] | None = None
    for record in ranked:
        point = (record["result"]["cycles"], record["result"]["energy_pj"])
        if point[1] < best_energy:
            front.append(record)
            best_energy = point[1]
            last_kept = point
        elif point == last_kept:
            # Equal in both objectives: nothing strictly dominates it, so a
            # co-optimal alternative configuration stays on the frontier.
            front.append(record)
    return front


def sensitivity_rows(
    records: Sequence[Mapping[str, Any]], path: str
) -> list[tuple[Any, int, float, float]]:
    """Mean cycles/energy per value of one swept config ``path``.

    Averaging over every other axis is the usual one-factor sensitivity
    view: it shows whether (and how steeply) the parameter matters at all
    before anyone digs into interactions.
    """
    groups: dict[Any, list[Mapping[str, Any]]] = defaultdict(list)
    for record in _ok_records(records):
        overrides = record["point"].get("overrides", {})
        if path in overrides:
            groups[overrides[path]].append(record)
    rows = []
    for value in sorted(groups):
        members = groups[value]
        mean_cycles = sum(r["result"]["cycles"] for r in members) / len(members)
        mean_energy = sum(r["result"]["energy_pj"] for r in members) / len(members)
        rows.append((value, len(members), mean_cycles, mean_energy))
    return rows


def best_per_workload(
    records: Sequence[Mapping[str, Any]],
) -> dict[str, Mapping[str, Any]]:
    """The fastest configuration of each workload (energy breaks ties)."""
    best: dict[str, Mapping[str, Any]] = {}
    for record in _ok_records(records):
        workload = record["point"]["workload"]
        current = best.get(workload)
        key = (record["result"]["cycles"], record["result"]["energy_pj"])
        if current is None or key < (
            current["result"]["cycles"],
            current["result"]["energy_pj"],
        ):
            best[workload] = record
    return best


def timing_rows(
    records: Sequence[Mapping[str, Any]],
    cached: Sequence[bool] | None = None,
) -> list[list[Any]]:
    """Wall-time and cache provenance per (workload, variant).

    ``cached`` marks, per record, whether it was served from the result
    cache (a :class:`~repro.explore.runner.CampaignResult` knows; records
    read straight out of the cache are all hits).  The wall time comes
    from each record's ``duration_s`` and the simulator share from the
    harness phase timers (``result["phases"]["simulate"]``); both are
    host-dependent provenance, deliberately kept out of the bit-for-bit
    deterministic counters.
    """
    groups: dict[tuple[str, str], list[tuple[Mapping[str, Any], bool]]] = defaultdict(list)
    for i, record in enumerate(records):
        if record.get("status") != "ok" or not record.get("result"):
            continue
        key = (record["point"]["workload"], record["point"]["variant"])
        groups[key].append((record, bool(cached[i]) if cached is not None else True))
    rows: list[list[Any]] = []
    for workload, variant in sorted(groups):
        members = groups[(workload, variant)]
        hits = sum(1 for _, was_cached in members if was_cached)
        total = sum(float(r.get("duration_s", 0.0)) for r, _ in members)
        sims = [
            float(s)
            for r, _ in members
            if (s := r["result"].get("phases", {}).get("simulate")) is not None
        ]
        mean_sim = sum(sims) / len(sims) if sims else 0.0
        rows.append(
            [
                workload,
                variant,
                len(members),
                hits,
                len(members) - hits,
                f"{total:.2f}",
                f"{mean_sim:.3f}",
            ]
        )
    return rows


def render_campaign_report(
    spec: CampaignSpec,
    records: Sequence[Mapping[str, Any]],
    cached: Sequence[bool] | None = None,
) -> str:
    """Render the full campaign report (Pareto, sensitivity, best configs)."""
    ok = _ok_records(records)
    errors = [r for r in records if r.get("status") != "ok"]
    sections = [
        f"Campaign '{spec.name}': {len(records)} points "
        f"({len(ok)} ok, {len(errors)} errors)"
    ]

    by_workload: dict[str, list[Mapping[str, Any]]] = defaultdict(list)
    for record in ok:
        by_workload[record["point"]["workload"]].append(record)

    pareto_rows = []
    for workload in sorted(by_workload):
        for record in pareto_front(by_workload[workload]):
            result = record["result"]
            pareto_rows.append(
                [
                    workload,
                    record["point"]["variant"],
                    _overrides_label(record),
                    result["counters"].get("engine", "?"),
                    result["cycles"],
                    f"{result['energy_pj'] / 1e6:.3f}",
                ]
            )
    sections.append("Pareto frontier (cycles vs energy, per workload)")
    sections.append(
        format_table(
            ["Workload", "Variant", "Config", "Engine", "Cycles", "Energy [uJ]"],
            pareto_rows,
        )
    )

    for path in spec.swept_paths():
        rows = sensitivity_rows(records, path)
        if not rows:
            continue
        sections.append(f"Sensitivity to {path} (means over all other axes)")
        sections.append(
            format_table(
                [path, "Points", "Mean cycles", "Mean energy [uJ]"],
                [
                    [value, count, f"{cycles:.1f}", f"{energy / 1e6:.3f}"]
                    for value, count, cycles, energy in rows
                ],
            )
        )

    best = best_per_workload(records)
    if best:
        sections.append("Best configuration per workload (min cycles)")
        sections.append(
            format_table(
                ["Workload", "Variant", "Config", "Cycles", "Energy [uJ]"],
                [
                    [
                        workload,
                        record["point"]["variant"],
                        _overrides_label(record),
                        record["result"]["cycles"],
                        f"{record['result']['energy_pj'] / 1e6:.3f}",
                    ]
                    for workload, record in sorted(best.items())
                ],
            )
        )

    provenance = timing_rows(records, cached)
    if provenance:
        sections.append("Point wall time and cache provenance")
        sections.append(
            format_table(
                [
                    "Workload",
                    "Variant",
                    "Points",
                    "Cached",
                    "Simulated",
                    "Wall [s]",
                    "Mean sim [s]",
                ],
                provenance,
            )
        )

    if errors:
        sections.append("Errors")
        sections.append(
            format_table(
                ["Workload", "Variant", "Config", "Error"],
                [
                    [
                        r["point"]["workload"],
                        r["point"]["variant"],
                        _overrides_label(r),
                        r.get("error", "?"),
                    ]
                    for r in errors
                ],
            )
        )

    return "\n\n".join(sections)
