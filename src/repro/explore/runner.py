"""Parallel, cached execution of exploration campaigns.

The runner takes the :class:`~repro.explore.spec.RunPoint` set of a
campaign, consults the :class:`~repro.explore.cache.ResultCache`, and
simulates only the missing points — serially for ``jobs=1``, otherwise on
a :class:`concurrent.futures.ProcessPoolExecutor`.  Workers receive plain
picklable payloads and return plain records; a point that fails (bad
parameters, deadlock, ...) produces an ``"error"`` record instead of
aborting the campaign.  Every completed record is appended to the cache
immediately, so an interrupted campaign resumes for free.

Each successful record carries the static analyzer's output alongside
the measured counters: ``result["diagnostics"]`` holds the ``RA0xx``
findings for the compiled kernel and
``result["counters"]["static_min_cycles"]`` the critical-path lower
bound, so campaign post-processing can split sharded from fallback runs
(``RA03x``) or compare measured cycles against the static bound without
re-compiling anything.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.config.system import config_digest
from repro.errors import ExplorationError
from repro.explore.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.explore.spec import CampaignSpec, RunPoint
from repro.harness.experiments import run_workload_record
from repro.obs.log import get_logger

__all__ = ["CampaignResult", "PointOutcome", "execute_point", "run_campaign"]

log = get_logger("explore")


def execute_point(payload: dict[str, Any]) -> dict[str, Any]:
    """Simulate one point from its plain-data payload (worker entry point).

    Top-level and pure so it pickles into worker processes.  Failures are
    captured into the returned record — a worker never lets an exception
    escape for an individual point.
    """
    started = time.perf_counter()
    point_meta = {
        "workload": payload["workload"],
        "variant": payload["variant"],
        "engine": payload["engine"],
        "seed": payload["seed"],
        "params": dict(payload.get("params", {})),
        "overrides": dict(payload.get("overrides", {})),
        "config_digest": config_digest(payload["config"]),
    }
    try:
        result = run_workload_record(
            payload["workload"],
            payload["variant"],
            params=payload.get("params") or None,
            seed=int(payload["seed"]),
            config=payload["config"],
            engine=payload["engine"],
        )
        status: dict[str, Any] = {"status": "ok", "result": result}
    except Exception as exc:  # noqa: BLE001 - per-point capture is the contract
        status = {
            "status": "error",
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    return {
        "point": point_meta,
        "duration_s": time.perf_counter() - started,
        **status,
    }


@dataclass(frozen=True)
class PointOutcome:
    """One campaign point together with how its record was obtained."""

    point: RunPoint
    key: str
    record: dict[str, Any]
    cached: bool

    @property
    def ok(self) -> bool:
        return self.record.get("status") == "ok"


@dataclass
class CampaignResult:
    """Everything a finished (or resumed) campaign produced."""

    spec: CampaignSpec
    outcomes: list[PointOutcome] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def misses(self) -> int:
        return self.total - self.hits

    @property
    def errors(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def records(self) -> list[dict[str, Any]]:
        """The raw per-point records, in campaign point order."""
        return [o.record for o in self.outcomes]

    def summary(self) -> str:
        return (
            f"campaign '{self.spec.name}': {self.total} points, "
            f"{self.hits} cached, {self.misses} simulated, "
            f"{len(self.errors)} errors in {self.duration_s:.2f}s"
        )


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    cache: ResultCache | None = None,
    progress: Callable[[str], None] | None = None,
    rerun_errors: bool = False,
) -> CampaignResult:
    """Run every point of ``spec`` that is not already cached.

    ``jobs=1`` runs in-process (deterministic ordering, easy debugging);
    ``jobs>1`` fans the missing points out over a process pool.  Records
    are appended to the cache the moment they complete, so killing the
    campaign loses at most the points currently in flight.

    ``rerun_errors=True`` additionally invalidates cached *error* records:
    their points are re-simulated (and the fresh record — ok or error —
    replaces the cached one, the appended line winning on the next load).
    Successful records are never invalidated.
    """
    if jobs < 1:
        raise ExplorationError("jobs must be >= 1")

    def say(line: str) -> None:
        # Progress always flows through the ``repro.explore`` logger
        # (enable with ``repro.obs.log.configure``); an explicit
        # ``progress`` callback additionally receives every line, so
        # embedding callers and tests can capture them directly.
        log.info("%s", line)
        if progress is not None:
            progress(line)

    started = time.perf_counter()

    points = spec.expand()
    keys = [point.key() for point in points]
    cache = cache if cache is not None else ResultCache(cache_dir)
    cache.load()

    def cached_ok(key: str) -> bool:
        record = cache.get(key)
        if record is None:
            return False
        return not (rerun_errors and record.get("status") != "ok")

    # Deduplicate within the campaign: identical points share one record.
    pending: dict[str, RunPoint] = {}
    for point, key in zip(points, keys):
        if not cached_ok(key) and key not in pending:
            pending[key] = point
    say(
        f"campaign '{spec.name}': {len(points)} points "
        f"({len(points) - len(pending)} cached, {len(pending)} to simulate, "
        f"jobs={jobs})"
    )

    completed = 0
    fresh: dict[str, dict[str, Any]] = {}

    def note(key: str, record: dict[str, Any], persist: bool = True) -> None:
        nonlocal completed
        completed += 1
        fresh[key] = record
        if persist:
            cache.put(key, record)
        label = pending[key].label()
        if record.get("status") == "ok":
            result = record["result"]
            phases = result.get("phases") or {}
            sim = f" sim={phases['simulate']:.2f}s" if "simulate" in phases else ""
            say(
                f"  [{completed}/{len(pending)}] {label}: "
                f"cycles={result['cycles']} "
                f"energy={result['energy_pj'] / 1e6:.2f}uJ "
                f"({record['duration_s']:.2f}s{sim})"
            )
        else:
            say(f"  [{completed}/{len(pending)}] {label}: ERROR {record.get('error')}")

    if jobs == 1 or len(pending) <= 1:
        for key, point in pending.items():
            note(key, execute_point(point.payload()))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(execute_point, point.payload()): key
                for key, point in pending.items()
            }
            for future in as_completed(futures):
                key = futures[future]
                exc = future.exception()
                if exc is not None:
                    # Backstop: the pool itself failed (worker OOM-killed,
                    # unpicklable result, ...).  Report it for this run but
                    # do NOT cache it — unlike an in-simulation error this
                    # is transient infrastructure trouble, and a cached
                    # copy would never be retried.
                    point = pending[key]
                    record = {
                        "point": {
                            "workload": point.workload,
                            "variant": point.variant,
                            "engine": point.engine,
                            "seed": point.seed,
                            "params": dict(point.params),
                            "overrides": dict(point.overrides),
                            "config_digest": config_digest(point.config_dict()),
                        },
                        "status": "error",
                        "result": None,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": "",
                        "duration_s": 0.0,
                    }
                    note(key, record, persist=False)
                else:
                    note(key, future.result())

    # A key is a "miss" only for the occurrence that simulated it; duplicate
    # points within one campaign are served by that same fresh record.
    simulated: set[str] = set()
    outcomes = []
    for point, key in zip(points, keys):
        is_miss = key in pending and key not in simulated
        if is_miss:
            simulated.add(key)
        outcomes.append(
            PointOutcome(
                point=point,
                key=key,
                record=fresh.get(key) or cache.get(key) or {},
                cached=not is_miss,
            )
        )
    result = CampaignResult(spec=spec, outcomes=outcomes, duration_s=time.perf_counter() - started)
    say(result.summary())
    return result


def campaign_status(
    spec: CampaignSpec, cache_dir: str | Path = DEFAULT_CACHE_DIR
) -> dict[str, int]:
    """How much of ``spec`` is already cached (no simulation)."""
    cache = ResultCache(cache_dir).load()
    points = spec.expand()
    cached = sum(1 for point in points if point.key() in cache)
    errors = sum(
        1
        for point in points
        if (record := cache.get(point.key())) and record.get("status") != "ok"
    )
    return {
        "points": len(points),
        "cached": cached,
        "missing": len(points) - cached,
        "errors": errors,
    }
