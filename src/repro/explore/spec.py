"""Campaign specifications for design-space exploration.

A :class:`CampaignSpec` is the declarative form of an evaluation campaign:
which workloads and graph variants to run, which RNG seeds, and — the
interesting part — a *sweep* over :class:`~repro.config.system.SystemConfig`
fields addressed by dotted paths (``token_buffer.entries``, ``grid.rows``,
``memory.dram.access_latency``, ``cores``).  :meth:`CampaignSpec.expand`
multiplies everything out into concrete, individually hashable
:class:`RunPoint` objects that the runner executes and the result cache
keys.

Sweep axes come in two flavours, mirroring the usual experiment-design
split:

* ``grid`` axes are combined as a cartesian product (every value of every
  axis against every other);
* ``zip`` axes advance in lockstep (i-th value of each axis together),
  for co-varied parameters such as ``grid.rows``/``grid.cols``.

The product of the grid combinations with the zip combinations, times
workloads x variants x engines x seeds, is the campaign's point set.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.config.system import SystemConfig, canonical_config_json, default_system_config
from repro.errors import ExplorationError, WorkloadError
from repro.harness.experiments import GRAPH_VARIANTS
from repro.sim.cycle import ENGINES
from repro.workloads.base import ARCHITECTURES
from repro.workloads.registry import get_workload, workload_names

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignSpec",
    "RunPoint",
    "apply_override",
    "load_spec",
    "resolved_base_config",
]

#: Bump when the meaning of a cached record changes (new counter semantics,
#: new key fields, ...); part of every point key, so a bump invalidates the
#: whole cache without deleting files.
#: v2: records carry ``result["outputs_digest"]`` (SHA-256 over the output
#: arrays), which the serve layer's bit-identity contract relies on.
CACHE_SCHEMA_VERSION = 2


def apply_override(config_data: dict[str, Any], path: str, value: Any) -> None:
    """Set ``path`` (dotted, e.g. ``token_buffer.entries``) in a config dict.

    Only existing leaves may be overridden — a typo in a sweep axis must
    fail loudly before any simulation time is spent.
    """
    parts = path.split(".")
    node: Any = config_data
    for i, part in enumerate(parts[:-1]):
        if not isinstance(node, dict) or part not in node:
            raise ExplorationError(
                f"config override '{path}': no such group '{'.'.join(parts[: i + 1])}'"
            )
        node = node[part]
    leaf = parts[-1]
    if not isinstance(node, dict) or leaf not in node:
        raise ExplorationError(f"config override '{path}': no such field '{leaf}'")
    if isinstance(node[leaf], dict):
        raise ExplorationError(
            f"config override '{path}' addresses a group, not a field"
        )
    node[leaf] = value


@dataclass(frozen=True)
class RunPoint:
    """One concrete (workload x variant x engine x seed x config) run.

    ``overrides`` are the dotted-path config overrides of this point, kept
    as a sorted tuple so the point is hashable and its identity is
    insertion-order independent.
    """

    workload: str
    variant: str
    engine: str = "auto"
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()
    overrides: tuple[tuple[str, Any], ...] = ()
    base_config: "SystemConfig | None" = None

    def config_dict(self) -> dict[str, Any]:
        """The point's full configuration as a validated plain dict."""
        return json.loads(_resolved_config_json(self.base_config, self.overrides))

    def config(self) -> SystemConfig:
        return SystemConfig.from_dict(self.config_dict())

    def key(self) -> str:
        """Content-addressed identity of this point (stable across processes).

        SHA-256 over the canonical JSON of everything that determines the
        simulation's outcome: the full configuration, workload name and
        parameters, graph variant, engine, input seed, and the cache
        schema version.
        """
        identity = {
            "schema": CACHE_SCHEMA_VERSION,
            "config": self.config_dict(),
            "workload": self.workload,
            # Hash the *resolved* parameters (spec overrides merged over the
            # workload's defaults): a later change to a default must miss the
            # cache, not silently serve results computed for the old value.
            "params": get_workload(self.workload).params_with_defaults(dict(self.params)),
            "variant": self.variant,
            "engine": self.engine,
            "seed": self.seed,
        }
        blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable name for progress lines and reports."""
        knobs = ",".join(f"{path}={value}" for path, value in self.overrides)
        return (
            f"{self.workload}/{self.variant}"
            + (f"[{knobs}]" if knobs else "")
            + (f" seed={self.seed}" if self.seed else "")
        )

    def payload(self) -> dict[str, Any]:
        """Plain-data form shipped to worker processes (picklable)."""
        return {
            "workload": self.workload,
            "variant": self.variant,
            "engine": self.engine,
            "seed": self.seed,
            "params": dict(self.params),
            "overrides": dict(self.overrides),
            "config": self.config_dict(),
        }


@lru_cache(maxsize=4096)
def _resolved_config_json(
    base: "SystemConfig | None", overrides: tuple[tuple[str, Any], ...]
) -> str:
    """Canonical JSON of (base merged with overrides), validated, memoised.

    Rebuilding and re-validating the nested config dataclasses costs ~1 ms;
    campaigns re-derive the same few configurations for thousands of points
    across ``run``/``status``/``report``, so this cache makes point keys
    near-free.  The cached value is a string — callers ``json.loads`` it, so
    no shared mutable state escapes.
    """
    resolved = base if base is not None else default_system_config()
    data = resolved.to_dict()
    for path, value in overrides:
        apply_override(data, path, value)
    return canonical_config_json(SystemConfig.from_dict(data).to_dict())


def _axes(
    mapping: Mapping[str, Sequence[Any]], kind: str
) -> tuple[tuple[str, tuple[Any, ...]], ...]:
    axes = []
    for path, values in mapping.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ExplorationError(
                f"sweep {kind} axis '{path}' must be a non-empty list of values"
            )
        if len(set(values)) != len(values):
            raise ExplorationError(f"sweep {kind} axis '{path}' repeats a value: {list(values)}")
        axes.append((str(path), tuple(values)))
    return tuple(axes)


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one exploration campaign."""

    name: str
    workloads: tuple[str, ...]
    variants: tuple[str, ...] = ("dmt",)
    engines: tuple[str, ...] = ("auto",)
    seeds: tuple[int, ...] = (0,)
    #: Per-workload parameter overrides, e.g. ``{"matrixMul": {"dim": 8}}``.
    params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    #: Cartesian-product axes: dotted config path -> list of values.
    grid: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    #: Lockstep axes: all must have the same length.
    zipped: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    #: Partial nested config dict merged over the Table 2 defaults before
    #: the sweep overrides are applied.
    base_config: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ExplorationError("campaign spec needs a name")
        if not self.workloads:
            raise ExplorationError("campaign spec lists no workloads")
        known = set(workload_names())
        for workload in self.workloads:
            if workload not in known:
                raise ExplorationError(
                    f"unknown workload '{workload}'; available: {', '.join(sorted(known))}"
                )
        legal_variants = set(ARCHITECTURES) | set(GRAPH_VARIANTS)
        for variant in self.variants:
            if variant not in legal_variants:
                raise ExplorationError(
                    f"unknown variant '{variant}'; expected one of {sorted(legal_variants)}"
                )
        for engine in self.engines:
            if engine not in ENGINES:
                raise ExplorationError(
                    f"unknown engine '{engine}'; expected one of {ENGINES}"
                )
        if self.zipped:
            lengths = {len(values) for _, values in self.zipped}
            if len(lengths) != 1:
                raise ExplorationError(
                    "zip sweep axes must all have the same length, got "
                    + ", ".join(f"{p}:{len(v)}" for p, v in self.zipped)
                )
        paths = [path for path, _ in self.grid] + [path for path, _ in self.zipped]
        duplicates = {path for path in paths if paths.count(path) > 1}
        if duplicates:
            raise ExplorationError(
                f"config path(s) {sorted(duplicates)} swept more than once "
                f"(a path may appear in 'grid' or 'zip', not both)"
            )
        for workload in self.params:
            if workload not in self.workloads:
                raise ExplorationError(
                    f"params given for '{workload}' which is not in the campaign"
                )
        # Parameter typos must fail here, before any simulation time is
        # spent — the same loud-early guarantee apply_override gives the
        # sweep axes (a typo'd point would otherwise be cached as a
        # permanent error record).
        for workload in self.workloads:
            try:
                get_workload(workload).params_with_defaults(dict(self.params.get(workload, {})))
            except WorkloadError as exc:
                raise ExplorationError(str(exc)) from exc

    # ------------------------------------------------------------- construction
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from its JSON form (see the module docstring)."""
        if not isinstance(data, Mapping):
            raise ExplorationError("campaign spec must be a JSON object")
        sweep = data.get("sweep", {})
        if not isinstance(sweep, Mapping):
            raise ExplorationError("'sweep' must be an object with 'grid'/'zip' keys")
        unknown = set(sweep) - {"grid", "zip"}
        if unknown:
            raise ExplorationError(f"unknown sweep key(s) {sorted(unknown)}")
        known = {
            "name",
            "workloads",
            "variants",
            "engines",
            "seeds",
            "params",
            "sweep",
            "base_config",
        }
        extra = set(data) - known
        if extra:
            raise ExplorationError(f"unknown campaign spec key(s) {sorted(extra)}")

        def string_list(field_name: str, default: tuple[str, ...]) -> tuple[str, ...]:
            values = data.get(field_name, default)
            # A bare string is iterable and would be tuple-ized into
            # characters ("unknown workload 'm'"); reject it explicitly.
            if not isinstance(values, (list, tuple)):
                raise ExplorationError(f"'{field_name}' must be a list of strings")
            return tuple(str(v) for v in values)

        params = data.get("params", {})
        if not isinstance(params, Mapping) or any(
            not isinstance(v, Mapping) for v in params.values()
        ):
            raise ExplorationError("'params' must map workload names to parameter objects")
        seeds = data.get("seeds", (0,))
        if not isinstance(seeds, (list, tuple)):
            raise ExplorationError("'seeds' must be a list of integers")
        try:
            seeds = tuple(int(s) for s in seeds)
        except (TypeError, ValueError) as exc:
            raise ExplorationError(f"'seeds' must be a list of integers: {exc}") from exc
        base_config = data.get("base_config", {})
        if not isinstance(base_config, Mapping):
            raise ExplorationError("'base_config' must be a (partial) config object")
        return cls(
            name=str(data.get("name", "")),
            workloads=string_list("workloads", ()),
            variants=string_list("variants", ("dmt",)),
            engines=string_list("engines", ("auto",)),
            seeds=seeds,
            params={str(k): dict(v) for k, v in params.items()},
            grid=_axes(dict(sweep.get("grid", {})), "grid"),
            zipped=_axes(dict(sweep.get("zip", {})), "zip"),
            base_config=dict(base_config),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise ExplorationError(f"campaign spec not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ExplorationError(f"campaign spec {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # ---------------------------------------------------------------- expansion
    def _resolved_base(self) -> SystemConfig:
        return resolved_base_config(self.base_config)

    def override_combos(self) -> list[tuple[tuple[str, Any], ...]]:
        """Every sweep combination as a sorted tuple of (path, value) pairs."""
        if self.grid:
            grid_combos = [
                tuple((path, value) for (path, _), value in zip(self.grid, values))
                for values in itertools.product(*(values for _, values in self.grid))
            ]
        else:
            grid_combos = [()]
        if self.zipped:
            zip_combos = [
                tuple((path, values[i]) for path, values in self.zipped)
                for i in range(len(self.zipped[0][1]))
            ]
        else:
            zip_combos = [()]
        combos = []
        for grid_combo in grid_combos:
            for zip_combo in zip_combos:
                combos.append(tuple(sorted(grid_combo + zip_combo)))
        return combos

    def expand(self) -> list[RunPoint]:
        """Multiply the campaign out into concrete run points."""
        base = self._resolved_base()
        points = []
        for workload in self.workloads:
            params = tuple(sorted(dict(self.params.get(workload, {})).items()))
            for variant, engine, seed, combo in itertools.product(
                self.variants, self.engines, self.seeds, self.override_combos()
            ):
                points.append(
                    RunPoint(
                        workload=workload,
                        variant=variant,
                        engine=engine,
                        seed=seed,
                        params=params,
                        overrides=combo,
                        base_config=base,
                    )
                )
        return points

    def swept_paths(self) -> tuple[str, ...]:
        """The dotted config paths this campaign varies (for sensitivity tables)."""
        return tuple(path for path, _ in self.grid) + tuple(path for path, _ in self.zipped)


def _deep_merge(dst: dict[str, Any], src: Mapping[str, Any]) -> None:
    for key, value in src.items():
        if isinstance(value, Mapping) and isinstance(dst.get(key), dict):
            _deep_merge(dst[key], value)
        else:
            dst[key] = value


def resolved_base_config(partial: Mapping[str, Any] | None) -> SystemConfig:
    """A partial nested config dict merged over the Table 2 defaults.

    The shared canonicalization step of campaign specs (``base_config``)
    and serve requests (``config``): both accept a sparse override tree
    and resolve it against :func:`default_system_config` before any
    digest is computed, so the same physical configuration always hashes
    identically regardless of which keys the caller spelled out.
    """
    data = default_system_config().to_dict()
    _deep_merge(data, dict(partial or {}))
    return SystemConfig.from_dict(data)


def load_spec(path: str | Path) -> CampaignSpec:
    """Read and validate a campaign spec from a JSON file."""
    return CampaignSpec.from_file(path)
