"""CLI for exploration campaigns: ``python -m repro.explore run|status|report``."""

from __future__ import annotations

import argparse
import sys

from repro.errors import ExplorationError
from repro.explore.analysis import render_campaign_report
from repro.explore.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.explore.runner import campaign_status, run_campaign
from repro.explore.spec import load_spec
from repro.obs.log import configure


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Run, inspect and analyse design-space exploration campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="path to the campaign spec (JSON)")
        p.add_argument(
            "--cache-dir",
            default=str(DEFAULT_CACHE_DIR),
            help="result cache directory (default: %(default)s)",
        )

    run = sub.add_parser("run", help="simulate every uncached point of a campaign")
    add_common(run)
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default: %(default)s)")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    run.add_argument(
        "--rerun-errors",
        action="store_true",
        help="invalidate cached error records and re-simulate their points",
    )

    status = sub.add_parser("status", help="show how much of a campaign is cached")
    add_common(status)

    report = sub.add_parser("report", help="render tables from cached records")
    add_common(report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    # Progress rides the repro.* logging tree (stdout, so quiet campaign
    # output stays pipeable exactly like the previous print-based CLI).
    configure(verbosity=0 if getattr(args, "quiet", False) else 1, stream=sys.stdout)
    try:
        spec = load_spec(args.spec)
        if args.command == "run":
            result = run_campaign(
                spec,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                rerun_errors=args.rerun_errors,
            )
            if args.quiet:
                print(result.summary())
            return 1 if result.errors else 0
        if args.command == "status":
            counts = campaign_status(spec, cache_dir=args.cache_dir)
            print(
                f"campaign '{spec.name}': {counts['points']} points, "
                f"{counts['cached']} cached ({counts['errors']} errors), "
                f"{counts['missing']} missing"
            )
            return 0
        # report
        cache = ResultCache(args.cache_dir).load()
        points = spec.expand()
        records = [record for p in points if (record := cache.get(p.key()))]
        missing = len(points) - len(records)
        if missing:
            print(
                f"note: {missing}/{len(points)} points are not cached yet "
                f"(run the campaign first for a complete report)",
                file=sys.stderr,
            )
        print(render_campaign_report(spec, records, cached=[True] * len(records)))
        return 0
    except ExplorationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
