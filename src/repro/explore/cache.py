"""Content-addressed JSONL result cache for exploration campaigns.

Every simulated point is stored as one JSON line under the cache
directory (default ``.explore-cache/``), keyed by the point's SHA-256
identity (:meth:`repro.explore.spec.RunPoint.key`).  Appending one line
per completed point makes the cache naturally resumable: a campaign
killed halfway leaves a valid prefix (plus at most one truncated line,
which is skipped on load), and re-running the campaign simulates only the
missing points.  Because keys are content-addressed, byte-identical specs
— and different campaigns that happen to share points — hit the same
entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.explore.spec import CACHE_SCHEMA_VERSION

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]

DEFAULT_CACHE_DIR = Path(".explore-cache")


class ResultCache:
    """Append-only JSONL store of point records, keyed by content hash."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / "points.jsonl"
        self._records: dict[str, dict[str, Any]] = {}
        self._loaded = False

    # ------------------------------------------------------------------ loading
    def load(self) -> "ResultCache":
        """Read every valid record; corrupt or truncated lines are skipped.

        Partial final lines are the expected debris of a killed campaign,
        not an error — resume must work on exactly such files.
        """
        self._records.clear()
        self._loaded = True
        if not self.path.exists():
            return self
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    not isinstance(entry, dict)
                    or entry.get("schema") != CACHE_SCHEMA_VERSION
                    or "key" not in entry
                    or "record" not in entry
                ):
                    continue
                # Last writer wins, matching append order.
                self._records[str(entry["key"])] = entry["record"]
        return self

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------ queries
    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._records

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    def get(self, key: str) -> dict[str, Any] | None:
        self._ensure_loaded()
        return self._records.get(key)

    def keys(self) -> Iterable[str]:
        self._ensure_loaded()
        return self._records.keys()

    # ------------------------------------------------------------------ writing
    def put(self, key: str, record: dict[str, Any]) -> None:
        """Persist one record (append to the JSONL, update the in-memory view)."""
        self._ensure_loaded()
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "key": key, "record": record},
            sort_keys=True,
        )
        # A campaign killed mid-write leaves an unterminated fragment;
        # start a fresh line so the new record stays parseable.
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as probe:
                probe.seek(-1, 2)
                needs_newline = probe.read(1) != b"\n"
        with self.path.open("a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(line + "\n")
        self._records[key] = record
