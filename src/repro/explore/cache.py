"""Content-addressed JSONL record store, shared by explore and serve.

Every simulated point is stored as one JSON line under the store
directory (default ``.explore-cache/``), keyed by the point's SHA-256
identity (:meth:`repro.explore.spec.RunPoint.key`).  Appending one line
per completed point makes the store naturally resumable: a campaign
killed halfway leaves a valid prefix (plus at most one truncated line,
which is skipped on load), and re-running the campaign simulates only the
missing points.  Because keys are content-addressed, byte-identical specs
— and different campaigns that happen to share points — hit the same
entries.

:class:`ResultCache` is deliberately consumer-agnostic: the explore
runner appends campaign points, and :mod:`repro.serve` uses the *same*
class (and by default the same directory) as the persistent tier of its
simulate memoisation, so a campaign run offline pre-warms the server and
served traffic back-fills future campaigns.  ``put`` is
thread/multi-process safe in the append-only sense — concurrent writers
interleave whole lines and the last appended record for a key wins on
the next :meth:`load`.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.explore.spec import CACHE_SCHEMA_VERSION

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]

DEFAULT_CACHE_DIR = Path(".explore-cache")


class ResultCache:
    """Append-only JSONL store of point records, keyed by content hash."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / "points.jsonl"
        self._records: dict[str, dict[str, Any]] = {}
        self._loaded = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ loading
    def load(self) -> "ResultCache":
        """Read every valid record; corrupt or truncated lines are skipped.

        Partial final lines are the expected debris of a killed campaign,
        not an error — resume must work on exactly such files.
        """
        self._records.clear()
        self._loaded = True
        if not self.path.exists():
            return self
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if (
                    not isinstance(entry, dict)
                    or entry.get("schema") != CACHE_SCHEMA_VERSION
                    or "key" not in entry
                    or "record" not in entry
                ):
                    continue
                # Last writer wins, matching append order.
                self._records[str(entry["key"])] = entry["record"]
        return self

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------ queries
    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._records

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    def get(self, key: str) -> dict[str, Any] | None:
        self._ensure_loaded()
        return self._records.get(key)

    def keys(self) -> Iterable[str]:
        self._ensure_loaded()
        return self._records.keys()

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Iterate ``(key, record)`` pairs of the in-memory view.

        Served characterization tables aggregate over this; the snapshot
        is taken eagerly so a concurrent ``put`` cannot invalidate the
        iterator mid-walk.
        """
        self._ensure_loaded()
        return iter(list(self._records.items()))

    # ------------------------------------------------------------------ writing
    def put(self, key: str, record: dict[str, Any]) -> None:
        """Persist one record (append to the JSONL, update the in-memory view)."""
        self._ensure_loaded()
        line = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "key": key, "record": record},
            sort_keys=True,
        )
        with self._lock:
            self.root.mkdir(parents=True, exist_ok=True)
            # A campaign killed mid-write leaves an unterminated fragment;
            # start a fresh line so the new record stays parseable.
            needs_newline = False
            if self.path.exists() and self.path.stat().st_size > 0:
                with self.path.open("rb") as probe:
                    probe.seek(-1, 2)
                    needs_newline = probe.read(1) != b"\n"
            with self.path.open("a", encoding="utf-8") as handle:
                if needs_newline:
                    handle.write("\n")
                handle.write(line + "\n")
            self._records[key] = record
