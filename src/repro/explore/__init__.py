"""Design-space exploration campaigns for the dMT-CGRA reproduction.

The paper's evaluation is a design-space story — Table 2 picks one
configuration, Figure 5 motivates the 16-entry token buffer, and the
speedup/energy results are sensitive to buffer depth, grid size and
memory timing.  This package turns those hand-run sensitivity loops into
first-class *campaigns*: a declarative JSON spec is expanded into
(workload x variant x engine x seed x config) points, executed in
parallel worker processes, cached content-addressed on disk, and analysed
into Pareto frontiers and sensitivity tables.

Command line
------------
::

    python -m repro.explore run    spec.json [--jobs N] [--cache-dir DIR] [--quiet]
    python -m repro.explore status spec.json [--cache-dir DIR]
    python -m repro.explore report spec.json [--cache-dir DIR]

``run`` simulates every point of the campaign that is not already cached
(interrupted campaigns resume for free — completed points are appended to
``.explore-cache/points.jsonl`` as they finish), ``status`` shows how much
of a campaign is cached without simulating anything, and ``report``
renders the Pareto/sensitivity/best-config tables from cached records.

Spec format
-----------
::

    {
      "name": "token-buffer-sweep",
      "workloads": ["matrixMul", "convolution", "reduce"],
      "variants": ["dmt"],
      "engines": ["auto"],
      "seeds": [0],
      "params": {"matrixMul": {"dim": 8}},
      "base_config": {"noc": {"hop_latency": 2}},
      "sweep": {
        "grid": {"token_buffer.entries": [4, 8, 16], "cores": [1, 2]},
        "zip":  {"grid.rows": [10, 12], "grid.cols": [14, 12]}
      }
    }

``sweep.grid`` axes are crossed (cartesian product), ``sweep.zip`` axes
advance in lockstep; both address :class:`~repro.config.system.SystemConfig`
fields by dotted path.  Programmatic use mirrors the CLI::

    from repro.explore import CampaignSpec, run_campaign, render_campaign_report
    spec = CampaignSpec(name="sweep", workloads=("matrixMul",),
                        grid=(("token_buffer.entries", (8, 16)),))
    result = run_campaign(spec, jobs=4)
    print(render_campaign_report(spec, result.records()))
"""

from repro.explore.analysis import (
    best_per_workload,
    pareto_front,
    render_campaign_report,
    sensitivity_rows,
)
from repro.explore.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.explore.runner import (
    CampaignResult,
    PointOutcome,
    campaign_status,
    execute_point,
    run_campaign,
)
from repro.explore.spec import (
    CACHE_SCHEMA_VERSION,
    CampaignSpec,
    RunPoint,
    apply_override,
    load_spec,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_CACHE_DIR",
    "PointOutcome",
    "ResultCache",
    "RunPoint",
    "apply_override",
    "best_per_workload",
    "campaign_status",
    "execute_point",
    "load_spec",
    "pareto_front",
    "render_campaign_report",
    "run_campaign",
    "sensitivity_rows",
]
