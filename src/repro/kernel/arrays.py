"""Named memory arrays visible to kernels.

Kernels address memory through *named arrays* (as CUDA kernels address
buffers passed as pointer arguments).  Each array lives either in global
memory (backed by the simulated L1/L2/DRAM hierarchy) or in the shared
scratchpad (used by the GPGPU and plain MT-CGRA baselines).  The array
table assigns non-overlapping byte base addresses so that the cache models
see realistic address streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelBuildError
from repro.graph.opcodes import DType

__all__ = ["MemorySpace", "ArraySpec", "ArrayTable"]


GLOBAL_BASE_ADDRESS = 0x1000
SCRATCH_BASE_ADDRESS = 0x0
ALIGNMENT = 256


class MemorySpace:
    """Address spaces a kernel array can live in."""

    GLOBAL = "global"
    SHARED = "shared"


@dataclass(frozen=True)
class ArraySpec:
    """One named kernel array."""

    name: str
    length: int
    dtype: DType
    space: str
    base_address: int
    elem_bytes: int = 4

    @property
    def size_bytes(self) -> int:
        return self.length * self.elem_bytes

    def address_of(self, index: int) -> int:
        """Byte address of element ``index`` (bounds are checked by callers)."""
        return self.base_address + int(index) * self.elem_bytes

    def contains_index(self, index: int) -> bool:
        return 0 <= int(index) < self.length


@dataclass
class ArrayTable:
    """Allocates and looks up kernel arrays."""

    _arrays: dict[str, ArraySpec] = field(default_factory=dict)
    _next_global: int = GLOBAL_BASE_ADDRESS
    _next_shared: int = SCRATCH_BASE_ADDRESS

    def declare(
        self,
        name: str,
        length: int,
        dtype: DType = DType.F32,
        space: str = MemorySpace.GLOBAL,
        elem_bytes: int = 4,
    ) -> ArraySpec:
        if name in self._arrays:
            raise KernelBuildError(f"array '{name}' is already declared")
        if length <= 0:
            raise KernelBuildError(f"array '{name}' must have positive length")
        if space not in (MemorySpace.GLOBAL, MemorySpace.SHARED):
            raise KernelBuildError(f"unknown memory space '{space}'")
        if space == MemorySpace.GLOBAL:
            base = self._next_global
            self._next_global = _align(base + length * elem_bytes, ALIGNMENT)
        else:
            base = self._next_shared
            self._next_shared = _align(base + length * elem_bytes, ALIGNMENT)
        spec = ArraySpec(
            name=name,
            length=length,
            dtype=dtype,
            space=space,
            base_address=base,
            elem_bytes=elem_bytes,
        )
        self._arrays[name] = spec
        return spec

    def get(self, name: str) -> ArraySpec:
        try:
            return self._arrays[name]
        except KeyError as exc:
            raise KernelBuildError(f"array '{name}' is not declared") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self):
        return iter(self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    def names(self) -> list[str]:
        return list(self._arrays)

    def global_arrays(self) -> list[ArraySpec]:
        return [a for a in self._arrays.values() if a.space == MemorySpace.GLOBAL]

    def shared_arrays(self) -> list[ArraySpec]:
        return [a for a in self._arrays.values() if a.space == MemorySpace.SHARED]

    def total_shared_bytes(self) -> int:
        return sum(a.size_bytes for a in self.shared_arrays())


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
