"""The kernel-builder DSL — the programming model of the paper (Table 1).

A :class:`KernelBuilder` plays the role of the CUDA front-end plus the
paper's API extensions.  Kernels are ordinary Python functions that use
the builder to emit one *static* dataflow graph; the simulators then run
that graph for every thread of the block, exactly as the MT-CGRA executes
one configured graph for a stream of threads.

The three paper primitives are provided with their original semantics:

``from_thread_or_const(var, delta, const, window=None)``
    Receive ``var`` from thread ``tid + delta`` (``delta`` may be a
    multi-dimensional offset); threads whose source falls outside the
    block or outside the transmission ``window`` receive ``const``.
    ``var`` may be a :class:`Value` or a *name* bound later with
    :meth:`tag_value` — the latter is what enables recurrences such as the
    prefix-sum example (Fig. 6), where the communicated value is defined
    in terms of the received one.

``tag_value(name, value)``
    Bind ``name`` to ``value`` so that pending ``from_thread_or_const``
    calls referencing ``name`` are connected to it.

``from_thread_or_mem(array, index, predicate, src_offset, window=None)``
    If ``predicate`` is true the thread loads ``array[index]`` itself;
    otherwise it receives the value loaded by thread ``tid + src_offset``
    (which must linearise to an earlier thread).  Maps to the eLDST unit.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import KernelBuildError
from repro.graph.dfg import DataflowGraph
from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode
from repro.graph.validate import validate_graph
from repro.kernel.arrays import ArraySpec, ArrayTable, MemorySpace
from repro.kernel.geometry import ThreadGeometry
from repro.kernel.values import Scalar, Value, ValueLike

__all__ = ["KernelBuilder"]


def _promote(a: DType, b: DType) -> DType:
    if DType.F32 in (a, b):
        return DType.F32
    if a is DType.BOOL and b is DType.BOOL:
        return DType.BOOL
    return DType.I32


class KernelBuilder:
    """Builds the dataflow graph of one SIMT kernel."""

    def __init__(self, name: str, block_dim: Sequence[int] | int) -> None:
        if isinstance(block_dim, int):
            block_dim = (block_dim,)
        self.name = name
        self.geometry = ThreadGeometry(tuple(block_dim))
        self.graph = DataflowGraph(name)
        self.arrays = ArrayTable()
        self._tagged: dict[str, Value] = {}
        self._pending_elevators: dict[str, list[Node]] = {}
        self._const_cache: dict[tuple, Node] = {}
        self._tid_cache: dict[Opcode, Node] = {}
        self._finished = False

    # ------------------------------------------------------------------ misc
    def _value(self, node: Node) -> Value:
        return Value(self, node)

    def _as_value(self, value: ValueLike, dtype: DType | None = None) -> Value:
        if isinstance(value, Value):
            if value.builder is not self:
                raise KernelBuildError("value belongs to a different kernel builder")
            return value
        if isinstance(value, float) and dtype is not None and not dtype.is_float:
            # A float literal mixed into integer arithmetic keeps its own type
            # (and promotes the operation to floating point) rather than being
            # silently truncated to the operand-hint type.
            dtype = None
        return self.const(value, dtype)

    def _check_open(self) -> None:
        if self._finished:
            raise KernelBuildError(f"kernel '{self.name}' has already been finished")

    # ------------------------------------------------------------ array decl
    def global_array(
        self, name: str, length: int, dtype: DType = DType.F32, elem_bytes: int = 4
    ) -> ArraySpec:
        """Declare a global-memory array (a kernel pointer argument)."""
        self._check_open()
        return self.arrays.declare(name, length, dtype, MemorySpace.GLOBAL, elem_bytes)

    def scratch_array(
        self, name: str, length: int, dtype: DType = DType.F32, elem_bytes: int = 4
    ) -> ArraySpec:
        """Declare a shared-memory (scratchpad) array."""
        self._check_open()
        return self.arrays.declare(name, length, dtype, MemorySpace.SHARED, elem_bytes)

    # -------------------------------------------------------------- sources
    def const(self, value: Scalar, dtype: DType | None = None) -> Value:
        """Materialise a compile-time constant."""
        self._check_open()
        if dtype is None:
            if isinstance(value, bool):
                dtype = DType.BOOL
            elif isinstance(value, float):
                dtype = DType.F32
            else:
                dtype = DType.I32
        key = (value, dtype)
        node = self._const_cache.get(key)
        if node is None:
            node = self.graph.add_node(
                Opcode.CONST, dtype, params={"value": value}, name=f"const_{value}"
            )
            self._const_cache[key] = node
        return self._value(node)

    def _tid(self, opcode: Opcode, name: str) -> Value:
        self._check_open()
        node = self._tid_cache.get(opcode)
        if node is None:
            node = self.graph.add_node(opcode, DType.I32, name=name)
            self._tid_cache[opcode] = node
        return self._value(node)

    def thread_idx_x(self) -> Value:
        """CUDA ``threadIdx.x``."""
        return self._tid(Opcode.TID_X, "tid.x")

    def thread_idx_y(self) -> Value:
        return self._tid(Opcode.TID_Y, "tid.y")

    def thread_idx_z(self) -> Value:
        return self._tid(Opcode.TID_Z, "tid.z")

    def thread_idx_linear(self) -> Value:
        """The linearised thread ID used as the dataflow token tag."""
        return self._tid(Opcode.TID_LINEAR, "tid")

    # ------------------------------------------------------------ arithmetic
    def binary(
        self,
        opcode: Opcode,
        lhs: ValueLike,
        rhs: ValueLike,
        dtype: DType | None = None,
        name: str = "",
    ) -> Value:
        self._check_open()
        a = self._as_value(lhs)
        b = self._as_value(rhs, a.dtype)
        out_dtype = dtype or _promote(a.dtype, b.dtype)
        node = self.graph.add_node(opcode, out_dtype, name=name)
        self.graph.add_edge(a.node, node, 0)
        self.graph.add_edge(b.node, node, 1)
        return self._value(node)

    def unary(
        self, opcode: Opcode, operand: ValueLike, dtype: DType | None = None, name: str = ""
    ) -> Value:
        self._check_open()
        a = self._as_value(operand)
        node = self.graph.add_node(opcode, dtype or a.dtype, name=name)
        self.graph.add_edge(a.node, node, 0)
        return self._value(node)

    def compare(self, opcode: Opcode, lhs: ValueLike, rhs: ValueLike) -> Value:
        self._check_open()
        a = self._as_value(lhs)
        b = self._as_value(rhs, a.dtype)
        node = self.graph.add_node(opcode, DType.BOOL)
        self.graph.add_edge(a.node, node, 0)
        self.graph.add_edge(b.node, node, 1)
        return self._value(node)

    def fma(self, a: ValueLike, b: ValueLike, c: ValueLike) -> Value:
        """Fused multiply-add ``a*b + c``."""
        self._check_open()
        av = self._as_value(a)
        bv = self._as_value(b, av.dtype)
        cv = self._as_value(c, av.dtype)
        dtype = _promote(_promote(av.dtype, bv.dtype), cv.dtype)
        node = self.graph.add_node(Opcode.FMA, dtype)
        self.graph.add_edge(av.node, node, 0)
        self.graph.add_edge(bv.node, node, 1)
        self.graph.add_edge(cv.node, node, 2)
        return self._value(node)

    def minimum(self, a: ValueLike, b: ValueLike) -> Value:
        return self.binary(Opcode.MIN, a, b)

    def maximum(self, a: ValueLike, b: ValueLike) -> Value:
        return self.binary(Opcode.MAX, a, b)

    def select(self, cond: ValueLike, if_true: ValueLike, if_false: ValueLike) -> Value:
        """Predicated selection (maps to a control unit)."""
        self._check_open()
        c = self._as_value(cond, DType.BOOL)
        t = self._as_value(if_true)
        f = self._as_value(if_false, t.dtype)
        node = self.graph.add_node(Opcode.SELECT, _promote(t.dtype, f.dtype))
        self.graph.add_edge(c.node, node, 0)
        self.graph.add_edge(t.node, node, 1)
        self.graph.add_edge(f.node, node, 2)
        return self._value(node)

    def sqrt(self, a: ValueLike) -> Value:
        return self.unary(Opcode.SQRT, a, DType.F32)

    def rsqrt(self, a: ValueLike) -> Value:
        return self.unary(Opcode.RSQRT, a, DType.F32)

    def exp(self, a: ValueLike) -> Value:
        return self.unary(Opcode.EXP, a, DType.F32)

    def log(self, a: ValueLike) -> Value:
        return self.unary(Opcode.LOG, a, DType.F32)

    def rcp(self, a: ValueLike) -> Value:
        return self.unary(Opcode.RCP, a, DType.F32)

    # ---------------------------------------------------------------- memory
    def _memory_node(
        self,
        opcode: Opcode,
        array: str,
        operands: list[Value],
        order: Value | None,
        dtype: DType,
    ) -> Value:
        spec = self.arrays.get(array)
        node = self.graph.add_node(
            opcode,
            dtype,
            params={"array": array, "elem_bytes": spec.elem_bytes},
            name=f"{opcode.value}_{array}",
        )
        for port, operand in enumerate(operands):
            self.graph.add_edge(operand.node, node, port)
        if order is not None:
            self.graph.add_edge(order.node, node, len(operands))
        return self._value(node)

    def load(self, array: str, index: ValueLike, order: Value | None = None) -> Value:
        """Load ``array[index]`` from global memory."""
        self._check_open()
        spec = self.arrays.get(array)
        if spec.space != MemorySpace.GLOBAL:
            raise KernelBuildError(f"'{array}' is not a global array; use scratch_load")
        idx = self._as_value(index, DType.I32)
        return self._memory_node(Opcode.LOAD, array, [idx], order, spec.dtype)

    def store(
        self, array: str, index: ValueLike, value: ValueLike, order: Value | None = None
    ) -> Value:
        """Store ``value`` to ``array[index]``; returns the store's ack token."""
        self._check_open()
        spec = self.arrays.get(array)
        if spec.space != MemorySpace.GLOBAL:
            raise KernelBuildError(f"'{array}' is not a global array; use scratch_store")
        idx = self._as_value(index, DType.I32)
        val = self._as_value(value, spec.dtype)
        return self._memory_node(Opcode.STORE, array, [idx, val], order, spec.dtype)

    def scratch_load(self, array: str, index: ValueLike, order: Value | None = None) -> Value:
        """Load from a shared-memory scratchpad array (baseline models only)."""
        self._check_open()
        spec = self.arrays.get(array)
        if spec.space != MemorySpace.SHARED:
            raise KernelBuildError(f"'{array}' is not a shared array; use load")
        idx = self._as_value(index, DType.I32)
        return self._memory_node(Opcode.SCRATCH_LOAD, array, [idx], order, spec.dtype)

    def scratch_store(
        self, array: str, index: ValueLike, value: ValueLike, order: Value | None = None
    ) -> Value:
        self._check_open()
        spec = self.arrays.get(array)
        if spec.space != MemorySpace.SHARED:
            raise KernelBuildError(f"'{array}' is not a shared array; use store")
        idx = self._as_value(index, DType.I32)
        val = self._as_value(value, spec.dtype)
        return self._memory_node(Opcode.SCRATCH_STORE, array, [idx, val], order, spec.dtype)

    def barrier(
        self, value: ValueLike, name: str = "barrier", window: int | None = None
    ) -> Value:
        """Work-group barrier: the output token is released only after every
        thread of the block has delivered its input token (used by the
        shared-memory baselines; dMT-CGRA kernels do not need it).

        ``window`` bounds the synchronisation to consecutive groups of
        ``window`` linear TIDs — the barrier twin of the transmission
        windows of Sec. 3.2.  A windowed barrier releases each group as
        soon as that group is complete, and declares to the multi-core
        partitioner that no synchronised data crosses a window boundary,
        which makes the kernel shardable at window granularity.
        """
        self._check_open()
        if window is not None and window <= 0:
            raise KernelBuildError("barrier window must be positive")
        v = self._as_value(value)
        node = self.graph.add_node(
            Opcode.BARRIER, v.dtype, params={"window": window}, name=name
        )
        self.graph.add_edge(v.node, node, 0)
        return self._value(node)

    def join(self, value: ValueLike, after: ValueLike) -> Value:
        """Order ``value`` after ``after`` (split/join unit)."""
        self._check_open()
        v = self._as_value(value)
        a = self._as_value(after)
        node = self.graph.add_node(Opcode.JOIN, v.dtype)
        self.graph.add_edge(v.node, node, 0)
        self.graph.add_edge(a.node, node, 1)
        return self._value(node)

    def output(self, name: str, value: ValueLike) -> None:
        """Expose a per-thread value as a named kernel output (for testing)."""
        self._check_open()
        v = self._as_value(value)
        node = self.graph.add_node(Opcode.OUTPUT, v.dtype, params={"name": name})
        self.graph.add_edge(v.node, node, 0)

    # --------------------------------------------- inter-thread communication
    def tag_value(self, name: str, value: ValueLike) -> Value:
        """Bind ``name`` to ``value`` (the paper's ``tagValue<var>()``)."""
        self._check_open()
        if name in self._tagged:
            raise KernelBuildError(f"variable '{name}' is already tagged")
        v = self._as_value(value)
        self._tagged[name] = v
        for node in self._pending_elevators.pop(name, []):
            self.graph.add_edge(v.node, node, 0)
        return v

    def from_thread_or_const(
        self,
        var: ValueLike | str,
        delta: int | Sequence[int],
        const: Scalar,
        window: int | None = None,
        dtype: DType | None = None,
    ) -> Value:
        """The paper's ``fromThreadOrConst<var, ΔTID, const[, win]>()``.

        ``delta`` is the source-thread offset: the executing thread receives
        the value produced by thread ``tid + delta`` (CUDA coordinates for
        multi-dimensional offsets).  Threads whose source is outside the
        block or the transmission window receive ``const`` instead.
        """
        self._check_open()
        offset = tuple(delta) if not isinstance(delta, int) else (delta,)
        linear = self.geometry.linear_offset(offset)
        if linear == 0:
            raise KernelBuildError("fromThreadOrConst delta must be non-zero")
        if window is not None and window <= 0:
            raise KernelBuildError("transmission window must be positive")
        if isinstance(var, str):
            source_value = self._tagged.get(var)
            value_dtype = dtype or (source_value.dtype if source_value else DType.F32)
        else:
            source_value = self._as_value(var)
            value_dtype = dtype or source_value.dtype
        node = self.graph.add_node(
            Opcode.ELEVATOR,
            value_dtype,
            params={
                "delta": -linear,  # hardware shift: consumer = producer + delta
                "src_offset": offset,
                "const": const,
                "window": window,
            },
            name=f"elevator_{linear:+d}",
        )
        if source_value is not None:
            self.graph.add_edge(source_value.node, node, 0)
        elif isinstance(var, str):
            self._pending_elevators.setdefault(var, []).append(node)
        return self._value(node)

    def from_thread_or_mem(
        self,
        array: str,
        index: ValueLike,
        predicate: ValueLike,
        src_offset: int | Sequence[int],
        window: int | None = None,
        order: Value | None = None,
    ) -> Value:
        """The paper's ``fromThreadOrMem<ΔTID[, win]>(address, predicate)``.

        Threads for which ``predicate`` is true issue the load themselves;
        the other threads receive the value loaded by thread
        ``tid + src_offset`` (which must be an earlier thread).
        """
        self._check_open()
        spec = self.arrays.get(array)
        if spec.space != MemorySpace.GLOBAL:
            raise KernelBuildError("fromThreadOrMem forwards global-memory values")
        offset = tuple(src_offset) if not isinstance(src_offset, int) else (src_offset,)
        linear = self.geometry.linear_offset(offset)
        if linear >= 0:
            raise KernelBuildError(
                "fromThreadOrMem source offset must reference an earlier thread "
                f"(got linear offset {linear:+d})"
            )
        if window is not None and window <= 0:
            raise KernelBuildError("transmission window must be positive")
        idx = self._as_value(index, DType.I32)
        pred = self._as_value(predicate, DType.BOOL)
        node = self.graph.add_node(
            Opcode.ELDST,
            spec.dtype,
            params={
                "array": array,
                "elem_bytes": spec.elem_bytes,
                "delta": -linear,  # forwarding distance (positive)
                "src_offset": offset,
                "window": window,
            },
            name=f"eldst_{array}",
        )
        self.graph.add_edge(idx.node, node, 0)
        self.graph.add_edge(pred.node, node, 1)
        if order is not None:
            self.graph.add_edge(order.node, node, 2)
        return self._value(node)

    # ----------------------------------------------------------------- finish
    def finish(self, validate: bool = True) -> DataflowGraph:
        """Finalise and validate the kernel graph."""
        self._check_open()
        if self._pending_elevators:
            missing = ", ".join(sorted(self._pending_elevators))
            raise KernelBuildError(
                f"fromThreadOrConst references untagged variable(s): {missing}; "
                "call tag_value() for each of them"
            )
        self.graph.metadata["block_dim"] = self.geometry.block_dim
        self.graph.metadata["num_threads"] = self.geometry.num_threads
        self.graph.metadata["arrays"] = {spec.name: spec for spec in self.arrays}
        self.graph.metadata["kernel_name"] = self.name
        if validate:
            validate_graph(self.graph)
        self._finished = True
        return self.graph
