"""Kernel programming model: CUDA-style kernels plus the Table 1 API."""

from repro.kernel.arrays import ArraySpec, ArrayTable, MemorySpace
from repro.kernel.builder import KernelBuilder
from repro.kernel.geometry import ThreadGeometry
from repro.kernel.values import Value

__all__ = [
    "ArraySpec",
    "ArrayTable",
    "MemorySpace",
    "KernelBuilder",
    "ThreadGeometry",
    "Value",
]
