"""SSA value handles returned by the kernel builder.

A :class:`Value` wraps a dataflow-graph node and supports Python operator
overloading, so kernels read close to the CUDA pseudo-code in the paper::

    result = lt_elem * kernel0 + mem_elem * kernel1 + rt_elem * kernel2
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.builder import KernelBuilder

__all__ = ["Value", "Scalar", "ValueLike"]

Scalar = Union[int, float, bool]
ValueLike = Union["Value", Scalar]


class Value:
    """Handle to the output of one dataflow node."""

    __slots__ = ("builder", "node")

    def __init__(self, builder: "KernelBuilder", node: Node) -> None:
        self.builder = builder
        self.node = node

    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def dtype(self) -> DType:
        return self.node.dtype

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.ADD, self, other)

    def __radd__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.ADD, other, self)

    def __sub__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.SUB, self, other)

    def __rsub__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.SUB, other, self)

    def __mul__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.MUL, self, other)

    def __rmul__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.MUL, other, self)

    def __truediv__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.DIV, self, other)

    def __rtruediv__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.DIV, other, self)

    def __mod__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.MOD, self, other)

    def __neg__(self) -> "Value":
        return self.builder.unary(Opcode.NEG, self)

    def __abs__(self) -> "Value":
        return self.builder.unary(Opcode.ABS, self)

    # ------------------------------------------------------------ bitwise
    def __and__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.AND, self, other)

    def __or__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.OR, self, other)

    def __xor__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.XOR, self, other)

    def __lshift__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.SHL, self, other)

    def __rshift__(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.SHR, self, other)

    # ----------------------------------------------------------- comparison
    def __lt__(self, other: ValueLike) -> "Value":
        return self.builder.compare(Opcode.LT, self, other)

    def __le__(self, other: ValueLike) -> "Value":
        return self.builder.compare(Opcode.LE, self, other)

    def __gt__(self, other: ValueLike) -> "Value":
        return self.builder.compare(Opcode.GT, self, other)

    def __ge__(self, other: ValueLike) -> "Value":
        return self.builder.compare(Opcode.GE, self, other)

    def eq(self, other: ValueLike) -> "Value":
        """Element-wise equality (``==`` is kept as Python identity)."""
        return self.builder.compare(Opcode.EQ, self, other)

    def ne(self, other: ValueLike) -> "Value":
        return self.builder.compare(Opcode.NE, self, other)

    # ------------------------------------------------------------- logical
    def logical_and(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.LAND, self, other, dtype=DType.BOOL)

    def logical_or(self, other: ValueLike) -> "Value":
        return self.builder.binary(Opcode.LOR, self, other, dtype=DType.BOOL)

    def logical_not(self) -> "Value":
        return self.builder.unary(Opcode.LNOT, self, dtype=DType.BOOL)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Value({self.node.label()}, {self.dtype.value})"
