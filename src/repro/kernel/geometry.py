"""Thread-block geometry (CUDA-style multi-dimensional thread IDs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import KernelBuildError
from repro.graph.interthread import linear_offset, linearize, unlinearize

__all__ = ["ThreadGeometry"]


@dataclass(frozen=True)
class ThreadGeometry:
    """The shape of the thread block a kernel is launched with.

    The paper evaluates one thread block per core (as one CUDA thread block
    maps to one SM / one MT-CGRA core); the geometry therefore fully
    describes the TID space visible to the inter-thread communication
    primitives.
    """

    block_dim: tuple[int, ...]

    def __post_init__(self) -> None:
        dims = tuple(int(d) for d in self.block_dim)
        if not 1 <= len(dims) <= 3:
            raise KernelBuildError("block_dim must have 1 to 3 dimensions")
        if any(d <= 0 for d in dims):
            raise KernelBuildError("block dimensions must be positive")
        object.__setattr__(self, "block_dim", dims)

    @property
    def num_threads(self) -> int:
        n = 1
        for d in self.block_dim:
            n *= d
        return n

    @property
    def dims(self) -> int:
        return len(self.block_dim)

    def linearize(self, coord: Sequence[int]) -> int:
        return linearize(coord, self.block_dim)

    def unlinearize(self, tid: int) -> tuple[int, int, int]:
        return unlinearize(tid, self.block_dim)

    def linear_offset(self, offset: Sequence[int] | int) -> int:
        return linear_offset(offset, self.block_dim)

    def coordinates(self) -> Iterator[tuple[int, int, int]]:
        """Iterate thread coordinates in linear TID order."""
        for tid in range(self.num_threads):
            yield self.unlinearize(tid)

    def contains(self, coord: Sequence[int]) -> bool:
        padded = tuple(int(v) for v in coord) + (0,) * (3 - len(tuple(coord)))
        dims = self.block_dim + (1,) * (3 - len(self.block_dim))
        return all(0 <= c < d for c, d in zip(padded, dims))
