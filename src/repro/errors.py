"""Exception hierarchy for the dMT-CGRA reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError` or :class:`KeyError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphValidationError",
    "KernelBuildError",
    "CompilationError",
    "MappingError",
    "RoutingError",
    "SimulationError",
    "DeadlockError",
    "MemoryModelError",
    "IsaError",
    "GpgpuExecutionError",
    "ConfigurationError",
    "WorkloadError",
    "ExplorationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError):
    """A system configuration value is inconsistent or out of range."""


class GraphError(ReproError):
    """Base class for dataflow-graph construction errors."""


class GraphValidationError(GraphError):
    """A dataflow graph failed structural validation."""


class KernelBuildError(ReproError):
    """The kernel-builder DSL was used incorrectly."""


class CompilationError(ReproError):
    """A compiler pass could not legalise or lower the kernel graph."""


class MappingError(CompilationError):
    """The mapper could not place the graph onto the CGRA grid."""


class RoutingError(CompilationError):
    """The mapper could not route a placed graph on the NoC."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The dataflow simulation stopped making progress before completion."""


class MemoryModelError(ReproError):
    """The memory hierarchy was configured or accessed inconsistently."""


class IsaError(ReproError):
    """A SIMT program is malformed (bad operands, undefined labels, ...)."""


class GpgpuExecutionError(ReproError):
    """The SIMT core reached an inconsistent state while executing."""


class WorkloadError(ReproError):
    """A workload was instantiated with unsupported parameters."""


class ExplorationError(ReproError):
    """A design-space exploration campaign spec or cache is inconsistent."""
