"""The dMT-CGRA compiler: passes, mapper and the compilation pipeline."""

from repro.compiler.pipeline import (
    CompiledKernel,
    CompilerOptions,
    compile_kernel,
    default_pass_pipeline,
)

__all__ = [
    "CompiledKernel",
    "CompilerOptions",
    "compile_kernel",
    "default_pass_pipeline",
]
