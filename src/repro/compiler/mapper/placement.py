"""Placement of dataflow nodes onto the physical CGRA grid.

The mapper assigns every placeable node of the (legalised) dataflow graph
to a physical unit whose class can host it (control units host elevator
nodes, LDST units host eLDST units, ...).  The objective is the total
Manhattan wire length of the graph's edges — the quantity that determines
NoC hop counts, and therefore both communication latency and NoC energy.

The algorithm is the classic two-step used by CGRA mappers:

1. a *greedy seed*: nodes are placed in topological order, each on the
   free compatible unit closest to the centroid of its already-placed
   neighbours;
2. *simulated-annealing refinement*: pairwise swaps / moves within the
   compatible unit set, accepted with the Metropolis criterion under a
   geometric cooling schedule (deterministically seeded so builds are
   reproducible).

If the graph demands more nodes of a class than the grid has units, the
mapper falls back to sharing units (several nodes time-multiplex one
unit); the cycle simulator models the resulting structural hazard.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.arch.grid import PhysicalGrid
from repro.errors import MappingError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import UnitClass

__all__ = ["Placement", "GreedyPlacer", "AnnealingRefiner", "place_graph"]

#: Node classes that are not placed on the grid (handled by the streamer/sinks).
UNPLACED_CLASSES = frozenset({UnitClass.SOURCE})


@dataclass
class Placement:
    """A (possibly partial) assignment of graph nodes to physical units."""

    graph: DataflowGraph
    grid: PhysicalGrid
    node_to_unit: dict[int, int] = field(default_factory=dict)

    def unit_of(self, node_id: int) -> int | None:
        return self.node_to_unit.get(node_id)

    def nodes_on_unit(self, unit_id: int) -> list[int]:
        return [n for n, u in self.node_to_unit.items() if u == unit_id]

    def shared_units(self) -> dict[int, int]:
        """Units hosting more than one node: ``{unit_id: node_count}``."""
        counts: dict[int, int] = {}
        for unit in self.node_to_unit.values():
            counts[unit] = counts.get(unit, 0) + 1
        return {u: c for u, c in counts.items() if c > 1}

    def wire_length(self) -> int:
        """Total Manhattan length of all placed edges."""
        total = 0
        for edge in self.graph.edges():
            src_unit = self.node_to_unit.get(edge.src)
            dst_unit = self.node_to_unit.get(edge.dst)
            if src_unit is None or dst_unit is None:
                continue
            total += self.grid.distance(src_unit, dst_unit)
        return total

    def max_edge_distance(self) -> int:
        longest = 0
        for edge in self.graph.edges():
            src_unit = self.node_to_unit.get(edge.src)
            dst_unit = self.node_to_unit.get(edge.dst)
            if src_unit is None or dst_unit is None:
                continue
            longest = max(longest, self.grid.distance(src_unit, dst_unit))
        return longest


class GreedyPlacer:
    """Topological-order greedy seed placement."""

    def __init__(self, grid: PhysicalGrid) -> None:
        self.grid = grid

    def place(self, graph: DataflowGraph) -> Placement:
        placement = Placement(graph=graph, grid=self.grid)
        free_units: dict[UnitClass, list[int]] = {
            cls: [u.unit_id for u in self.grid.units_of_class(cls)]
            for cls in self.grid.capacity()
        }
        usage: dict[int, int] = {}

        for node in graph.topological_order(ignore_temporal=True):
            if node.unit_class in UNPLACED_CLASSES:
                continue
            candidates = self._candidate_units(node.unit_class, free_units, usage)
            if not candidates:
                raise MappingError(
                    f"no physical unit can host node {node.label()} "
                    f"(class {node.unit_class.value})"
                )
            target = self._closest_to_neighbours(node.node_id, candidates, placement)
            placement.node_to_unit[node.node_id] = target
            usage[target] = usage.get(target, 0) + 1
        return placement

    def _candidate_units(
        self,
        node_class: UnitClass,
        free_units: dict[UnitClass, list[int]],
        usage: dict[int, int],
    ) -> list[int]:
        compatible = self.grid.units_compatible_with(node_class)
        if not compatible:
            return []
        unused = [u.unit_id for u in compatible if usage.get(u.unit_id, 0) == 0]
        if unused:
            return unused
        # Every compatible unit is taken: share the least-loaded ones.
        min_load = min(usage.get(u.unit_id, 0) for u in compatible)
        return [u.unit_id for u in compatible if usage.get(u.unit_id, 0) == min_load]

    def _closest_to_neighbours(
        self, node_id: int, candidates: list[int], placement: Placement
    ) -> int:
        graph = placement.graph
        placed_neighbours = [
            placement.node_to_unit[n]
            for n in graph.predecessors(node_id)
            if n in placement.node_to_unit
        ]
        if not placed_neighbours:
            return candidates[0]
        rows = [placement.grid.unit(u).row for u in placed_neighbours]
        cols = [placement.grid.unit(u).col for u in placed_neighbours]
        crow = sum(rows) / len(rows)
        ccol = sum(cols) / len(cols)

        def cost(unit_id: int) -> float:
            unit = placement.grid.unit(unit_id)
            return abs(unit.row - crow) + abs(unit.col - ccol)

        return min(candidates, key=cost)


class AnnealingRefiner:
    """Simulated-annealing refinement of a seed placement."""

    def __init__(
        self,
        iterations: int = 2000,
        initial_temperature: float = 4.0,
        cooling: float = 0.995,
        seed: int = 0xC6A4,
    ) -> None:
        if iterations < 0:
            raise MappingError("iterations must be non-negative")
        if not 0.0 < cooling < 1.0:
            raise MappingError("cooling factor must be in (0, 1)")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def refine(self, placement: Placement) -> Placement:
        graph = placement.graph
        grid = placement.grid
        placed_nodes = list(placement.node_to_unit)
        if len(placed_nodes) < 2 or self.iterations == 0:
            return placement
        rng = random.Random(self.seed)
        temperature = self.initial_temperature
        current_cost = placement.wire_length()

        # Pre-compute, per node, the units it may occupy.
        allowed: dict[int, list[int]] = {}
        for node_id in placed_nodes:
            node = graph.node(node_id)
            allowed[node_id] = [
                u.unit_id for u in grid.units_compatible_with(node.unit_class)
            ]

        for _ in range(self.iterations):
            node_id = rng.choice(placed_nodes)
            old_unit = placement.node_to_unit[node_id]
            new_unit = rng.choice(allowed[node_id])
            if new_unit == old_unit:
                temperature *= self.cooling
                continue
            swap_partner = self._occupant(placement, new_unit, node_id, allowed, old_unit)
            delta = self._move_delta(placement, node_id, old_unit, new_unit, swap_partner)
            accept = delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9))
            if accept:
                placement.node_to_unit[node_id] = new_unit
                if swap_partner is not None:
                    placement.node_to_unit[swap_partner] = old_unit
                current_cost += delta
            temperature *= self.cooling
        return placement

    def _occupant(
        self,
        placement: Placement,
        unit_id: int,
        moving_node: int,
        allowed: dict[int, list[int]],
        old_unit: int,
    ) -> int | None:
        """A node on ``unit_id`` that may legally swap onto ``old_unit``."""
        for node_id in placement.nodes_on_unit(unit_id):
            if node_id != moving_node and old_unit in allowed.get(node_id, []):
                return node_id
        return None

    def _move_delta(
        self,
        placement: Placement,
        node_id: int,
        old_unit: int,
        new_unit: int,
        swap_partner: int | None,
    ) -> int:
        affected = {node_id}
        if swap_partner is not None:
            affected.add(swap_partner)
        before = self._local_cost(placement, affected)
        placement.node_to_unit[node_id] = new_unit
        if swap_partner is not None:
            placement.node_to_unit[swap_partner] = old_unit
        after = self._local_cost(placement, affected)
        placement.node_to_unit[node_id] = old_unit
        if swap_partner is not None:
            placement.node_to_unit[swap_partner] = new_unit
        return after - before

    def _local_cost(self, placement: Placement, nodes: set[int]) -> int:
        graph = placement.graph
        total = 0
        for edge in graph.edges():
            if edge.src not in nodes and edge.dst not in nodes:
                continue
            src_unit = placement.node_to_unit.get(edge.src)
            dst_unit = placement.node_to_unit.get(edge.dst)
            if src_unit is None or dst_unit is None:
                continue
            total += placement.grid.distance(src_unit, dst_unit)
        return total


def place_graph(
    graph: DataflowGraph,
    grid: PhysicalGrid,
    anneal_iterations: int = 2000,
    seed: int = 0xC6A4,
) -> Placement:
    """Greedy seed followed by annealing refinement."""
    seed_placement = GreedyPlacer(grid).place(graph)
    refiner = AnnealingRefiner(iterations=anneal_iterations, seed=seed)
    return refiner.refine(seed_placement)
