"""Placement and routing of dataflow graphs onto the CGRA grid."""

from repro.compiler.mapper.placement import (
    AnnealingRefiner,
    GreedyPlacer,
    Placement,
    place_graph,
)
from repro.compiler.mapper.routing import RoutedMapping, route_placement

__all__ = [
    "AnnealingRefiner",
    "GreedyPlacer",
    "Placement",
    "RoutedMapping",
    "place_graph",
    "route_placement",
]
