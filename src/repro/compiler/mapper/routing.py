"""Static NoC routing of a placed dataflow graph.

Every dataflow edge of a placed graph is assigned its XY route at compile
time (the MT-CGRA interconnect is statically configured, Sec. 4).  The
result — a :class:`RoutedMapping` — carries the per-edge hop counts the
cycle-level simulator uses for token transfer latency and the link-load
histogram used to spot hot links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.grid import PhysicalGrid
from repro.arch.noc import Link, Noc
from repro.compiler.mapper.placement import Placement
from repro.config.system import NocConfig
from repro.errors import RoutingError
from repro.graph.node import Edge

__all__ = ["RoutedMapping", "route_placement"]


@dataclass
class RoutedMapping:
    """A fully placed-and-routed kernel configuration."""

    placement: Placement
    edge_hops: dict[tuple[int, int, int], int] = field(default_factory=dict)
    edge_routes: dict[tuple[int, int, int], tuple[Link, ...]] = field(default_factory=dict)
    link_load: dict[Link, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ queries
    def hops_for_edge(self, edge: Edge) -> int:
        return self.edge_hops.get((edge.src, edge.dst, edge.dst_port), 0)

    def hops_between_nodes(self, src: int, dst: int) -> int:
        for (esrc, edst, _), hops in self.edge_hops.items():
            if esrc == src and edst == dst:
                return hops
        placement = self.placement
        src_unit = placement.unit_of(src)
        dst_unit = placement.unit_of(dst)
        if src_unit is None or dst_unit is None:
            return 0
        return placement.grid.distance(src_unit, dst_unit)

    @property
    def total_hops(self) -> int:
        return sum(self.edge_hops.values())

    @property
    def mean_hops(self) -> float:
        return self.total_hops / len(self.edge_hops) if self.edge_hops else 0.0

    def hottest_link_load(self) -> int:
        return max(self.link_load.values(), default=0)

    def unit_of(self, node_id: int) -> int | None:
        return self.placement.unit_of(node_id)

    def summary(self) -> str:
        shared = self.placement.shared_units()
        return (
            f"RoutedMapping(nodes={len(self.placement.node_to_unit)}, "
            f"edges={len(self.edge_hops)}, total_hops={self.total_hops}, "
            f"mean_hops={self.mean_hops:.2f}, shared_units={len(shared)})"
        )


def route_placement(placement: Placement, noc_config: NocConfig) -> RoutedMapping:
    """Compute the static XY route of every placed edge."""
    grid: PhysicalGrid = placement.grid
    noc = Noc(grid, noc_config)
    mapping = RoutedMapping(placement=placement)
    for edge in placement.graph.edges():
        src_unit = placement.unit_of(edge.src)
        dst_unit = placement.unit_of(edge.dst)
        key = (edge.src, edge.dst, edge.dst_port)
        if src_unit is None or dst_unit is None:
            # Edges from unplaced sources (thread-ID injection) have no route.
            mapping.edge_hops[key] = 0
            mapping.edge_routes[key] = ()
            continue
        try:
            route = noc.route(src_unit, dst_unit)
        except RoutingError as exc:  # pragma: no cover - defensive
            raise RoutingError(
                f"failed to route edge {edge.src}->{edge.dst}: {exc}"
            ) from exc
        mapping.edge_hops[key] = len(route)
        mapping.edge_routes[key] = tuple(route)
        for link in route:
            mapping.link_load[link] = mapping.link_load.get(link, 0) + 1
    return mapping
