"""The compilation pipeline: kernel graph -> legalised, placed, routed kernel.

This is the Python stand-in for the paper's LLVM-based toolchain
(Sec. 5.1 "Compiler"): the kernel builder produces an SSA-like dataflow
graph, the passes legalise inter-thread communication for the hardware
limits of Table 2, and the mapper configures the grid and interconnect.
The output, a :class:`CompiledKernel`, is what both simulators consume.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.grid import PhysicalGrid
from repro.compiler.mapper.placement import Placement, place_graph
from repro.compiler.mapper.routing import RoutedMapping, route_placement
from repro.compiler.passes.base import Pass, PassManager, PassResult
from repro.compiler.passes.cascade import CascadeElevatorsPass
from repro.compiler.passes.constant_fold import ConstantFoldPass
from repro.compiler.passes.dce import DeadCodeEliminationPass
from repro.compiler.passes.eldst_buffer import EldstBufferPass
from repro.compiler.passes.replicate import ReplicatePass
from repro.config.system import SystemConfig, default_system_config
from repro.errors import CompilationError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode
from repro.graph.validate import validate_graph

__all__ = ["CompiledKernel", "CompilerOptions", "default_pass_pipeline", "compile_kernel"]


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the compilation pipeline."""

    optimize: bool = True
    map_to_grid: bool = True
    anneal_iterations: int = 1500
    seed: int = 0xC6A4
    #: Static-analyzer strictness: ``"warn"`` (default) runs the analyzer
    #: after compilation, caches the result on the kernel and surfaces
    #: error-severity findings as Python warnings; ``"strict"`` raises
    #: :class:`~repro.errors.CompilationError` on any error or warning
    #: diagnostic; ``"off"`` skips analysis entirely.
    analyze: str = "warn"


@dataclass
class CompiledKernel:
    """A kernel ready for simulation."""

    graph: DataflowGraph
    config: SystemConfig
    pass_results: list[PassResult] = field(default_factory=list)
    mapping: RoutedMapping | None = None

    # ------------------------------------------------------------------ queries
    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def replicas(self) -> int:
        return int(self.graph.metadata.get("replicas", 1))

    @property
    def num_threads(self) -> int:
        return int(self.graph.metadata["num_threads"])

    @property
    def block_dim(self) -> tuple[int, ...]:
        return tuple(self.graph.metadata["block_dim"])

    def elevator_nodes(self) -> list:
        return self.graph.nodes_with_opcode(Opcode.ELEVATOR)

    def eldst_nodes(self) -> list:
        return self.graph.nodes_with_opcode(Opcode.ELDST)

    def uses_inter_thread_communication(self) -> bool:
        return bool(self.elevator_nodes() or self.eldst_nodes())

    def uses_barriers(self) -> bool:
        return bool(self.graph.nodes_with_opcode(Opcode.BARRIER))

    def spilled_nodes(self) -> list:
        return [n for n in self.graph.nodes if n.param("spilled")]

    def edge_hops(self, src: int, dst: int) -> int:
        if self.mapping is None:
            return 0
        return self.mapping.hops_between_nodes(src, dst)

    def report(self) -> str:
        lines = [f"compiled kernel '{self.name}'"]
        lines.append(f"  nodes               : {len(self.graph)}")
        lines.append(f"  edges               : {self.graph.num_edges()}")
        lines.append(f"  threads             : {self.num_threads} (block {self.block_dim})")
        lines.append(f"  replicas            : {self.replicas}")
        lines.append(f"  elevator nodes      : {len(self.elevator_nodes())}")
        lines.append(f"  eLDST nodes         : {len(self.eldst_nodes())}")
        lines.append(f"  spilled transfers   : {len(self.spilled_nodes())}")
        if self.mapping is not None:
            lines.append(f"  mapping             : {self.mapping.summary()}")
        for result in self.pass_results:
            if result.metrics:
                metrics = ", ".join(f"{k}={v}" for k, v in sorted(result.metrics.items()))
                lines.append(f"  pass {result.pass_name:<22}: {metrics}")
        return "\n".join(lines)


def default_pass_pipeline(optimize: bool = True) -> list[Pass]:
    """The standard pass order used by :func:`compile_kernel`."""
    passes: list[Pass] = []
    if optimize:
        passes.append(ConstantFoldPass())
        passes.append(DeadCodeEliminationPass())
    passes.append(CascadeElevatorsPass())
    passes.append(EldstBufferPass())
    passes.append(ReplicatePass())
    return passes


def compile_kernel(
    graph: DataflowGraph,
    config: SystemConfig | None = None,
    options: CompilerOptions | None = None,
    extra_passes: Sequence[Pass] = (),
) -> CompiledKernel:
    """Compile a kernel graph for the configured dMT-CGRA system.

    The input graph is not modified; compilation operates on a copy.
    """
    config = config or default_system_config()
    options = options or CompilerOptions()
    working = graph.copy()
    validate_graph(working)

    passes = default_pass_pipeline(options.optimize) + list(extra_passes)
    manager = PassManager(passes)
    results = manager.run(working, config)

    mapping: RoutedMapping | None = None
    if options.map_to_grid:
        grid = PhysicalGrid(config.grid)
        placement: Placement = place_graph(
            working, grid, anneal_iterations=options.anneal_iterations, seed=options.seed
        )
        mapping = route_placement(placement, config.noc)

    compiled = CompiledKernel(
        graph=working, config=config, pass_results=results, mapping=mapping
    )

    if options.analyze not in ("off", "warn", "strict"):
        raise CompilationError(
            f"unknown analyze mode '{options.analyze}'; expected 'off', 'warn' or 'strict'"
        )
    if options.analyze != "off":
        # Deferred import: the analyzer's critical-path pass reaches into
        # the sim layer, which itself imports this module.
        from repro.analyze.manager import analyze_kernel

        analysis = analyze_kernel(compiled)
        if options.analyze == "strict" and not analysis.ok:
            findings = "\n  - ".join(
                d.format() for d in analysis.errors() + analysis.warnings()
            )
            raise CompilationError(
                f"kernel '{compiled.name}' failed strict static analysis:\n"
                f"  - {findings}"
            )
        for diagnostic in analysis.errors():
            warnings.warn(
                f"static analysis of kernel '{compiled.name}': {diagnostic.format()}",
                stacklevel=2,
            )
    return compiled
