"""Constant folding.

Pure nodes whose operands are all ``CONST`` are evaluated at compile time
and replaced by a single ``CONST`` node.  This mirrors what the paper's
LLVM front-end would do before configuring the grid and keeps the mapped
graph (and therefore the unit demand used for replication) honest.
"""

from __future__ import annotations

from repro.compiler.passes.base import Pass, PassResult
from repro.config.system import SystemConfig
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode
from repro.graph.semantics import PURE_OPCODES, evaluate_pure

__all__ = ["ConstantFoldPass"]


class ConstantFoldPass(Pass):
    """Fold pure operations over compile-time constants."""

    name = "constant-fold"

    def run(self, graph: DataflowGraph, config: SystemConfig) -> PassResult:
        result = PassResult(self.name)
        changed = True
        while changed:
            changed = False
            for node in list(graph.nodes):
                if node.opcode not in PURE_OPCODES or node.opcode is Opcode.JOIN:
                    continue
                inputs = graph.inputs_of(node.node_id)
                if not inputs:
                    continue
                sources = [graph.node(src) for src in inputs.values()]
                if any(src.opcode is not Opcode.CONST for src in sources):
                    continue
                operands = [
                    graph.node(inputs[port]).param("value")
                    for port in sorted(inputs)
                ]
                value = evaluate_pure(node, operands)
                folded = graph.add_node(
                    Opcode.CONST,
                    node.dtype,
                    params={"value": value},
                    name=f"folded_{node.name or node.opcode.value}",
                )
                for dst, port in graph.successors(node.node_id):
                    graph.replace_input(dst, port, folded)
                graph.remove_node(node.node_id)
                result.bump("folded_nodes")
                changed = True
        return result
