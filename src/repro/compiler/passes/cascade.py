"""Elevator legalisation: cascading and spilling (Sec. 4.3, Fig. 10a).

A single elevator node can only shift a token by at most the size of its
token buffer (16 entries in Table 2).  ``fromThreadOrConst`` calls with a
larger ΔTID are legalised by *cascading* elevator nodes: a chain whose
per-node shifts sum to the requested distance.  When the chain would need
more elevator-capable units than the grid provides, the transfer is
*spilled* to the Live Value Cache instead (the paper's fallback), which
the cycle simulator then charges at LVC cost rather than fabric cost.

The pass operates on the hardware shift stored in the node's ``delta``
parameter.  Multi-dimensional source offsets are preserved on the *last*
node of the chain so that boundary conditions keep their per-dimension
semantics; intermediate nodes are pure linear shifters.
"""

from __future__ import annotations

from repro.compiler.passes.base import Pass, PassResult
from repro.config.system import SystemConfig
from repro.errors import CompilationError
from repro.graph.dfg import DataflowGraph
from repro.graph.node import Node
from repro.graph.opcodes import Opcode

__all__ = ["CascadeElevatorsPass", "split_delta", "cascade_plan"]


def split_delta(delta: int, buffer_entries: int) -> list[int]:
    """Split a hardware shift into per-node shifts of at most ``buffer_entries``.

    The split mirrors Fig. 10a: the first nodes take the full buffer size
    and the final node takes the remainder (18 with a 16-entry buffer
    becomes ``[16, 2]``).
    """
    if buffer_entries <= 0:
        raise CompilationError("token buffer size must be positive")
    if delta == 0:
        raise CompilationError("elevator delta must be non-zero")
    magnitude = abs(delta)
    sign = 1 if delta > 0 else -1
    chunks: list[int] = []
    while magnitude > 0:
        step = min(magnitude, buffer_entries)
        chunks.append(sign * step)
        magnitude -= step
    return chunks


def cascade_plan(delta: int, buffer_entries: int) -> int:
    """Number of elevator nodes needed to realise ``delta``."""
    return len(split_delta(delta, buffer_entries))


class CascadeElevatorsPass(Pass):
    """Cascade (or spill) elevator nodes whose ΔTID exceeds the token buffer."""

    name = "cascade-elevators"

    def run(self, graph: DataflowGraph, config: SystemConfig) -> PassResult:
        result = PassResult(self.name)
        buffer_entries = config.token_buffer.entries
        available = self._available_elevator_units(graph, config)
        for node in list(graph.nodes):
            if node.opcode is not Opcode.ELEVATOR:
                continue
            delta = int(node.param("delta"))
            if abs(delta) <= buffer_entries:
                continue
            chunks = split_delta(delta, buffer_entries)
            extra_needed = len(chunks) - 1
            if extra_needed > available:
                node.params["spilled"] = True
                result.bump("spilled_transfers")
                result.note(
                    f"{node.label()}: ΔTID {delta} needs {len(chunks)} elevator nodes, "
                    f"only {available} spare control units — spilled to the LVC"
                )
                continue
            available -= extra_needed
            self._cascade(graph, node, chunks)
            result.bump("cascaded_calls")
            result.bump("inserted_elevators", extra_needed)
            result.note(
                f"{node.label()}: ΔTID {delta} split into shifts {chunks} "
                f"({len(chunks)} cascaded elevator nodes)"
            )
        return result

    # ------------------------------------------------------------------ helpers
    def _available_elevator_units(self, graph: DataflowGraph, config: SystemConfig) -> int:
        used = len(graph.nodes_with_opcode(Opcode.ELEVATOR))
        capacity = config.grid.num_control
        return max(0, capacity - used)

    def _cascade(self, graph: DataflowGraph, node: Node, chunks: list[int]) -> None:
        """Rewrite ``node`` into a chain realising the same cumulative shift."""
        inputs = graph.inputs_of(node.node_id)
        upstream = inputs.get(0)
        constant = node.param("const")
        window = node.param("window")
        src_offset = node.param("src_offset")
        dtype = node.dtype

        # Build the chain front-to-back; the original node becomes the last
        # stage so downstream consumers keep their existing edges.
        previous = upstream
        for index, chunk in enumerate(chunks[:-1]):
            stage = graph.add_node(
                Opcode.ELEVATOR,
                dtype,
                params={
                    "delta": chunk,
                    "const": constant,
                    "window": window,
                    "cascade_stage": index,
                },
                name=f"{node.name or 'elevator'}_stage{index}",
            )
            if previous is not None:
                graph.add_edge(previous, stage, 0)
            previous = stage.node_id

        node.params["delta"] = chunks[-1]
        node.params["cascade_stage"] = len(chunks) - 1
        node.params["cascade_total_delta"] = sum(chunks)
        if src_offset is not None:
            # The per-dimension boundary test only makes sense for the full
            # shift; keep it out of the partial stages.
            node.params.pop("src_offset", None)
        if previous is not None:
            if upstream is not None:
                graph.replace_input(node.node_id, 0, previous)
            else:
                graph.add_edge(previous, node.node_id, 0)
