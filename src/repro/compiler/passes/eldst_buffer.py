"""eLDST external-buffer legalisation (Sec. 4.3, Fig. 10b).

Unlike elevator nodes, an eLDST unit cannot simply be cascaded: it acts as
the local buffer for its own in-flight memory values.  When a
``fromThreadOrMem`` call forwards values across a distance larger than the
unit's token buffer, the compiler wraps the eLDST in a loop of predicated
elevator nodes (enclosed by MUXes) that provides the extra buffering.

The pass records the plan on the eLDST node (how many external elevator
nodes form the loop), consumes the corresponding control units, and falls
back to spilling through the Live Value Cache when the grid runs out of
control units — matching the elevator spill path.
"""

from __future__ import annotations

import math

from repro.compiler.passes.base import Pass, PassResult
from repro.config.system import SystemConfig
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode

__all__ = ["EldstBufferPass", "external_buffer_nodes"]


def external_buffer_nodes(delta: int, buffer_entries: int) -> int:
    """Number of loop elevator nodes needed for a forwarding distance ``delta``.

    A distance that fits the eLDST's own token buffer needs none; beyond
    that, each loop node contributes one token buffer of extra capacity.
    """
    if buffer_entries <= 0:
        raise ValueError("buffer_entries must be positive")
    distance = abs(int(delta))
    if distance <= buffer_entries:
        return 0
    return math.ceil((distance - buffer_entries) / buffer_entries)


class EldstBufferPass(Pass):
    """Plan external buffering for eLDST units with long forwarding distances."""

    name = "eldst-external-buffer"

    def run(self, graph: DataflowGraph, config: SystemConfig) -> PassResult:
        result = PassResult(self.name)
        buffer_entries = config.token_buffer.entries
        used_control = len(graph.nodes_with_opcode(Opcode.ELEVATOR))
        available = max(0, config.grid.num_control - used_control)
        for node in graph.nodes_with_opcode(Opcode.ELDST):
            delta = int(node.param("delta"))
            needed = external_buffer_nodes(delta, buffer_entries)
            if needed == 0:
                continue
            # The loop additionally needs its two enclosing MUXes (control units).
            loop_units = needed + 2
            if loop_units > available:
                node.params["spilled"] = True
                result.bump("spilled_forwards")
                result.note(
                    f"{node.label()}: forwarding distance {delta} needs {loop_units} "
                    f"control units for its external buffer loop, only {available} "
                    "available — spilled to the LVC"
                )
                continue
            available -= loop_units
            node.params["external_buffer_nodes"] = needed
            node.params["external_buffer_units"] = loop_units
            result.bump("buffered_forwards")
            result.bump("loop_elevators", needed)
            result.note(
                f"{node.label()}: forwarding distance {delta} mapped to an external "
                f"buffer loop of {needed} elevator nodes (+2 MUXes)"
            )
        return result
