"""Compiler passes: legalisation and optimisation of kernel dataflow graphs."""

from repro.compiler.passes.base import Pass, PassManager, PassResult
from repro.compiler.passes.cascade import CascadeElevatorsPass, cascade_plan, split_delta
from repro.compiler.passes.constant_fold import ConstantFoldPass
from repro.compiler.passes.dce import DeadCodeEliminationPass
from repro.compiler.passes.eldst_buffer import EldstBufferPass, external_buffer_nodes
from repro.compiler.passes.replicate import ReplicatePass, max_replicas

__all__ = [
    "CascadeElevatorsPass",
    "ConstantFoldPass",
    "DeadCodeEliminationPass",
    "EldstBufferPass",
    "Pass",
    "PassManager",
    "PassResult",
    "ReplicatePass",
    "cascade_plan",
    "external_buffer_nodes",
    "max_replicas",
    "split_delta",
]
