"""Graph replication analysis.

"Prior to executing a kernel, the functional units and interconnect are
configured to execute a dataflow graph that consists of one or more
replicas of the kernel's dataflow graph" (Sec. 3).  Replication fills
otherwise-idle functional units and multiplies the thread injection rate.

This pass does not physically copy the graph — the cycle simulator treats
``replicas`` as the per-node issue width, which is throughput-equivalent —
but it performs the same resource arithmetic the real toolchain would:
the replica count is the largest R such that R copies of the per-class
unit demand fit the grid inventory, capped by ``max_graph_replicas``.
"""

from __future__ import annotations

from repro.arch.grid import PhysicalGrid
from repro.compiler.passes.base import Pass, PassResult
from repro.config.system import SystemConfig
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import UnitClass

__all__ = ["ReplicatePass", "max_replicas"]


def max_replicas(graph: DataflowGraph, config: SystemConfig) -> int:
    """Largest replica count whose combined unit demand fits the grid."""
    grid = PhysicalGrid(config.grid)
    demand = graph.unit_demand()
    best = config.max_graph_replicas
    for unit_class, needed in demand.items():
        if unit_class in (UnitClass.SOURCE, UnitClass.SINK, UnitClass.BARRIER):
            continue
        if needed == 0:
            continue
        capacity = grid.capacity_for(unit_class)
        if capacity == 0:
            return 1
        best = min(best, capacity // needed) if capacity >= needed else 1
        if capacity < needed:
            return 1
    return max(1, best)


class ReplicatePass(Pass):
    """Record the replica count the grid can sustain in the graph metadata."""

    name = "replicate"

    def run(self, graph: DataflowGraph, config: SystemConfig) -> PassResult:
        result = PassResult(self.name)
        replicas = max_replicas(graph, config)
        previous = graph.metadata.get("replicas")
        graph.metadata["replicas"] = replicas
        if previous != replicas:
            result.changed = True
        result.metrics["replicas"] = replicas
        demand = sorted(graph.unit_demand().items(), key=lambda x: x[0].value)
        demand_text = ", ".join(f"{k.value}: {v}" for k, v in demand)
        result.note(
            f"graph '{graph.name}' replicated {replicas}x (demand {{{demand_text}}})"
        )
        return result
