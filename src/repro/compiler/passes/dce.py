"""Dead code elimination.

Nodes whose output reaches no store, output or other side effect are
removed.  The liveness walk follows edges *backwards* from every
side-effecting node; temporal edges are ordinary edges for this purpose
(a value communicated to another thread is only live if that other thread
eventually uses it for a side effect).
"""

from __future__ import annotations

from collections import deque

from repro.compiler.passes.base import Pass, PassResult
from repro.config.system import SystemConfig
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode

__all__ = ["DeadCodeEliminationPass", "SIDE_EFFECT_OPCODES"]

#: Opcodes that anchor liveness.
SIDE_EFFECT_OPCODES = frozenset(
    {Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT, Opcode.BARRIER}
)


class DeadCodeEliminationPass(Pass):
    """Remove nodes that cannot influence any side effect."""

    name = "dead-code-elimination"

    def run(self, graph: DataflowGraph, config: SystemConfig) -> PassResult:
        result = PassResult(self.name)
        live: set[int] = set()
        queue: deque[int] = deque(
            node.node_id for node in graph.nodes if node.opcode in SIDE_EFFECT_OPCODES
        )
        while queue:
            nid = queue.popleft()
            if nid in live:
                continue
            live.add(nid)
            for src in graph.predecessors(nid):
                if src not in live:
                    queue.append(src)
        for node in list(graph.nodes):
            if node.node_id not in live:
                graph.remove_node(node.node_id)
                result.bump("removed_nodes")
        return result
