"""Compiler pass infrastructure.

A pass transforms a :class:`~repro.graph.dfg.DataflowGraph` in place and
reports what it did through a :class:`PassResult`.  The
:class:`PassManager` runs a pipeline of passes, re-validating the graph
after each transforming pass so that a broken pass is caught at the point
it breaks the graph, not three passes later.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.config.system import SystemConfig
from repro.errors import CompilationError
from repro.graph.dfg import DataflowGraph
from repro.graph.validate import validate_graph

__all__ = ["PassResult", "Pass", "PassManager"]


@dataclass
class PassResult:
    """Outcome of one pass over one graph."""

    pass_name: str
    changed: bool = False
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, int] = field(default_factory=dict)

    def note(self, message: str) -> None:
        self.notes.append(message)

    def bump(self, metric: str, amount: int = 1) -> None:
        self.metrics[metric] = self.metrics.get(metric, 0) + amount
        if amount:
            self.changed = True


class Pass(abc.ABC):
    """Base class of every compiler pass."""

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    @abc.abstractmethod
    def run(self, graph: DataflowGraph, config: SystemConfig) -> PassResult:
        """Transform ``graph`` in place and describe what happened."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PassManager:
    """Runs a sequence of passes, validating the graph between passes."""

    def __init__(self, passes: Sequence[Pass], validate_between: bool = True) -> None:
        self.passes = list(passes)
        self.validate_between = validate_between
        self.results: list[PassResult] = []

    def run(self, graph: DataflowGraph, config: SystemConfig) -> list[PassResult]:
        self.results = []
        for compiler_pass in self.passes:
            try:
                result = compiler_pass.run(graph, config)
            except CompilationError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise CompilationError(
                    f"pass {compiler_pass.name} failed on graph '{graph.name}': {exc}"
                ) from exc
            self.results.append(result)
            if self.validate_between and result.changed:
                validate_graph(graph)
        return self.results

    def summary(self) -> str:
        lines = []
        for result in self.results:
            status = "changed" if result.changed else "no-op"
            metrics = ", ".join(f"{k}={v}" for k, v in sorted(result.metrics.items()))
            lines.append(f"{result.pass_name}: {status}" + (f" ({metrics})" if metrics else ""))
        return "\n".join(lines)
