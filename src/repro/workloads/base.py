"""Workload infrastructure.

A :class:`Workload` packages one Table 3 kernel in the three forms the
paper evaluates:

* ``fermi``  — a hand-written SIMT program using shared memory and
  barriers (the CUDA/Rodinia baseline);
* ``mt``     — a dataflow graph for the plain MT-CGRA, still using the
  scratchpad and barrier nodes for inter-thread data sharing;
* ``dmt``    — a dataflow graph using the paper's ``fromThreadOrConst`` /
  ``fromThreadOrMem`` primitives instead of shared memory and barriers.

Every workload also provides a NumPy reference; all three variants are
required (and tested) to produce the same named output arrays as that
reference, which is what makes the cross-architecture performance and
energy comparison meaningful.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode
from repro.gpgpu.program import SimtProgram
from repro.sim.launch import KernelLaunch

__all__ = ["ARCHITECTURES", "Workload", "PreparedWorkload"]

#: Architecture identifiers used throughout the harness and the benches.
ARCHITECTURES = ("fermi", "mt", "dmt")


@dataclass
class PreparedWorkload:
    """One workload instantiated with concrete parameters and data."""

    workload: "Workload"
    params: dict[str, Any]
    inputs: dict[str, np.ndarray]
    expected: dict[str, np.ndarray]
    #: RNG seed that generated ``inputs``; part of the run's identity, so
    #: result caches keyed on parameters capture the input data too.
    seed: int = 0

    def launch(self, architecture: str) -> KernelLaunch:
        """Build the dataflow launch for ``mt``, ``dmt``, ``dmt_win`` or ``stream``."""
        if architecture == "mt":
            graph = self.workload.build_mt(self.params)
        elif architecture == "dmt":
            graph = self.workload.build_dmt(self.params)
        elif architecture == "dmt_win":
            graph = self.workload.build_dmt_windowed(self.params)
        elif architecture == "stream":
            graph = self.workload.build_stream(self.params)
        else:
            raise WorkloadError(
                f"architecture '{architecture}' does not run a dataflow graph"
            )
        usable = {k: v for k, v in self.inputs.items() if k in graph.metadata["arrays"]}
        return KernelLaunch(graph, usable)

    def fermi_program(self) -> SimtProgram:
        return self.workload.build_fermi(self.params)

    def fermi_inputs(self) -> dict[str, np.ndarray]:
        program = self.fermi_program()
        return {k: v for k, v in self.inputs.items() if k in program.arrays}

    def check_outputs(
        self, produced: Mapping[str, np.ndarray], rtol: float = 1e-6, atol: float = 1e-6
    ) -> None:
        """Raise :class:`WorkloadError` if outputs do not match the reference."""
        for name, expected in self.expected.items():
            if name not in produced:
                raise WorkloadError(f"output array '{name}' was not produced")
            got = np.asarray(produced[name], dtype=float).ravel()
            want = np.asarray(expected, dtype=float).ravel()
            if got.shape != want.shape:
                raise WorkloadError(
                    f"output '{name}' has shape {got.shape}, expected {want.shape}"
                )
            if not np.allclose(got, want, rtol=rtol, atol=atol):
                worst = int(np.argmax(np.abs(got - want)))
                raise WorkloadError(
                    f"output '{name}' differs from the reference "
                    f"(worst at index {worst}: {got[worst]} vs {want[worst]})"
                )


class Workload(abc.ABC):
    """One benchmark kernel of Table 3."""

    #: Short identifier (Table 3 "Application").
    name: str = ""
    #: Application domain (Table 3).
    domain: str = ""
    #: Kernel name (Table 3).
    kernel_name: str = ""
    #: One-line description (Table 3).
    description: str = ""
    #: Origin of the kernel ("NVIDIA SDK" or "Rodinia").
    suite: str = ""

    # ------------------------------------------------------------------- hooks
    @abc.abstractmethod
    def default_params(self) -> dict[str, Any]:
        """Default problem-size parameters."""

    @abc.abstractmethod
    def make_inputs(
        self, params: Mapping[str, Any], rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Generate the input arrays for one run."""

    @abc.abstractmethod
    def reference(
        self, params: Mapping[str, Any], inputs: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """NumPy reference results for the output arrays."""

    @abc.abstractmethod
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        """dMT-CGRA kernel graph (direct inter-thread communication)."""

    @abc.abstractmethod
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        """MT-CGRA kernel graph (scratchpad + barrier)."""

    @abc.abstractmethod
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        """Fermi baseline SIMT program (shared memory + barrier)."""

    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free ("streaming") kernel graph, if the workload has one.

        Every thread loads its own operands from global memory — no
        scratchpad, barriers or inter-thread forwarding — which is the
        form the wave-batched engine and multi-core sharding can execute.
        Workloads whose algorithm fundamentally shares data between
        threads (e.g. scan's running recurrence) do not override this.
        """
        raise WorkloadError(
            f"workload '{self.name}' has no streaming (inter-thread-free) variant"
        )

    def has_stream_variant(self) -> bool:
        """True if :meth:`build_stream` is overridden by this workload."""
        return type(self).build_stream is not Workload.build_stream

    def build_dmt_windowed(self, params: Mapping[str, Any]) -> DataflowGraph:
        """dMT kernel whose inter-thread communication is window-bounded.

        Every ELEVATOR/ELDST node carries an explicit transmission
        ``window`` (Sec. 3.2), which is what makes the kernel legal for
        the window-aligned multi-core sharding of
        :mod:`repro.sim.multicore`.  Workloads whose default dMT graph is
        already windowed (e.g. reduce) do not need to override this;
        workloads whose communication pattern inherently spans the block
        (e.g. scan's running recurrence) have no windowed form.
        """
        graph = self.build_dmt(params)
        unbounded = [
            node.label()
            for node in graph.nodes_with_opcode(Opcode.ELEVATOR, Opcode.ELDST)
            if node.param("window") is None
        ]
        if unbounded:
            raise WorkloadError(
                f"workload '{self.name}' has no window-bounded dMT variant "
                f"(unbounded: {', '.join(unbounded)})"
            )
        return graph

    def has_windowed_variant(self) -> bool:
        """True if a window-bounded dMT graph is available.

        Either :meth:`build_dmt_windowed` is overridden, or the default
        dMT graph already bounds every inter-thread node with a window.
        """
        if type(self).build_dmt_windowed is not Workload.build_dmt_windowed:
            return True
        try:
            self.build_dmt_windowed(self.default_params())
        except WorkloadError:
            return False
        return True

    # -------------------------------------------------------------- conveniences
    def params_with_defaults(self, overrides: Mapping[str, Any] | None = None) -> dict[str, Any]:
        params = self.default_params()
        if overrides:
            unknown = set(overrides) - set(params)
            if unknown:
                raise WorkloadError(
                    f"unknown parameter(s) {sorted(unknown)} for workload '{self.name}'"
                )
            params.update(overrides)
        return params

    def prepare(
        self, params: Mapping[str, Any] | None = None, seed: int = 0
    ) -> PreparedWorkload:
        """Instantiate the workload with concrete parameters and data."""
        full = self.params_with_defaults(params)
        rng = np.random.default_rng(seed)
        inputs = self.make_inputs(full, rng)
        expected = self.reference(full, inputs)
        return PreparedWorkload(
            workload=self, params=full, inputs=inputs, expected=expected, seed=seed
        )

    def output_names(self, params: Mapping[str, Any] | None = None) -> tuple[str, ...]:
        prepared = self.prepare(params)
        return tuple(prepared.expected)

    def table3_row(self) -> dict[str, str]:
        """The row of Table 3 describing this workload."""
        return {
            "application": self.name,
            "domain": self.domain,
            "kernel": self.kernel_name,
            "description": self.description,
            "suite": self.suite,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
