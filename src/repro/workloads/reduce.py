"""Parallel reduction (NVIDIA SDK ``reduce``).

All three variants compute *windowed doubling partial sums*: after
``log2(window)`` passes, element ``t`` holds the sum of the input elements
``t .. min(t + window, window_end) - 1`` of its transmission window, so the
first element of every window holds that window's total.  This is the
reduction-tree formulation the paper describes for bounded transmission
windows (Sec. 3.2): "a bounded transmission window enables mapping distinct
groups of communicating threads to separate segments at each level of the
tree".

* Fermi: ping-pong shared-memory buffer, one barrier per pass.
* MT-CGRA: the same passes as a dataflow graph over scratchpad buffers.
* dMT-CGRA: each pass is a single ``fromThreadOrConst`` with a positive
  ΔTID of ``2^k`` and the workload's transmission window — no scratchpad
  and no barriers.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["ReduceWorkload", "windowed_partial_sums"]


def windowed_partial_sums(values: np.ndarray, window: int) -> np.ndarray:
    """Reference semantics shared by all three variants."""
    values = np.asarray(values, dtype=float)
    out = np.empty_like(values)
    for start in range(0, len(values), window):
        segment = values[start:start + window]
        suffix = np.cumsum(segment[::-1])[::-1]
        out[start:start + window] = suffix
    return out


class ReduceWorkload(Workload):
    """Windowed parallel reduction (tree of pairwise sums)."""

    name = "reduce"
    domain = "Data-Parallel Algorithms"
    kernel_name = "reduce"
    description = "Parallel Reduction"
    suite = "NVIDIA SDK"

    def default_params(self) -> dict[str, Any]:
        return {"n": 256, "window": 64}

    def _check(self, params: Mapping[str, Any]) -> tuple[int, int, int]:
        n, window = params["n"], params["window"]
        levels = int(np.log2(window))
        if 2 ** levels != window:
            raise WorkloadError("reduce requires a power-of-two window")
        if n % window != 0:
            raise WorkloadError("reduce requires n to be a multiple of the window")
        return n, window, levels

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        return {"in_data": rng.uniform(0.0, 1.0, params["n"])}

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        _, window, _ = self._check(params)
        return {"partials": windowed_partial_sums(inputs["in_data"], window)}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n, window, levels = self._check(params)
        b = KernelBuilder("reduce_dmt", n)
        b.global_array("in_data", n)
        b.global_array("partials", n)
        tid = b.thread_idx_x()
        current = b.load("in_data", tid)
        for level in range(levels):
            distance = 1 << level
            b.tag_value(f"partial{level}", current)
            other = b.from_thread_or_const(
                f"partial{level}", +distance, 0.0, window=window
            )
            current = current + other
        b.store("partials", tid, current)
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: each thread loads its whole window
        suffix from global memory and accumulates it directly (``window``
        loads per thread instead of a shared reduction tree)."""
        n, window, _ = self._check(params)
        b = KernelBuilder("reduce_stream", n)
        b.global_array("in_data", n)
        b.global_array("partials", n)
        tid = b.thread_idx_x()
        window_pos = tid % window
        acc = b.load("in_data", tid)
        for i in range(1, window):
            idx = b.minimum(tid + i, n - 1)
            val = b.load("in_data", idx)
            in_window = window_pos < (window - i)
            acc = acc + b.select(in_window, val, 0.0)
        b.store("partials", tid, acc)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n, window, levels = self._check(params)
        b = KernelBuilder("reduce_mt", n)
        b.global_array("in_data", n)
        b.global_array("partials", n)
        for level in range(levels):
            b.scratch_array(f"level{level}", n)
        tid = b.thread_idx_x()
        current = b.load("in_data", tid)
        ack = b.scratch_store("level0", tid, current)
        bar = b.barrier(ack)
        window_pos = tid % window
        for level in range(levels):
            distance = 1 << level
            partner_idx = b.minimum(tid + distance, n - 1)
            partner = b.scratch_load(f"level{level}", partner_idx, order=bar)
            in_window = window_pos < (window - distance)
            addend = b.select(in_window, partner, 0.0)
            current = current + addend
            if level + 1 < levels:
                ack = b.scratch_store(f"level{level + 1}", tid, current)
                bar = b.barrier(ack)
        b.store("partials", tid, current)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        n, window, _ = self._check(params)
        b = SimtProgramBuilder("reduce_fermi", n)
        b.global_array("in_data", n)
        b.global_array("partials", n)
        b.shared_array("temp", 2 * n)

        tid = b.tid_linear()
        value = b.ld_global("in_data", tid)
        pout = b.mov(Imm(0))
        pin = b.mov(Imm(n))
        first_idx = b.add(pout, tid)
        b.st_shared("temp", first_idx, value)
        b.barrier()
        window_pos = b.mod(tid, Imm(window))

        d = b.mov(Imm(1))
        b.label("reduce_loop")
        swap = b.mov(pout)
        b.mov(pin, dst=pout)
        b.mov(swap, dst=pin)
        self_idx = b.add(pin, tid)
        own = b.ld_shared("temp", self_idx)
        partner_pos = b.add(tid, d)
        partner_pos = b.minimum(partner_pos, Imm(n - 1))
        partner_idx = b.add(pin, partner_pos)
        partner = b.ld_shared("temp", partner_idx)
        limit = b.sub(Imm(window), d)
        in_window = b.setp(Op.SETP_LT, window_pos, limit)
        addend = b.select(in_window, partner, Imm(0.0))
        total = b.add(own, addend)
        out_idx = b.add(pout, tid)
        b.st_shared("temp", out_idx, total)
        b.barrier()
        b.mul(d, Imm(2), dst=d)
        again = b.setp(Op.SETP_LT, d, Imm(window))
        b.branch("reduce_loop", guard=again)

        result_idx = b.add(pout, tid)
        result = b.ld_shared("temp", result_idx)
        b.st_global("partials", tid, result)
        return b.finish()
