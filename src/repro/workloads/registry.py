"""Workload registry — the programmatic form of the paper's Table 3."""

from __future__ import annotations

from typing import Iterable

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.bpnn import BpnnWorkload
from repro.workloads.convolution import ConvolutionWorkload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.lud import LudWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.pathfinder import PathfinderWorkload
from repro.workloads.reduce import ReduceWorkload
from repro.workloads.scan import ScanWorkload
from repro.workloads.srad import SradWorkload

__all__ = ["WORKLOAD_CLASSES", "all_workloads", "get_workload", "workload_names", "table3"]

#: Table 3 order.
WORKLOAD_CLASSES: tuple[type[Workload], ...] = (
    ScanWorkload,
    MatmulWorkload,
    ConvolutionWorkload,
    ReduceWorkload,
    LudWorkload,
    SradWorkload,
    BpnnWorkload,
    HotspotWorkload,
    PathfinderWorkload,
)


def all_workloads() -> list[Workload]:
    """Instantiate every Table 3 workload in table order."""
    return [cls() for cls in WORKLOAD_CLASSES]


def workload_names() -> list[str]:
    return [cls.name for cls in WORKLOAD_CLASSES]


def get_workload(name: str) -> Workload:
    """Look a workload up by its Table 3 application name."""
    for cls in WORKLOAD_CLASSES:
        if cls.name == name:
            return cls()
    raise WorkloadError(
        f"unknown workload '{name}'; available: {', '.join(workload_names())}"
    )


def table3(workloads: Iterable[Workload] | None = None) -> list[dict[str, str]]:
    """The rows of Table 3 (application, domain, kernel, description)."""
    return [w.table3_row() for w in (workloads or all_workloads())]
