"""Workload registry — the programmatic form of the paper's Table 3."""

from __future__ import annotations

from typing import Iterable

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.bpnn import BpnnWorkload
from repro.workloads.convolution import ConvolutionWorkload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.lud import LudWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.pathfinder import PathfinderWorkload
from repro.workloads.reduce import ReduceWorkload
from repro.workloads.scan import ScanWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.srad import SradWorkload

__all__ = [
    "WORKLOAD_CLASSES",
    "all_workloads",
    "available_variants",
    "get_workload",
    "paper_workloads",
    "registry_kernel_count",
    "registry_kernels",
    "table3",
    "workload_names",
]

#: Table 3 order, plus the registry extensions (spmv) after the paper's rows.
WORKLOAD_CLASSES: tuple[type[Workload], ...] = (
    ScanWorkload,
    MatmulWorkload,
    ConvolutionWorkload,
    ReduceWorkload,
    LudWorkload,
    SradWorkload,
    BpnnWorkload,
    HotspotWorkload,
    PathfinderWorkload,
    SpmvWorkload,
)


def all_workloads() -> list[Workload]:
    """Instantiate every registry workload in table order."""
    return [cls() for cls in WORKLOAD_CLASSES]


def paper_workloads() -> list[Workload]:
    """The paper's own Table 3 rows (registry extensions excluded).

    Differential sweeps and CI gates cover :func:`all_workloads`; the
    paper-artifact renderers (Table 3, Fig. 5, the Fig. 11/12 suite)
    default to this subset so the reproduced figures keep the paper's
    exact inventory as the registry grows.
    """
    return [w for w in all_workloads() if w.suite != "Extension"]


def workload_names() -> list[str]:
    return [cls.name for cls in WORKLOAD_CLASSES]


def get_workload(name: str) -> Workload:
    """Look a workload up by its Table 3 application name."""
    for cls in WORKLOAD_CLASSES:
        if cls.name == name:
            return cls()
    raise WorkloadError(
        f"unknown workload '{name}'; available: {', '.join(workload_names())}"
    )


def available_variants(workload: Workload) -> tuple[str, ...]:
    """The dataflow-graph variants this workload declares.

    Every workload has ``mt`` and ``dmt``; ``dmt_win`` and ``stream``
    exist where the communication structure admits them (see
    :meth:`Workload.has_windowed_variant` / ``has_stream_variant``).
    This is the single source of truth for "how many kernels does the
    registry hold" — sweeps and gates must derive their expected counts
    from :func:`registry_kernels` instead of hard-coding them, so adding
    a variant can never silently shrink their coverage.
    """
    variants = ["mt", "dmt"]
    if workload.has_windowed_variant():
        variants.append("dmt_win")
    if workload.has_stream_variant():
        variants.append("stream")
    return tuple(variants)


def registry_kernels() -> list[tuple[Workload, str]]:
    """Every (workload, variant) kernel the registry declares, in order."""
    return [
        (workload, variant)
        for workload in all_workloads()
        for variant in available_variants(workload)
    ]


def registry_kernel_count() -> int:
    """Number of workload x variant kernels in the registry."""
    return len(registry_kernels())


def table3(workloads: Iterable[Workload] | None = None) -> list[dict[str, str]]:
    """The rows of Table 3 (application, domain, kernel, description)."""
    return [w.table3_row() for w in (workloads or paper_workloads())]
