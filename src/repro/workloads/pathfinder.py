"""Dynamic programming over a 2D grid (Rodinia ``pathfinder``).

Pathfinder sweeps a cost grid row by row: the running cost of column ``j``
after row ``r`` is ``wall[r][j]`` plus the minimum of the three running
costs of columns ``j-1``, ``j``, ``j+1`` after row ``r-1``.  Every row
therefore needs each thread to read its two horizontal neighbours'
previous results.

* Fermi: the running-cost row lives in a ping-pong shared-memory buffer
  with one barrier per row (the ``dynproc_kernel`` structure).
* MT-CGRA: the same per-row exchange through scratchpad buffers.
* dMT-CGRA: the per-row exchange becomes two ``fromThreadOrConst`` calls
  (ΔTID = ±1) per row, with a large constant standing in for the missing
  neighbour at the grid edges — no scratchpad, no barriers.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["PathfinderWorkload"]

#: Stand-in for "no neighbour" at the grid edges.
_EDGE_COST = 1.0e18


class PathfinderWorkload(Workload):
    """Shortest-path dynamic programming over a cost grid."""

    name = "pathfinder"
    domain = "Dynamic Programming"
    kernel_name = "dynproc_kernel"
    description = "Find the shortest path on a 2-D grid"
    suite = "Rodinia"

    def default_params(self) -> dict[str, Any]:
        return {"cols": 256, "rows": 6}

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        rows, cols = params["rows"], params["cols"]
        return {"wall": rng.uniform(0.0, 10.0, rows * cols)}

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        rows, cols = params["rows"], params["cols"]
        wall = np.asarray(inputs["wall"], dtype=float).reshape(rows, cols)
        running = wall[0].copy()
        for r in range(1, rows):
            left = np.concatenate(([_EDGE_COST], running[:-1]))
            right = np.concatenate((running[1:], [_EDGE_COST]))
            running = wall[r] + np.minimum(np.minimum(left, running), right)
        return {"result": running}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        rows, cols = params["rows"], params["cols"]
        b = KernelBuilder("pathfinder_dmt", cols)
        b.global_array("wall", rows * cols)
        b.global_array("result", cols)
        tid = b.thread_idx_x()
        running = b.load("wall", tid)
        for r in range(1, rows):
            b.tag_value(f"cost{r - 1}", running)
            left = b.from_thread_or_const(f"cost{r - 1}", -1, _EDGE_COST)
            right = b.from_thread_or_const(f"cost{r - 1}", +1, _EDGE_COST)
            best = b.minimum(b.minimum(left, running), right)
            step_cost = b.load("wall", b.const(r * cols) + tid)
            running = step_cost + best
        b.store("result", tid, running)
        return b.finish()

    # --------------------------------------------------------------- helpers
    def _cost_lattice(self, b: KernelBuilder, tid, cols: int, radius: int, depth: int):
        """Running costs recomputed from ``wall`` loads only (no exchange).

        ``lattice[r][o]`` is the running cost of column ``tid + o`` after
        row ``r``, computed entirely inside the owning thread: level 0 is
        the (clamped, edge-masked) wall row, and each later level applies
        the same ``wall + min(left, centre, right)`` recurrence as the
        communicating kernels — in the same operation order, so the
        values match the forwarded ones exactly.  Level ``r`` covers
        offsets ``|o| <= radius - r``; columns outside the grid carry
        ``_EDGE_COST`` so the shrinking cone never reads a real value it
        does not have.
        """

        def bounded(offset: int, value):
            if offset < 0:
                return b.select(tid >= -offset, value, _EDGE_COST)
            if offset > 0:
                return b.select(tid < (cols - offset), value, _EDGE_COST)
            return value

        def wall_at(row: int, offset: int):
            if offset == 0:
                index = tid
            else:
                index = b.minimum(b.maximum(tid + offset, 0), cols - 1)
            return b.load("wall", b.const(row * cols) + index)

        level = {o: bounded(o, wall_at(0, o)) for o in range(-radius, radius + 1)}
        lattice = [level]
        for r in range(1, depth + 1):
            width = radius - r
            prev = lattice[-1]
            level = {}
            for o in range(-width, width + 1):
                best = b.minimum(b.minimum(prev[o - 1], prev[o]), prev[o + 1])
                level[o] = bounded(o, wall_at(r, o) + best)
            lattice.append(level)
        return lattice

    # -------------------------------------------------------------- windowed
    def build_dmt_windowed(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Window-bounded dMT variant for multi-core sharding.

        The per-row ±1 exchange is bounded to windows of ``cols / 4``
        threads.  The one thread on each side of a window boundary cannot
        receive its neighbour's running cost (it is computed, not in
        memory), so it recomputes that single value from the wall loads
        via the dynamic-programming cone of :meth:`_cost_lattice` — the
        recomputation grows with ``rows^2`` but is independent of
        ``cols``, preserving the windowed kernel's O(1) communication
        distance.
        """
        rows, cols = params["rows"], params["cols"]
        window = self._window(cols)
        b = KernelBuilder("pathfinder_dmt_win", cols)
        b.global_array("wall", rows * cols)
        b.global_array("result", cols)
        tid = b.thread_idx_x()
        win_pos = tid % window
        lattice = (
            self._cost_lattice(b, tid, cols, rows - 1, rows - 2) if rows > 1 else []
        )
        running = b.load("wall", tid)
        for r in range(1, rows):
            b.tag_value(f"cost{r - 1}", running)
            left_elev = b.from_thread_or_const(
                f"cost{r - 1}", -1, _EDGE_COST, window=window
            )
            right_elev = b.from_thread_or_const(
                f"cost{r - 1}", +1, _EDGE_COST, window=window
            )
            left = b.select(win_pos.eq(0), lattice[r - 1][-1], left_elev)
            right = b.select(win_pos.eq(window - 1), lattice[r - 1][+1], right_elev)
            best = b.minimum(b.minimum(left, running), right)
            step_cost = b.load("wall", b.const(r * cols) + tid)
            running = step_cost + best
        b.store("result", tid, running)
        return b.finish()

    def _window(self, cols: int) -> int:
        if cols % 4 != 0 or cols < 8:
            raise WorkloadError(
                "pathfinder dmt_win requires cols divisible by 4 (window = cols / 4)"
            )
        return cols // 4

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: every thread recomputes its full
        dynamic-programming cone from the wall loads (O(rows^2) loads per
        thread instead of the per-row ±1 exchange)."""
        rows, cols = params["rows"], params["cols"]
        b = KernelBuilder("pathfinder_stream", cols)
        b.global_array("wall", rows * cols)
        b.global_array("result", cols)
        tid = b.thread_idx_x()
        lattice = self._cost_lattice(b, tid, cols, rows - 1, rows - 1)
        b.store("result", tid, lattice[rows - 1][0])
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        rows, cols = params["rows"], params["cols"]
        b = KernelBuilder("pathfinder_mt", cols)
        b.global_array("wall", rows * cols)
        b.global_array("result", cols)
        for r in range(rows - 1):
            b.scratch_array(f"row{r}", cols)
        tid = b.thread_idx_x()
        running = b.load("wall", tid)
        for r in range(1, rows):
            ack = b.scratch_store(f"row{r - 1}", tid, running)
            bar = b.barrier(ack)
            left_idx = b.maximum(tid - 1, 0)
            left_raw = b.scratch_load(f"row{r - 1}", left_idx, order=bar)
            left = b.select(tid > 0, left_raw, _EDGE_COST)
            right_idx = b.minimum(tid + 1, cols - 1)
            right_raw = b.scratch_load(f"row{r - 1}", right_idx, order=bar)
            right = b.select(tid < (cols - 1), right_raw, _EDGE_COST)
            best = b.minimum(b.minimum(left, running), right)
            step_cost = b.load("wall", b.const(r * cols) + tid)
            running = step_cost + best
        b.store("result", tid, running)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        rows, cols = params["rows"], params["cols"]
        b = SimtProgramBuilder("pathfinder_fermi", cols)
        b.global_array("wall", rows * cols)
        b.global_array("result", cols)
        b.shared_array("prev", 2 * cols)

        tid = b.tid_linear()
        running = b.ld_global("wall", tid)
        pout = b.mov(Imm(0))
        pin = b.mov(Imm(cols))
        row = b.mov(Imm(1))
        first_idx = b.add(pout, tid)
        b.st_shared("prev", first_idx, running)
        b.barrier()

        not_first = b.setp(Op.SETP_GT, tid, Imm(0))
        not_last = b.setp(Op.SETP_LT, tid, Imm(cols - 1))

        b.label("row_loop")
        swap = b.mov(pout)
        b.mov(pin, dst=pout)
        b.mov(swap, dst=pin)
        centre_idx = b.add(pin, tid)
        centre = b.ld_shared("prev", centre_idx)
        left_pos = b.maximum(b.sub(tid, Imm(1)), Imm(0))
        left_idx = b.add(pin, left_pos)
        left_raw = b.ld_shared("prev", left_idx)
        left = b.select(not_first, left_raw, Imm(_EDGE_COST))
        right_pos = b.minimum(b.add(tid, Imm(1)), Imm(cols - 1))
        right_idx = b.add(pin, right_pos)
        right_raw = b.ld_shared("prev", right_idx)
        right = b.select(not_last, right_raw, Imm(_EDGE_COST))
        best = b.minimum(b.minimum(left, centre), right)
        wall_idx = b.mad(row, Imm(cols), tid)
        step_cost = b.ld_global("wall", wall_idx)
        new_cost = b.add(step_cost, best)
        out_idx = b.add(pout, tid)
        b.st_shared("prev", out_idx, new_cost)
        b.barrier()
        b.add(row, Imm(1), dst=row)
        again = b.setp(Op.SETP_LT, row, Imm(rows))
        b.branch("row_loop", guard=again)

        final_idx = b.add(pout, tid)
        final = b.ld_shared("prev", final_idx)
        b.st_global("result", tid, final)
        return b.finish()
