"""Sparse matrix-vector multiplication (CSR, padded rows).

``y = A @ x`` with ``A`` stored row-padded CSR: every row owns
``max_nnz`` value/column slots of which the first ``row_len[r]`` are
real.  The thread block is two-dimensional, ``(max_nnz, rows)``: thread
``(tx, ty)`` owns slot ``tx`` of row ``ty``, computes the product
``vals[ty][tx] * x[col_idx[ty][tx]]`` (zero for padding slots) and the
products of each row are reduced with the same windowed doubling tree as
the ``reduce`` workload, so every thread stores its suffix partial and
the slot-0 thread of each row holds the row's dot product.

What makes this workload different from the rest of the registry is the
gather ``x[col_idx[...]]``: the index of one global load is itself the
result of another global load.  The batched engines cannot prove a
static per-thread replay order for such an access stream (the analyzer's
RA042 diagnostic) and fall back to per-node replay — spmv exists
precisely to keep that fallback path covered by a registry workload.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import DType
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["SpmvWorkload"]


class SpmvWorkload(Workload):
    """Row-padded CSR sparse matrix-vector product with per-row reduction."""

    name = "spmv"
    domain = "Sparse Linear Algebra"
    kernel_name = "spmv_csr"
    description = "Sparse matrix-vector multiplication"
    suite = "Extension"

    def default_params(self) -> dict[str, Any]:
        return {"rows": 32, "max_nnz": 8}

    def _check(self, params: Mapping[str, Any]) -> tuple[int, int, int]:
        rows, max_nnz = params["rows"], params["max_nnz"]
        levels = int(np.log2(max_nnz))
        if 2 ** levels != max_nnz or max_nnz < 2:
            raise WorkloadError("spmv requires a power-of-two max_nnz >= 2")
        return rows, max_nnz, levels

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        rows, max_nnz, _ = self._check(params)
        return {
            "row_len": rng.integers(0, max_nnz + 1, rows),
            "col_idx": rng.integers(0, rows, rows * max_nnz),
            "vals": rng.uniform(-1.0, 1.0, rows * max_nnz),
            "x": rng.uniform(-1.0, 1.0, rows),
        }

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        rows, max_nnz, _ = self._check(params)
        lens = np.asarray(inputs["row_len"]).astype(int)
        cols = np.asarray(inputs["col_idx"]).astype(int).reshape(rows, max_nnz)
        vals = np.asarray(inputs["vals"], dtype=float).reshape(rows, max_nnz)
        x = np.asarray(inputs["x"], dtype=float)
        mask = np.arange(max_nnz)[None, :] < lens[:, None]
        products = np.where(mask, vals * x[cols], 0.0)
        suffix = np.cumsum(products[:, ::-1], axis=1)[:, ::-1]
        return {"partial": suffix.ravel()}

    # --------------------------------------------------------------- helpers
    def _product(self, b: KernelBuilder):
        """The per-thread masked product, shared by the graph variants."""
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        length = b.load("row_len", ty)
        col = b.load("col_idx", tid)
        value = b.load("vals", tid)
        gathered = b.load("x", col)  # data-dependent index: the RA042 gather
        return tx, ty, tid, b.select(tx < length, value * gathered, 0.0)

    def _declare_arrays(self, b, rows: int, max_nnz: int) -> None:
        b.global_array("row_len", rows, dtype=DType.I32)
        b.global_array("col_idx", rows * max_nnz, dtype=DType.I32)
        b.global_array("vals", rows * max_nnz)
        b.global_array("x", rows)
        b.global_array("partial", rows * max_nnz)

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        rows, max_nnz, levels = self._check(params)
        b = KernelBuilder("spmv_dmt", (max_nnz, rows))
        self._declare_arrays(b, rows, max_nnz)
        _, _, tid, current = self._product(b)
        for level in range(levels):
            distance = 1 << level
            b.tag_value(f"partial{level}", current)
            other = b.from_thread_or_const(
                f"partial{level}", (+distance, 0), 0.0, window=max_nnz
            )
            current = current + other
        b.store("partial", tid, current)
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: every thread gathers and sums its
        whole row suffix itself (``max_nnz`` gather pairs per thread)."""
        rows, max_nnz, _ = self._check(params)
        b = KernelBuilder("spmv_stream", (max_nnz, rows))
        self._declare_arrays(b, rows, max_nnz)
        tx = b.thread_idx_x()
        tid = b.thread_idx_linear()
        length = b.load("row_len", b.thread_idx_y())
        acc = b.const(0.0)
        for i in range(max_nnz):
            # tx + i < length <= max_nnz keeps the slot inside this row,
            # so a single length test masks both padding and row overrun.
            idx = b.minimum(tid + i, rows * max_nnz - 1)
            col = b.load("col_idx", idx)
            value = b.load("vals", idx)
            gathered = b.load("x", col)
            acc = acc + b.select((tx + i) < length, value * gathered, 0.0)
        b.store("partial", tid, acc)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        rows, max_nnz, levels = self._check(params)
        total = rows * max_nnz
        b = KernelBuilder("spmv_mt", (max_nnz, rows))
        self._declare_arrays(b, rows, max_nnz)
        for level in range(levels):
            b.scratch_array(f"level{level}", total)
        tx, _, tid, current = self._product(b)
        ack = b.scratch_store("level0", tid, current)
        bar = b.barrier(ack)
        for level in range(levels):
            distance = 1 << level
            partner_idx = b.minimum(tid + distance, total - 1)
            partner = b.scratch_load(f"level{level}", partner_idx, order=bar)
            addend = b.select(tx < (max_nnz - distance), partner, 0.0)
            current = current + addend
            if level + 1 < levels:
                ack = b.scratch_store(f"level{level + 1}", tid, current)
                bar = b.barrier(ack)
        b.store("partial", tid, current)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        rows, max_nnz, _ = self._check(params)
        total = rows * max_nnz
        b = SimtProgramBuilder("spmv_fermi", (max_nnz, rows))
        b.global_array("row_len", rows, dtype=DType.I32)
        b.global_array("col_idx", total, dtype=DType.I32)
        b.global_array("vals", total)
        b.global_array("x", rows)
        b.global_array("partial", total)
        b.shared_array("temp", 2 * total)

        tx = b.tid_x()
        ty = b.tid_y()
        tid = b.tid_linear()
        length = b.ld_global("row_len", ty)
        col = b.ld_global("col_idx", tid)
        value = b.ld_global("vals", tid)
        gathered = b.ld_global("x", col)
        real = b.setp(Op.SETP_LT, tx, length)
        product = b.select(real, b.mul(value, gathered), Imm(0.0))

        pout = b.mov(Imm(0))
        pin = b.mov(Imm(total))
        first_idx = b.add(pout, tid)
        b.st_shared("temp", first_idx, product)
        b.barrier()

        d = b.mov(Imm(1))
        b.label("spmv_loop")
        swap = b.mov(pout)
        b.mov(pin, dst=pout)
        b.mov(swap, dst=pin)
        self_idx = b.add(pin, tid)
        own = b.ld_shared("temp", self_idx)
        partner_pos = b.add(tid, d)
        partner_pos = b.minimum(partner_pos, Imm(total - 1))
        partner_idx = b.add(pin, partner_pos)
        partner = b.ld_shared("temp", partner_idx)
        limit = b.sub(Imm(max_nnz), d)
        in_window = b.setp(Op.SETP_LT, tx, limit)
        addend = b.select(in_window, partner, Imm(0.0))
        summed = b.add(own, addend)
        out_idx = b.add(pout, tid)
        b.st_shared("temp", out_idx, summed)
        b.barrier()
        b.mul(d, Imm(2), dst=d)
        again = b.setp(Op.SETP_LT, d, Imm(max_nnz))
        b.branch("spmv_loop", guard=again)

        result_idx = b.add(pout, tid)
        result = b.ld_shared("temp", result_idx)
        b.st_global("partial", tid, result)
        return b.finish()
