"""LU decomposition internal-block update (Rodinia ``lud_internal``).

The internal kernel of Rodinia's blocked LU decomposition updates the
trailing sub-matrix: ``A'[i][j] = A[i][j] - sum_k P[i][k] * Q[k][j]``,
where ``P`` is the already-factored perimeter column block and ``Q`` the
perimeter row block.  As the paper notes ("the LUD kernel in which we used
our implementation of matrix multiplication"), the dMT-CGRA variant reuses
the ``fromThreadOrMem`` forwarding structure of the matrix-multiplication
kernel, with an additional load and subtraction of the original block.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["LudWorkload"]


class LudWorkload(Workload):
    """Internal block update of a blocked LU decomposition."""

    name = "lud"
    domain = "Linear Algebra"
    kernel_name = "lud_internal"
    description = "Matrix decomposition"
    suite = "Rodinia"

    def default_params(self) -> dict[str, Any]:
        return {"dim": 12}

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        dim = params["dim"]
        return {
            "block": rng.uniform(-1.0, 1.0, dim * dim),
            "peri_col": rng.uniform(-1.0, 1.0, dim * dim),
            "peri_row": rng.uniform(-1.0, 1.0, dim * dim),
        }

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        dim = params["dim"]
        block = np.asarray(inputs["block"], dtype=float).reshape(dim, dim)
        pcol = np.asarray(inputs["peri_col"], dtype=float).reshape(dim, dim)
        prow = np.asarray(inputs["peri_row"], dtype=float).reshape(dim, dim)
        return {"updated": (block - pcol @ prow).ravel()}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim = params["dim"]
        b = KernelBuilder("lud_dmt", (dim, dim))
        b.global_array("block", dim * dim)
        b.global_array("peri_col", dim * dim)
        b.global_array("peri_row", dim * dim)
        b.global_array("updated", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        en_col = tx.eq(0)   # first thread of each row loads the perimeter column
        en_row = ty.eq(0)   # first thread of each column loads the perimeter row
        row_base = ty * dim

        acc = b.const(0.0)
        for k in range(dim):
            col_val = b.from_thread_or_mem(
                "peri_col", row_base + k, en_col, src_offset=(-1, 0)
            )
            row_val = b.from_thread_or_mem(
                "peri_row", b.const(k * dim) + tx, en_row, src_offset=(0, -1)
            )
            acc = b.fma(col_val, row_val, acc)
        original = b.load("block", tid)
        b.store("updated", tid, original - acc)
        return b.finish()

    # -------------------------------------------------------------- windowed
    def build_dmt_windowed(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Row-windowed dMT variant for multi-core sharding.

        Mirrors the matmul windowed kernel: the perimeter-column chain
        runs along rows (one window of ``dim`` linear TIDs per row, so a
        shard boundary between rows is legal), while the perimeter-row
        values — whose forwarding chain spans columns, i.e. the whole
        block in linear TID space — are loaded directly by every thread.
        """
        dim = params["dim"]
        b = KernelBuilder("lud_dmt_win", (dim, dim))
        b.global_array("block", dim * dim)
        b.global_array("peri_col", dim * dim)
        b.global_array("peri_row", dim * dim)
        b.global_array("updated", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        en_col = tx.eq(0)
        row_base = ty * dim

        acc = b.const(0.0)
        for k in range(dim):
            col_val = b.from_thread_or_mem(
                "peri_col", row_base + k, en_col, src_offset=(-1, 0), window=dim
            )
            row_val = b.load("peri_row", b.const(k * dim) + tx)
            acc = b.fma(col_val, row_val, acc)
        original = b.load("block", tid)
        b.store("updated", tid, original - acc)
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: every thread loads its full perimeter
        row and column itself (``2 * dim`` loads per thread, the naive
        kernel the forwarding optimisation starts from)."""
        dim = params["dim"]
        b = KernelBuilder("lud_stream", (dim, dim))
        b.global_array("block", dim * dim)
        b.global_array("peri_col", dim * dim)
        b.global_array("peri_row", dim * dim)
        b.global_array("updated", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        row_base = ty * dim
        acc = b.const(0.0)
        for k in range(dim):
            col_val = b.load("peri_col", row_base + k)
            row_val = b.load("peri_row", b.const(k * dim) + tx)
            acc = b.fma(col_val, row_val, acc)
        original = b.load("block", tid)
        b.store("updated", tid, original - acc)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim = params["dim"]
        b = KernelBuilder("lud_mt", (dim, dim))
        b.global_array("block", dim * dim)
        b.global_array("peri_col", dim * dim)
        b.global_array("peri_row", dim * dim)
        b.global_array("updated", dim * dim)
        b.scratch_array("shared_col", dim * dim)
        b.scratch_array("shared_row", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        col_elem = b.load("peri_col", tid)
        row_elem = b.load("peri_row", tid)
        ack_col = b.scratch_store("shared_col", tid, col_elem)
        ack_row = b.scratch_store("shared_row", tid, row_elem)
        bar = b.barrier(b.join(ack_col, ack_row))

        row_base = ty * dim
        acc = b.const(0.0)
        for k in range(dim):
            col_val = b.scratch_load("shared_col", row_base + k, order=bar)
            row_val = b.scratch_load("shared_row", b.const(k * dim) + tx, order=bar)
            acc = b.fma(col_val, row_val, acc)
        original = b.load("block", tid)
        b.store("updated", tid, original - acc)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        dim = params["dim"]
        b = SimtProgramBuilder("lud_fermi", (dim, dim))
        b.global_array("block", dim * dim)
        b.global_array("peri_col", dim * dim)
        b.global_array("peri_row", dim * dim)
        b.global_array("updated", dim * dim)
        b.shared_array("shared_col", dim * dim)
        b.shared_array("shared_row", dim * dim)

        tx = b.tid_x()
        ty = b.tid_y()
        tid = b.tid_linear()
        col_elem = b.ld_global("peri_col", tid)
        row_elem = b.ld_global("peri_row", tid)
        b.st_shared("shared_col", tid, col_elem)
        b.st_shared("shared_row", tid, row_elem)
        b.barrier()

        row_base = b.mul(ty, Imm(dim))
        acc = b.mov(Imm(0.0))
        k = b.mov(Imm(0))
        b.label("lud_loop")
        col_idx = b.add(row_base, k)
        col_val = b.ld_shared("shared_col", col_idx)
        row_idx = b.mad(k, Imm(dim), tx)
        row_val = b.ld_shared("shared_row", row_idx)
        b.fma(col_val, row_val, acc, dst=acc)
        b.add(k, Imm(1), dst=k)
        again = b.setp(Op.SETP_LT, k, Imm(dim))
        b.branch("lud_loop", guard=again)

        original = b.ld_global("block", tid)
        result = b.sub(original, acc)
        b.st_global("updated", tid, result)
        return b.finish()
