"""Table 3 workloads in Fermi / MT-CGRA / dMT-CGRA variants."""

from repro.workloads.base import ARCHITECTURES, PreparedWorkload, Workload
from repro.workloads.bpnn import BpnnWorkload
from repro.workloads.convolution import ConvolutionWorkload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.lud import LudWorkload
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.pathfinder import PathfinderWorkload
from repro.workloads.reduce import ReduceWorkload, windowed_partial_sums
from repro.workloads.registry import (
    WORKLOAD_CLASSES,
    all_workloads,
    available_variants,
    get_workload,
    paper_workloads,
    registry_kernel_count,
    registry_kernels,
    table3,
    workload_names,
)
from repro.workloads.scan import ScanWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.srad import SradWorkload

__all__ = [
    "ARCHITECTURES",
    "BpnnWorkload",
    "ConvolutionWorkload",
    "HotspotWorkload",
    "LudWorkload",
    "MatmulWorkload",
    "PathfinderWorkload",
    "PreparedWorkload",
    "ReduceWorkload",
    "ScanWorkload",
    "SpmvWorkload",
    "SradWorkload",
    "WORKLOAD_CLASSES",
    "Workload",
    "all_workloads",
    "available_variants",
    "get_workload",
    "paper_workloads",
    "registry_kernel_count",
    "registry_kernels",
    "table3",
    "windowed_partial_sums",
    "workload_names",
]
