"""Separable convolution (NVIDIA SDK ``convolutionRowGPU``).

The paper's running example (Fig. 1): a 1D 3-tap convolution row pass.

* The Fermi baseline stages the image row in shared memory, pads the
  margins, synchronises with a barrier and then convolves (Fig. 1b).
* The plain MT-CGRA variant uses the same scratchpad + barrier structure
  expressed as a dataflow graph.
* The dMT-CGRA variant loads each element exactly once and obtains the
  left/right neighbours directly from threads ``tid - 1`` and ``tid + 1``
  with ``fromThreadOrConst`` (Fig. 1c) — no scratchpad, no barrier, and no
  margin special-casing.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["ConvolutionWorkload"]


class ConvolutionWorkload(Workload):
    """1D 3-tap convolution with zero-padded margins."""

    name = "convolution"
    domain = "Linear Algebra"
    kernel_name = "convolutionRowGPU"
    description = "Convolution filter"
    suite = "NVIDIA SDK"

    def default_params(self) -> dict[str, Any]:
        return {"n": 256, "k0": 0.25, "k1": 0.5, "k2": 0.25}

    def make_inputs(
        self, params: Mapping[str, Any], rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        return {"img": rng.uniform(-1.0, 1.0, params["n"])}

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        img = np.asarray(inputs["img"], dtype=float)
        k0, k1, k2 = params["k0"], params["k1"], params["k2"]
        left = np.concatenate(([0.0], img[:-1]))
        right = np.concatenate((img[1:], [0.0]))
        return {"out": k0 * left + k1 * img + k2 * right}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n, k0, k1, k2 = params["n"], params["k0"], params["k1"], params["k2"]
        b = KernelBuilder("convolution_dmt", n)
        b.global_array("img", n)
        b.global_array("out", n)
        tid = b.thread_idx_x()
        elem = b.load("img", tid)
        b.tag_value("elem", elem)
        left = b.from_thread_or_const("elem", -1, 0.0)
        right = b.from_thread_or_const("elem", +1, 0.0)
        result = left * k0 + elem * k1 + right * k2
        b.store("out", tid, result)
        return b.finish()

    # -------------------------------------------------------------- windowed
    def build_dmt_windowed(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Window-bounded dMT variant for multi-core sharding.

        The ±1 neighbour exchange is bounded to windows of ``n / 4``
        threads; the one thread on each side of a window boundary
        re-loads the neighbour element the window cut off (zero-masked at
        the true margins, exactly like the streaming kernel).
        """
        n, k0, k1, k2 = params["n"], params["k0"], params["k1"], params["k2"]
        window = self._window(n)
        b = KernelBuilder("convolution_dmt_win", n)
        b.global_array("img", n)
        b.global_array("out", n)
        tid = b.thread_idx_x()
        elem = b.load("img", tid)
        b.tag_value("elem", elem)
        win_pos = tid % window

        left_elev = b.from_thread_or_const("elem", -1, 0.0, window=window)
        left_raw = b.load("img", b.maximum(tid - 1, 0))
        left_reload = b.select(tid > 0, left_raw, 0.0)
        left = b.select(win_pos.eq(0), left_reload, left_elev)

        right_elev = b.from_thread_or_const("elem", +1, 0.0, window=window)
        right_raw = b.load("img", b.minimum(tid + 1, n - 1))
        right_reload = b.select(tid < (n - 1), right_raw, 0.0)
        right = b.select(win_pos.eq(window - 1), right_reload, right_elev)

        result = left * k0 + elem * k1 + right * k2
        b.store("out", tid, result)
        return b.finish()

    def _window(self, n: int) -> int:
        if n % 4 != 0 or n < 8:
            raise WorkloadError(
                "convolution dmt_win requires n divisible by 4 (window = n / 4)"
            )
        return n // 4

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: each thread re-loads its neighbours
        from global memory (clamped indices, zero-masked margins) instead
        of receiving them from threads ``tid ± 1``."""
        n, k0, k1, k2 = params["n"], params["k0"], params["k1"], params["k2"]
        b = KernelBuilder("convolution_stream", n)
        b.global_array("img", n)
        b.global_array("out", n)
        tid = b.thread_idx_x()
        center = b.load("img", tid)

        left_idx = b.maximum(tid - 1, 0)
        left_raw = b.load("img", left_idx)
        left = b.select(tid > 0, left_raw, 0.0)
        right_idx = b.minimum(tid + 1, n - 1)
        right_raw = b.load("img", right_idx)
        right = b.select(tid < (n - 1), right_raw, 0.0)

        result = left * k0 + center * k1 + right * k2
        b.store("out", tid, result)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n, k0, k1, k2 = params["n"], params["k0"], params["k1"], params["k2"]
        b = KernelBuilder("convolution_mt", n)
        b.global_array("img", n)
        b.global_array("out", n)
        b.scratch_array("simg", n)
        tid = b.thread_idx_x()
        elem = b.load("img", tid)
        ack = b.scratch_store("simg", tid, elem)
        bar = b.barrier(ack)

        left_idx = b.maximum(tid - 1, 0)
        left_raw = b.scratch_load("simg", left_idx, order=bar)
        left = b.select(tid > 0, left_raw, 0.0)
        center = b.scratch_load("simg", tid, order=bar)
        right_idx = b.minimum(tid + 1, n - 1)
        right_raw = b.scratch_load("simg", right_idx, order=bar)
        right = b.select(tid < (n - 1), right_raw, 0.0)

        result = left * k0 + center * k1 + right * k2
        b.store("out", tid, result)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        n, k0, k1, k2 = params["n"], params["k0"], params["k1"], params["k2"]
        b = SimtProgramBuilder("convolution_fermi", n)
        b.global_array("img", n)
        b.global_array("out", n)
        b.shared_array("simg", n + 2)

        tid = b.tid_linear()
        value = b.ld_global("img", tid)
        shifted = b.add(tid, Imm(1))
        b.st_shared("simg", shifted, value)
        # Threads next to the margins pad the halo with zeros (Fig. 1b).
        first = b.setp(Op.SETP_EQ, tid, Imm(0))
        b.st_shared("simg", Imm(0), Imm(0.0), guard=first)
        last = b.setp(Op.SETP_EQ, tid, Imm(n - 1))
        b.st_shared("simg", Imm(n + 1), Imm(0.0), guard=last)
        b.barrier()

        left = b.ld_shared("simg", tid)
        center = b.ld_shared("simg", shifted)
        right_idx = b.add(tid, Imm(2))
        right = b.ld_shared("simg", right_idx)
        acc = b.mul(left, Imm(k0))
        acc = b.fma(center, Imm(k1), acc)
        acc = b.fma(right, Imm(k2), acc)
        b.st_global("out", tid, acc)
        return b.finish()
