"""Speckle Reducing Anisotropic Diffusion (Rodinia ``srad``).

One diffusion step on a ``dim x dim`` image: every thread owns one pixel,
computes the four directional derivatives against its N/S/W/E neighbours
(zero at the image boundary, i.e. reflective), derives a diffusion
coefficient from the normalised gradient magnitude and applies the update::

    dX  = neighbour_X - J          (0 at the boundary)
    G2  = (dN^2 + dS^2 + dW^2 + dE^2) / (J^2 + eps)
    c   = 1 / (1 + G2)
    out = J + 0.25 * lambda * c * (dN + dS + dW + dE)

The kernel keeps the structure of the Rodinia SRAD kernel (neighbour
exchange + per-pixel normalisation with a divide) while trimming the
statistics terms that do not affect the communication pattern.

* Fermi / MT-CGRA: the image tile is staged in shared memory, one barrier,
  then each thread reads its four neighbours from the scratchpad.
* dMT-CGRA: each thread loads only its own pixel and receives the four
  neighbours through ``fromThreadOrConst`` with 2D ΔTIDs.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op, Pred
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.kernel.values import Value
from repro.workloads.base import Workload

__all__ = ["SradWorkload"]

_EPS = 1e-6


class SradWorkload(Workload):
    """One SRAD diffusion step on a square image."""

    name = "srad"
    domain = "Ultrasonic/Radar Imaging"
    kernel_name = "srad"
    description = "Speckle Reducing Anisotropic Diffusion"
    suite = "Rodinia"

    def default_params(self) -> dict[str, Any]:
        return {"dim": 16, "lam": 0.5}

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        dim = params["dim"]
        return {"image": rng.uniform(0.5, 2.0, dim * dim)}

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        dim, lam = params["dim"], params["lam"]
        img = np.asarray(inputs["image"], dtype=float).reshape(dim, dim)

        def shifted(dy: int, dx: int) -> np.ndarray:
            out = img.copy()
            src = np.roll(img, shift=(dy, dx), axis=(0, 1))
            valid = np.ones_like(img, dtype=bool)
            if dy == 1:
                valid[0, :] = False
            if dy == -1:
                valid[-1, :] = False
            if dx == 1:
                valid[:, 0] = False
            if dx == -1:
                valid[:, -1] = False
            out = np.where(valid, src, img)
            return out

        d_n = shifted(1, 0) - img
        d_s = shifted(-1, 0) - img
        d_w = shifted(0, 1) - img
        d_e = shifted(0, -1) - img
        g2 = (d_n**2 + d_s**2 + d_w**2 + d_e**2) / (img**2 + _EPS)
        c = 1.0 / (1.0 + g2)
        out = img + 0.25 * lam * c * (d_n + d_s + d_w + d_e)
        return {"out": out.ravel()}

    # --------------------------------------------------------------- helpers
    def _update(self, b: KernelBuilder, center: Value, diffs: list[Value], lam: float) -> Value:
        sum_d = diffs[0] + diffs[1] + diffs[2] + diffs[3]
        g2_num = (
            diffs[0] * diffs[0] + diffs[1] * diffs[1] + diffs[2] * diffs[2] + diffs[3] * diffs[3]
        )
        g2 = g2_num / (center * center + _EPS)
        c = b.rcp(g2 + 1.0)
        return center + c * sum_d * (0.25 * lam)

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim, lam = params["dim"], params["lam"]
        b = KernelBuilder("srad_dmt", (dim, dim))
        b.global_array("image", dim * dim)
        b.global_array("out", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        center = b.load("image", tid)
        b.tag_value("pixel", center)

        neighbours = {
            "n": ((0, -1), ty > 0),
            "s": ((0, +1), ty < (dim - 1)),
            "w": ((-1, 0), tx > 0),
            "e": ((+1, 0), tx < (dim - 1)),
        }
        diffs = []
        for _, (offset, in_bounds) in neighbours.items():
            remote = b.from_thread_or_const("pixel", offset, 0.0)
            diffs.append(b.select(in_bounds, remote - center, 0.0))
        b.store("out", tid, self._update(b, center, diffs, lam))
        return b.finish()

    # -------------------------------------------------------------- windowed
    def build_dmt_windowed(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Row-windowed dMT variant for multi-core sharding.

        Same structure as hotspot's windowed kernel: the W/E exchange
        keeps ``fromThreadOrConst`` with a window of one image row (the
        window edges coincide with the image edges, where the in-bounds
        selects discard the value anyway) and the N/S exchange becomes a
        clamped re-load of the neighbour's pixel.
        """
        dim, lam = params["dim"], params["lam"]
        b = KernelBuilder("srad_dmt_win", (dim, dim))
        b.global_array("image", dim * dim)
        b.global_array("out", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        center = b.load("image", tid)
        b.tag_value("pixel", center)

        def reloaded(index, in_bounds):
            clamped = b.minimum(b.maximum(index, 0), dim * dim - 1)
            remote = b.load("image", clamped)
            return b.select(in_bounds, remote - center, 0.0)

        def forwarded(offset: tuple[int, int], in_bounds):
            remote = b.from_thread_or_const("pixel", offset, 0.0, window=dim)
            return b.select(in_bounds, remote - center, 0.0)

        diffs = [
            reloaded(tid - dim, ty > 0),
            reloaded(tid + dim, ty < (dim - 1)),
            forwarded((-1, 0), tx > 0),
            forwarded((+1, 0), tx < (dim - 1)),
        ]
        b.store("out", tid, self._update(b, center, diffs, lam))
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: all four neighbour pixels are
        re-loaded from global memory with clamped indices instead of being
        received from adjacent threads."""
        dim, lam = params["dim"], params["lam"]
        b = KernelBuilder("srad_stream", (dim, dim))
        b.global_array("image", dim * dim)
        b.global_array("out", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        center = b.load("image", tid)

        neighbours = {
            "n": (tid - dim, ty > 0),
            "s": (tid + dim, ty < (dim - 1)),
            "w": (tid - 1, tx > 0),
            "e": (tid + 1, tx < (dim - 1)),
        }
        diffs = []
        for _, (index, in_bounds) in neighbours.items():
            clamped = b.minimum(b.maximum(index, 0), dim * dim - 1)
            remote = b.load("image", clamped)
            diffs.append(b.select(in_bounds, remote - center, 0.0))
        b.store("out", tid, self._update(b, center, diffs, lam))
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim, lam = params["dim"], params["lam"]
        b = KernelBuilder("srad_mt", (dim, dim))
        b.global_array("image", dim * dim)
        b.global_array("out", dim * dim)
        b.scratch_array("tile", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        center = b.load("image", tid)
        bar = b.barrier(b.scratch_store("tile", tid, center))

        neighbours = {
            "n": (tid - dim, ty > 0),
            "s": (tid + dim, ty < (dim - 1)),
            "w": (tid - 1, tx > 0),
            "e": (tid + 1, tx < (dim - 1)),
        }
        diffs = []
        for _, (index, in_bounds) in neighbours.items():
            clamped = b.minimum(b.maximum(index, 0), dim * dim - 1)
            remote = b.scratch_load("tile", clamped, order=bar)
            diffs.append(b.select(in_bounds, remote - center, 0.0))
        b.store("out", tid, self._update(b, center, diffs, lam))
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        dim, lam = params["dim"], params["lam"]
        b = SimtProgramBuilder("srad_fermi", (dim, dim))
        b.global_array("image", dim * dim)
        b.global_array("out", dim * dim)
        b.shared_array("tile", dim * dim)

        tx = b.tid_x()
        ty = b.tid_y()
        tid = b.tid_linear()
        center = b.ld_global("image", tid)
        b.st_shared("tile", tid, center)
        b.barrier()

        def neighbour_diff(index_reg, predicate: Pred):
            clamped = b.maximum(index_reg, Imm(0))
            clamped = b.minimum(clamped, Imm(dim * dim - 1))
            remote = b.ld_shared("tile", clamped)
            diff = b.sub(remote, center)
            return b.select(predicate, diff, Imm(0.0))

        d_n = neighbour_diff(b.sub(tid, Imm(dim)), b.setp(Op.SETP_GT, ty, Imm(0)))
        d_s = neighbour_diff(b.add(tid, Imm(dim)), b.setp(Op.SETP_LT, ty, Imm(dim - 1)))
        d_w = neighbour_diff(b.sub(tid, Imm(1)), b.setp(Op.SETP_GT, tx, Imm(0)))
        d_e = neighbour_diff(b.add(tid, Imm(1)), b.setp(Op.SETP_LT, tx, Imm(dim - 1)))

        sum_d = b.add(b.add(d_n, d_s), b.add(d_w, d_e))
        g2 = b.mul(d_n, d_n)
        g2 = b.fma(d_s, d_s, g2)
        g2 = b.fma(d_w, d_w, g2)
        g2 = b.fma(d_e, d_e, g2)
        denom = b.fma(center, center, Imm(_EPS))
        g2 = b.div(g2, denom)
        c = b.rcp(b.add(g2, Imm(1.0)))
        update = b.mul(c, sum_d)
        update = b.mul(update, Imm(0.25 * lam))
        result = b.add(center, update)
        b.st_global("out", tid, result)
        return b.finish()
