"""Prefix sum (NVIDIA SDK ``scan_naive``).

* The Fermi baseline is the SDK's naive scan: ``log2(n)`` passes over a
  ping-pong shared-memory buffer with a barrier after every pass.
* The MT-CGRA variant expresses the same algorithm as a dataflow graph,
  with one single-assignment scratchpad buffer per pass (the access counts
  match the in-place ping-pong version; single assignment keeps the
  dataflow memory semantics race-free).
* The dMT-CGRA variant is the paper's Fig. 6: each thread adds its loaded
  element to the running sum received from thread ``tid - 1`` via
  ``fromThreadOrConst`` and forwards the new sum with ``tagValue`` — a pure
  producer/consumer chain with no scratchpad and no barrier.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["ScanWorkload"]


def _levels(n: int) -> int:
    levels = int(np.log2(n))
    if 2 ** levels != n:
        raise WorkloadError("scan requires a power-of-two problem size")
    return levels


class ScanWorkload(Workload):
    """Inclusive prefix sum of a 1D array."""

    name = "scan"
    domain = "Data-Parallel Algorithms"
    kernel_name = "scan_naive"
    description = "Prefix sum"
    suite = "NVIDIA SDK"

    def default_params(self) -> dict[str, Any]:
        return {"n": 256}

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        return {"in_data": rng.uniform(0.0, 1.0, params["n"])}

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        return {"prefix": np.cumsum(np.asarray(inputs["in_data"], dtype=float))}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n = params["n"]
        b = KernelBuilder("scan_dmt", n)
        b.global_array("in_data", n)
        b.global_array("prefix", n)
        tid = b.thread_idx_x()
        value = b.load("in_data", tid)
        running = b.from_thread_or_const("sum", -1, 0.0)
        total = running + value
        b.tag_value("sum", total)
        b.store("prefix", tid, total)
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: every thread loads the whole prefix
        itself and masks elements past its own position (O(n) loads per
        thread — the price of removing the running-sum recurrence, which
        is why the communicating variants exist).  The dMT recurrence
        itself is cyclic in thread order and can never be window-bounded,
        so this is scan's only batched-engine form."""
        n = params["n"]
        b = KernelBuilder("scan_stream", n)
        b.global_array("in_data", n)
        b.global_array("prefix", n)
        tid = b.thread_idx_x()
        # Every thread includes element 0; later elements are masked by
        # the thread's position so the sum order matches the reference.
        total = b.load("in_data", b.const(0))
        for k in range(1, n):
            value = b.load("in_data", b.const(k))
            total = total + b.select(tid >= k, value, 0.0)
        b.store("prefix", tid, total)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n = params["n"]
        levels = _levels(n)
        b = KernelBuilder("scan_mt", n)
        b.global_array("in_data", n)
        b.global_array("prefix", n)
        for level in range(levels):
            b.scratch_array(f"level{level}", n)
        tid = b.thread_idx_x()
        value = b.load("in_data", tid)
        ack = b.scratch_store("level0", tid, value)
        bar = b.barrier(ack)
        current = value
        for level in range(levels):
            distance = 1 << level
            partner_idx = b.maximum(tid - distance, 0)
            partner = b.scratch_load(f"level{level}", partner_idx, order=bar)
            addend = b.select(tid >= distance, partner, 0.0)
            current = current + addend
            if level + 1 < levels:
                ack = b.scratch_store(f"level{level + 1}", tid, current)
                bar = b.barrier(ack)
        b.store("prefix", tid, current)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        n = params["n"]
        _levels(n)
        b = SimtProgramBuilder("scan_fermi", n)
        b.global_array("in_data", n)
        b.global_array("prefix", n)
        b.shared_array("temp", 2 * n)

        tid = b.tid_linear()
        value = b.ld_global("in_data", tid)
        pout = b.mov(Imm(0))
        pin = b.mov(Imm(n))
        out_idx = b.add(pout, tid)
        b.st_shared("temp", out_idx, value)
        b.barrier()

        d = b.mov(Imm(1))
        b.label("scan_loop")
        # swap the ping-pong halves: pout <-> pin
        swap = b.mov(pout)
        b.mov(pin, dst=pout)
        b.mov(swap, dst=pin)
        self_idx = b.add(pin, tid)
        own = b.ld_shared("temp", self_idx)
        partner_pos = b.sub(tid, d)
        partner_pos = b.maximum(partner_pos, Imm(0))
        partner_idx = b.add(pin, partner_pos)
        partner = b.ld_shared("temp", partner_idx)
        has_partner = b.setp(Op.SETP_GE, tid, d)
        addend = b.select(has_partner, partner, Imm(0.0))
        total = b.add(own, addend)
        store_idx = b.add(pout, tid)
        b.st_shared("temp", store_idx, total)
        b.barrier()
        b.mul(d, Imm(2), dst=d)
        again = b.setp(Op.SETP_LT, d, Imm(n))
        b.branch("scan_loop", guard=again)

        final_idx = b.add(pout, tid)
        result = b.ld_shared("temp", final_idx)
        b.st_global("prefix", tid, result)
        return b.finish()
