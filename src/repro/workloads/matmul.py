"""Dense matrix multiplication (NVIDIA SDK ``matrixMul``).

``C = A x B`` with square ``dim x dim`` matrices and one thread per output
element, as in the paper's Fig. 2/3 example.

* The Fermi baseline copies both operands to shared memory, synchronises,
  and runs the dot-product loop from the scratchpad (Fig. 2a).
* The MT-CGRA variant expresses the same scratchpad algorithm as a
  dataflow graph.
* The dMT-CGRA variant uses ``fromThreadOrMem`` (Fig. 2b): only the first
  thread of each row/column issues the actual load, and every other thread
  receives the value forwarded through the eLDST units — reducing the
  number of global loads from ``2 * dim^3`` to ``2 * dim^2``.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["MatmulWorkload"]


class MatmulWorkload(Workload):
    """Square dense matrix multiplication, one thread per output element."""

    name = "matrixMul"
    domain = "Linear Algebra"
    kernel_name = "matrixMul"
    description = "Matrix multiplication"
    suite = "NVIDIA SDK"

    def default_params(self) -> dict[str, Any]:
        return {"dim": 16}

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        dim = params["dim"]
        return {
            "a": rng.uniform(-1.0, 1.0, dim * dim),
            "b": rng.uniform(-1.0, 1.0, dim * dim),
        }

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        dim = params["dim"]
        a = np.asarray(inputs["a"], dtype=float).reshape(dim, dim)
        b = np.asarray(inputs["b"], dtype=float).reshape(dim, dim)
        return {"c": (a @ b).ravel()}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim = params["dim"]
        b = KernelBuilder("matrixMul_dmt", (dim, dim))
        b.global_array("a", dim * dim)
        b.global_array("b", dim * dim)
        b.global_array("c", dim * dim)
        tx = b.thread_idx_x()  # output column
        ty = b.thread_idx_y()  # output row
        tid = b.thread_idx_linear()

        # Memory-access predicates (Fig. 2b): only the first column of
        # threads loads A, only the first row loads B.
        en_a = tx.eq(0)
        en_b = ty.eq(0)
        row_base = ty * dim

        acc = b.const(0.0)
        for i in range(dim):
            a_val = b.from_thread_or_mem(
                "a", row_base + i, en_a, src_offset=(-1, 0)
            )
            b_val = b.from_thread_or_mem(
                "b", b.const(i * dim) + tx, en_b, src_offset=(0, -1)
            )
            acc = b.fma(a_val, b_val, acc)
        b.store("c", tid, acc)
        return b.finish()

    # -------------------------------------------------------------- windowed
    def build_dmt_windowed(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Row-windowed dMT variant for multi-core sharding.

        The full dMT kernel forwards A along rows *and* B along columns;
        the column chains span the whole block in linear TID space, so no
        shard boundary is legal.  This variant keeps the row-wise A
        forwarding — one window of ``dim`` linear TIDs per matrix row,
        declared explicitly so the partition planner can cut between rows
        — and lets every thread load its own B column values (``dim^2 +
        dim^3`` loads instead of ``2*dim^2``; the halfway point between
        the streaming and the fully-forwarded kernel).
        """
        dim = params["dim"]
        b = KernelBuilder("matrixMul_dmt_win", (dim, dim))
        b.global_array("a", dim * dim)
        b.global_array("b", dim * dim)
        b.global_array("c", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        en_a = tx.eq(0)
        row_base = ty * dim

        acc = b.const(0.0)
        for i in range(dim):
            a_val = b.from_thread_or_mem(
                "a", row_base + i, en_a, src_offset=(-1, 0), window=dim
            )
            b_val = b.load("b", b.const(i * dim) + tx)
            acc = b.fma(a_val, b_val, acc)
        b.store("c", tid, acc)
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: every thread loads its full row of A
        and column of B itself (the naive ``2 * dim^3``-load kernel the
        paper's forwarding optimisation starts from)."""
        dim = params["dim"]
        b = KernelBuilder("matrixMul_stream", (dim, dim))
        b.global_array("a", dim * dim)
        b.global_array("b", dim * dim)
        b.global_array("c", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        row_base = ty * dim
        acc = b.const(0.0)
        for i in range(dim):
            a_val = b.load("a", row_base + i)
            b_val = b.load("b", b.const(i * dim) + tx)
            acc = b.fma(a_val, b_val, acc)
        b.store("c", tid, acc)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim = params["dim"]
        b = KernelBuilder("matrixMul_mt", (dim, dim))
        b.global_array("a", dim * dim)
        b.global_array("b", dim * dim)
        b.global_array("c", dim * dim)
        b.scratch_array("shared_a", dim * dim)
        b.scratch_array("shared_b", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        a_elem = b.load("a", tid)
        b_elem = b.load("b", tid)
        ack_a = b.scratch_store("shared_a", tid, a_elem)
        ack_b = b.scratch_store("shared_b", tid, b_elem)
        bar = b.barrier(b.join(ack_a, ack_b))

        row_base = ty * dim
        acc = b.const(0.0)
        for i in range(dim):
            a_val = b.scratch_load("shared_a", row_base + i, order=bar)
            b_val = b.scratch_load("shared_b", b.const(i * dim) + tx, order=bar)
            acc = b.fma(a_val, b_val, acc)
        b.store("c", tid, acc)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        dim = params["dim"]
        b = SimtProgramBuilder("matrixMul_fermi", (dim, dim))
        b.global_array("a", dim * dim)
        b.global_array("b", dim * dim)
        b.global_array("c", dim * dim)
        b.shared_array("shared_a", dim * dim)
        b.shared_array("shared_b", dim * dim)

        tx = b.tid_x()
        ty = b.tid_y()
        tid = b.tid_linear()
        a_elem = b.ld_global("a", tid)
        b_elem = b.ld_global("b", tid)
        b.st_shared("shared_a", tid, a_elem)
        b.st_shared("shared_b", tid, b_elem)
        b.barrier()

        row_base = b.mul(ty, Imm(dim))
        acc = b.mov(Imm(0.0))
        i = b.mov(Imm(0))
        b.label("dot_loop")
        a_idx = b.add(row_base, i)
        a_val = b.ld_shared("shared_a", a_idx)
        b_idx = b.mad(i, Imm(dim), tx)
        b_val = b.ld_shared("shared_b", b_idx)
        b.fma(a_val, b_val, acc, dst=acc)
        b.add(i, Imm(1), dst=i)
        again = b.setp(Op.SETP_LT, i, Imm(dim))
        b.branch("dot_loop", guard=again)

        b.st_global("c", tid, acc)
        return b.finish()
