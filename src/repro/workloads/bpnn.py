"""Neural-network layer forward pass (Rodinia ``backprop`` / ``layerforward``).

The kernel evaluates one fully-connected layer: each of the ``n_out``
output units receives ``sum_i input[i] * weight[i][j]`` squashed through a
sigmoid.  The thread block is two-dimensional, ``(n_out, n_in)``: thread
``(tx, ty)`` computes the product ``input[ty] * w[ty][tx]`` and the
products of each column ``tx`` are reduced along the ``ty`` dimension with
a doubling tree.

All three variants store, for every thread, the sigmoid of its partial
(suffix) sum, so the row ``ty == 0`` holds the layer's actual output and
the outputs of the three architectures are directly comparable.

The paper reports that this kernel *slows down* on dMT-CGRA (~40%): the
reduction chains communicate between adjacent threads, which serialises
the threads of each column and limits thread-level parallelism.  The
benchmark harness checks the sign of that effect.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["BpnnWorkload"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class BpnnWorkload(Workload):
    """Fully-connected layer forward pass with per-column reduction."""

    name = "bpnn"
    domain = "Pattern Recognition"
    kernel_name = "layerforward"
    description = "Training of a neural network"
    suite = "Rodinia"

    def default_params(self) -> dict[str, Any]:
        return {"n_in": 16, "n_out": 16}

    def _levels(self, n_in: int) -> int:
        levels = int(np.log2(n_in))
        if 2 ** levels != n_in:
            raise WorkloadError("bpnn requires a power-of-two input-layer size")
        return levels

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        n_in, n_out = params["n_in"], params["n_out"]
        return {
            "input_units": rng.uniform(-1.0, 1.0, n_in),
            "weights": rng.uniform(-0.5, 0.5, n_in * n_out),
        }

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        n_in, n_out = params["n_in"], params["n_out"]
        units = np.asarray(inputs["input_units"], dtype=float)
        weights = np.asarray(inputs["weights"], dtype=float).reshape(n_in, n_out)
        products = units[:, None] * weights           # [ty, tx]
        suffix = np.cumsum(products[::-1, :], axis=0)[::-1, :]
        return {"partial": _sigmoid(suffix).ravel()}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n_in, n_out = params["n_in"], params["n_out"]
        levels = self._levels(n_in)
        b = KernelBuilder("bpnn_dmt", (n_out, n_in))
        b.global_array("input_units", n_in)
        b.global_array("weights", n_in * n_out)
        b.global_array("partial", n_in * n_out)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        unit = b.load("input_units", ty)
        weight = b.load("weights", tid)
        current = unit * weight
        for level in range(levels):
            distance = 1 << level
            b.tag_value(f"partial{level}", current)
            other = b.from_thread_or_const(f"partial{level}", (0, +distance), 0.0)
            current = current + other
        activated = b.rcp(b.exp(-current) + 1.0)
        b.store("partial", tid, activated)
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: every thread accumulates its whole
        column suffix from global memory (``n_in`` load pairs per thread)
        instead of joining the doubling tree.  The tree itself spans the
        ``ty`` dimension of the block, so bpnn has no window-bounded dMT
        form — this is its only batched-engine variant."""
        n_in, n_out = params["n_in"], params["n_out"]
        b = KernelBuilder("bpnn_stream", (n_out, n_in))
        b.global_array("input_units", n_in)
        b.global_array("weights", n_in * n_out)
        b.global_array("partial", n_in * n_out)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        acc = b.load("input_units", ty) * b.load("weights", tid)
        for d in range(1, n_in):
            j = b.minimum(ty + d, n_in - 1)
            unit = b.load("input_units", j)
            weight = b.load("weights", j * n_out + tx)
            acc = acc + b.select(ty < (n_in - d), unit * weight, 0.0)
        activated = b.rcp(b.exp(-acc) + 1.0)
        b.store("partial", tid, activated)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        n_in, n_out = params["n_in"], params["n_out"]
        levels = self._levels(n_in)
        b = KernelBuilder("bpnn_mt", (n_out, n_in))
        b.global_array("input_units", n_in)
        b.global_array("weights", n_in * n_out)
        b.global_array("partial", n_in * n_out)
        for level in range(levels):
            b.scratch_array(f"level{level}", n_in * n_out)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()

        unit = b.load("input_units", ty)
        weight = b.load("weights", tid)
        current = unit * weight
        ack = b.scratch_store("level0", tid, current)
        bar = b.barrier(ack)
        total = n_in * n_out
        for level in range(levels):
            distance = 1 << level
            partner_idx = b.minimum(tid + distance * n_out, total - 1)
            partner = b.scratch_load(f"level{level}", partner_idx, order=bar)
            addend = b.select(ty < (n_in - distance), partner, 0.0)
            current = current + addend
            if level + 1 < levels:
                ack = b.scratch_store(f"level{level + 1}", tid, current)
                bar = b.barrier(ack)
        activated = b.rcp(b.exp(-current) + 1.0)
        b.store("partial", tid, activated)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        n_in, n_out = params["n_in"], params["n_out"]
        self._levels(n_in)
        total = n_in * n_out
        b = SimtProgramBuilder("bpnn_fermi", (n_out, n_in))
        b.global_array("input_units", n_in)
        b.global_array("weights", n_in * n_out)
        b.global_array("partial", n_in * n_out)
        b.shared_array("temp", 2 * total)

        tx = b.tid_x()
        ty = b.tid_y()
        tid = b.tid_linear()
        unit = b.ld_global("input_units", ty)
        weight = b.ld_global("weights", tid)
        product = b.mul(unit, weight)
        pout = b.mov(Imm(0))
        pin = b.mov(Imm(total))
        first_idx = b.add(pout, tid)
        b.st_shared("temp", first_idx, product)
        b.barrier()

        d = b.mov(Imm(1))
        b.label("bpnn_loop")
        swap = b.mov(pout)
        b.mov(pin, dst=pout)
        b.mov(swap, dst=pin)
        self_idx = b.add(pin, tid)
        own = b.ld_shared("temp", self_idx)
        partner_pos = b.mad(d, Imm(n_out), tid)
        partner_pos = b.minimum(partner_pos, Imm(total - 1))
        partner_idx = b.add(pin, partner_pos)
        partner = b.ld_shared("temp", partner_idx)
        limit = b.sub(Imm(n_in), d)
        in_range = b.setp(Op.SETP_LT, ty, limit)
        addend = b.select(in_range, partner, Imm(0.0))
        sum_val = b.add(own, addend)
        out_idx = b.add(pout, tid)
        b.st_shared("temp", out_idx, sum_val)
        b.barrier()
        b.mul(d, Imm(2), dst=d)
        again = b.setp(Op.SETP_LT, d, Imm(n_in))
        b.branch("bpnn_loop", guard=again)

        final_idx = b.add(pout, tid)
        final = b.ld_shared("temp", final_idx)
        negated = b.neg(final)
        expo = b.exp(negated)
        denom = b.add(expo, Imm(1.0))
        activated = b.rcp(denom)
        b.st_global("partial", tid, activated)
        return b.finish()
