"""Thermal simulation (Rodinia ``hotspot_kernel``).

One explicit time step of the HotSpot thermal model on a ``dim x dim``
grid: every thread owns one cell and combines its own temperature, the
dissipated power and the temperatures of its four neighbours::

    dN = T[y-1][x] - T     (0 at the boundary: adiabatic edges)
    ...
    out = T + step * (P + (dN + dS) * Ry + (dE + dW) * Rx + (amb - T) * Rz)

The communication pattern is the same four-neighbour exchange as SRAD,
but with two input arrays (temperature and power) and a purely linear
update, so the dMT-CGRA variant combines ``fromThreadOrConst`` neighbour
exchange with an extra global load per thread.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.graph.dfg import DataflowGraph
from repro.gpgpu.isa import Imm, Op, Pred
from repro.gpgpu.program import SimtProgram, SimtProgramBuilder
from repro.kernel.builder import KernelBuilder
from repro.workloads.base import Workload

__all__ = ["HotspotWorkload"]


class HotspotWorkload(Workload):
    """One explicit step of the HotSpot thermal simulation."""

    name = "hotspot"
    domain = "Physics Simulation"
    kernel_name = "hotspot_kernel"
    description = "Thermal simulation tool"
    suite = "Rodinia"

    def default_params(self) -> dict[str, Any]:
        return {
            "dim": 16,
            "step": 0.5,
            "rx": 0.1,
            "ry": 0.1,
            "rz": 0.05,
            "ambient": 80.0,
        }

    def make_inputs(self, params, rng) -> dict[str, np.ndarray]:
        dim = params["dim"]
        return {
            "temp": rng.uniform(70.0, 90.0, dim * dim),
            "power": rng.uniform(0.0, 1.0, dim * dim),
        }

    def reference(self, params, inputs) -> dict[str, np.ndarray]:
        dim = params["dim"]
        step, rx, ry, rz = params["step"], params["rx"], params["ry"], params["rz"]
        ambient = params["ambient"]
        temp = np.asarray(inputs["temp"], dtype=float).reshape(dim, dim)
        power = np.asarray(inputs["power"], dtype=float).reshape(dim, dim)

        padded = np.pad(temp, 1, mode="edge")
        d_n = padded[:-2, 1:-1] - temp
        d_s = padded[2:, 1:-1] - temp
        d_w = padded[1:-1, :-2] - temp
        d_e = padded[1:-1, 2:] - temp
        out = temp + step * (
            power + (d_n + d_s) * ry + (d_e + d_w) * rx + (ambient - temp) * rz
        )
        return {"out": out.ravel()}

    # ------------------------------------------------------------------- dMT
    def build_dmt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim = params["dim"]
        step, rx, ry, rz = params["step"], params["rx"], params["ry"], params["rz"]
        ambient = params["ambient"]
        b = KernelBuilder("hotspot_dmt", (dim, dim))
        b.global_array("temp", dim * dim)
        b.global_array("power", dim * dim)
        b.global_array("out", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        centre = b.load("temp", tid)
        dissipated = b.load("power", tid)
        b.tag_value("cell_temp", centre)

        def diff(offset: tuple[int, int], in_bounds):
            remote = b.from_thread_or_const("cell_temp", offset, 0.0)
            return b.select(in_bounds, remote - centre, 0.0)

        d_n = diff((0, -1), ty > 0)
        d_s = diff((0, +1), ty < (dim - 1))
        d_w = diff((-1, 0), tx > 0)
        d_e = diff((+1, 0), tx < (dim - 1))

        delta = (
            dissipated
            + (d_n + d_s) * ry
            + (d_e + d_w) * rx
            + (b.const(ambient) - centre) * rz
        )
        b.store("out", tid, centre + delta * step)
        return b.finish()

    # -------------------------------------------------------------- windowed
    def build_dmt_windowed(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Row-windowed dMT variant for multi-core sharding.

        The stencil windows naturally at row granularity: the horizontal
        (W/E) exchange stays ``fromThreadOrConst`` with a window of one
        grid row — the window edges coincide with the grid edges, where
        the in-bounds selects discard the value anyway — while the
        vertical (N/S) exchange, which crosses rows in linear TID space,
        becomes a clamped re-load of the neighbour's temperature.
        """
        dim = params["dim"]
        step, rx, ry, rz = params["step"], params["rx"], params["ry"], params["rz"]
        ambient = params["ambient"]
        b = KernelBuilder("hotspot_dmt_win", (dim, dim))
        b.global_array("temp", dim * dim)
        b.global_array("power", dim * dim)
        b.global_array("out", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        centre = b.load("temp", tid)
        dissipated = b.load("power", tid)
        b.tag_value("cell_temp", centre)

        def forwarded(offset: tuple[int, int], in_bounds):
            remote = b.from_thread_or_const("cell_temp", offset, 0.0, window=dim)
            return b.select(in_bounds, remote - centre, 0.0)

        def reloaded(index, in_bounds):
            clamped = b.minimum(b.maximum(index, 0), dim * dim - 1)
            remote = b.load("temp", clamped)
            return b.select(in_bounds, remote - centre, 0.0)

        d_n = reloaded(tid - dim, ty > 0)
        d_s = reloaded(tid + dim, ty < (dim - 1))
        d_w = forwarded((-1, 0), tx > 0)
        d_e = forwarded((+1, 0), tx < (dim - 1))

        delta = (
            dissipated
            + (d_n + d_s) * ry
            + (d_e + d_w) * rx
            + (b.const(ambient) - centre) * rz
        )
        b.store("out", tid, centre + delta * step)
        return b.finish()

    # ---------------------------------------------------------------- stream
    def build_stream(self, params: Mapping[str, Any]) -> DataflowGraph:
        """Inter-thread-free variant: all four neighbour temperatures are
        re-loaded from global memory with clamped indices instead of being
        received from adjacent threads."""
        dim = params["dim"]
        step, rx, ry, rz = params["step"], params["rx"], params["ry"], params["rz"]
        ambient = params["ambient"]
        b = KernelBuilder("hotspot_stream", (dim, dim))
        b.global_array("temp", dim * dim)
        b.global_array("power", dim * dim)
        b.global_array("out", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        centre = b.load("temp", tid)
        dissipated = b.load("power", tid)

        def diff(index, in_bounds):
            clamped = b.minimum(b.maximum(index, 0), dim * dim - 1)
            remote = b.load("temp", clamped)
            return b.select(in_bounds, remote - centre, 0.0)

        d_n = diff(tid - dim, ty > 0)
        d_s = diff(tid + dim, ty < (dim - 1))
        d_w = diff(tid - 1, tx > 0)
        d_e = diff(tid + 1, tx < (dim - 1))

        delta = (
            dissipated
            + (d_n + d_s) * ry
            + (d_e + d_w) * rx
            + (b.const(ambient) - centre) * rz
        )
        b.store("out", tid, centre + delta * step)
        return b.finish()

    # -------------------------------------------------------------------- MT
    def build_mt(self, params: Mapping[str, Any]) -> DataflowGraph:
        dim = params["dim"]
        step, rx, ry, rz = params["step"], params["rx"], params["ry"], params["rz"]
        ambient = params["ambient"]
        b = KernelBuilder("hotspot_mt", (dim, dim))
        b.global_array("temp", dim * dim)
        b.global_array("power", dim * dim)
        b.global_array("out", dim * dim)
        b.scratch_array("tile", dim * dim)
        tx = b.thread_idx_x()
        ty = b.thread_idx_y()
        tid = b.thread_idx_linear()
        centre = b.load("temp", tid)
        dissipated = b.load("power", tid)
        bar = b.barrier(b.scratch_store("tile", tid, centre))

        def diff(index, in_bounds):
            clamped = b.minimum(b.maximum(index, 0), dim * dim - 1)
            remote = b.scratch_load("tile", clamped, order=bar)
            return b.select(in_bounds, remote - centre, 0.0)

        d_n = diff(tid - dim, ty > 0)
        d_s = diff(tid + dim, ty < (dim - 1))
        d_w = diff(tid - 1, tx > 0)
        d_e = diff(tid + 1, tx < (dim - 1))

        delta = (
            dissipated
            + (d_n + d_s) * ry
            + (d_e + d_w) * rx
            + (b.const(ambient) - centre) * rz
        )
        b.store("out", tid, centre + delta * step)
        return b.finish()

    # ----------------------------------------------------------------- Fermi
    def build_fermi(self, params: Mapping[str, Any]) -> SimtProgram:
        dim = params["dim"]
        step, rx, ry, rz = params["step"], params["rx"], params["ry"], params["rz"]
        ambient = params["ambient"]
        b = SimtProgramBuilder("hotspot_fermi", (dim, dim))
        b.global_array("temp", dim * dim)
        b.global_array("power", dim * dim)
        b.global_array("out", dim * dim)
        b.shared_array("tile", dim * dim)

        tx = b.tid_x()
        ty = b.tid_y()
        tid = b.tid_linear()
        centre = b.ld_global("temp", tid)
        dissipated = b.ld_global("power", tid)
        b.st_shared("tile", tid, centre)
        b.barrier()

        def diff(index_reg, predicate: Pred):
            clamped = b.maximum(index_reg, Imm(0))
            clamped = b.minimum(clamped, Imm(dim * dim - 1))
            remote = b.ld_shared("tile", clamped)
            delta = b.sub(remote, centre)
            return b.select(predicate, delta, Imm(0.0))

        d_n = diff(b.sub(tid, Imm(dim)), b.setp(Op.SETP_GT, ty, Imm(0)))
        d_s = diff(b.add(tid, Imm(dim)), b.setp(Op.SETP_LT, ty, Imm(dim - 1)))
        d_w = diff(b.sub(tid, Imm(1)), b.setp(Op.SETP_GT, tx, Imm(0)))
        d_e = diff(b.add(tid, Imm(1)), b.setp(Op.SETP_LT, tx, Imm(dim - 1)))

        vertical = b.mul(b.add(d_n, d_s), Imm(ry))
        horizontal = b.mul(b.add(d_e, d_w), Imm(rx))
        ambient_term = b.mul(b.sub(Imm(ambient), centre), Imm(rz))
        delta = b.add(dissipated, vertical)
        delta = b.add(delta, horizontal)
        delta = b.add(delta, ambient_term)
        result = b.fma(delta, Imm(step), centre)
        b.st_global("out", tid, result)
        return b.finish()
