"""Plain-text / markdown rendering of the evaluation artefacts.

The benchmark harness prints the same rows/series the paper reports:
Table 2 (configuration), Table 3 (benchmarks), Figure 5 (ΔTID CDF),
Figure 11 (speedups) and Figure 12 (energy efficiency).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.comparison import ComparisonTable
from repro.analysis.delta_cdf import TransmissionCdf

__all__ = [
    "format_table",
    "render_table3",
    "render_figure5",
    "render_figure11",
    "render_figure12",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    columns = (
        [list(map(str, col)) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    )
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt(row: Sequence[object]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table3(rows: Sequence[Mapping[str, str]]) -> str:
    """Render the Table 3 benchmark inventory."""
    return format_table(
        ["Application", "Application Domain", "Kernel", "Description"],
        [[r["application"], r["domain"], r["kernel"], r["description"]] for r in rows],
    )


def render_figure5(cdf: TransmissionCdf, buffer_size: int = 16) -> str:
    """Render the ΔTID CDF and the coverage of one token buffer."""
    rows = [[d, f"{frac:.3f}"] for d, frac in cdf.points()]
    table = format_table(["Transmission distance", "CDF"], rows)
    coverage = cdf.fraction_within(buffer_size)
    return (
        f"{table}\n"
        f"fraction of tokens with |dTID| <= {buffer_size}: {coverage:.2%} "
        f"(paper: 87% at 16)"
    )


def render_figure11(table: ComparisonTable) -> str:
    """Render per-kernel speedups over the Fermi baseline."""
    rows = []
    for row in table.rows:
        rows.append(
            [
                row.workload,
                f"{row.speedup('mt'):.2f}x",
                f"{row.speedup('dmt'):.2f}x",
            ]
        )
    rows.append(
        [
            "geomean",
            f"{table.geomean_speedup('mt'):.2f}x",
            f"{table.geomean_speedup('dmt'):.2f}x",
        ]
    )
    return format_table(["Benchmark", "MT-CGRA", "dMT-CGRA"], rows)


def render_figure12(table: ComparisonTable) -> str:
    """Render per-kernel energy efficiency over the Fermi baseline."""
    rows = []
    for row in table.rows:
        rows.append(
            [
                row.workload,
                f"{row.energy_efficiency('mt'):.2f}x",
                f"{row.energy_efficiency('dmt'):.2f}x",
            ]
        )
    rows.append(
        [
            "geomean",
            f"{table.geomean_energy_efficiency('mt'):.2f}x",
            f"{table.geomean_energy_efficiency('dmt'):.2f}x",
        ]
    )
    return format_table(["Benchmark", "MT-CGRA", "dMT-CGRA"], rows)
