"""Cross-architecture comparison metrics (Figs. 11 and 12).

Figure 11 reports per-kernel speedup of MT-CGRA and dMT-CGRA over the
Fermi SM; Figure 12 reports energy efficiency (Fermi energy divided by the
architecture's energy).  Both are summarised with the geometric mean, as
in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["geomean", "ArchitectureComparison", "ComparisonTable"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (returns 0.0 for an empty sequence)."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ArchitectureComparison:
    """One kernel's cycles and energy on every architecture."""

    workload: str
    cycles: dict[str, int] = field(default_factory=dict)
    energy_pj: dict[str, float] = field(default_factory=dict)

    def speedup(self, architecture: str, baseline: str = "fermi") -> float:
        return self.cycles[baseline] / self.cycles[architecture]

    def energy_efficiency(self, architecture: str, baseline: str = "fermi") -> float:
        return self.energy_pj[baseline] / self.energy_pj[architecture]


@dataclass
class ComparisonTable:
    """The full Figure 11 / Figure 12 data set."""

    rows: list[ArchitectureComparison] = field(default_factory=list)

    def add(self, comparison: ArchitectureComparison) -> None:
        self.rows.append(comparison)

    def workloads(self) -> list[str]:
        return [row.workload for row in self.rows]

    def row(self, workload: str) -> ArchitectureComparison:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(f"no comparison recorded for workload '{workload}'")

    # ------------------------------------------------------------------ Fig 11
    def speedups(self, architecture: str, baseline: str = "fermi") -> dict[str, float]:
        return {row.workload: row.speedup(architecture, baseline) for row in self.rows}

    def geomean_speedup(self, architecture: str, baseline: str = "fermi") -> float:
        return geomean(self.speedups(architecture, baseline).values())

    def max_speedup(self, architecture: str, baseline: str = "fermi") -> float:
        return max(self.speedups(architecture, baseline).values())

    # ------------------------------------------------------------------ Fig 12
    def energy_efficiencies(self, architecture: str, baseline: str = "fermi") -> dict[str, float]:
        return {
            row.workload: row.energy_efficiency(architecture, baseline) for row in self.rows
        }

    def geomean_energy_efficiency(self, architecture: str, baseline: str = "fermi") -> float:
        return geomean(self.energy_efficiencies(architecture, baseline).values())

    def max_energy_efficiency(self, architecture: str, baseline: str = "fermi") -> float:
        return max(self.energy_efficiencies(architecture, baseline).values())

    # ---------------------------------------------------------------- summary
    def summary(self) -> dict[str, float]:
        return {
            "geomean_speedup_mt": self.geomean_speedup("mt"),
            "geomean_speedup_dmt": self.geomean_speedup("dmt"),
            "max_speedup_dmt": self.max_speedup("dmt"),
            "geomean_efficiency_mt": self.geomean_energy_efficiency("mt"),
            "geomean_efficiency_dmt": self.geomean_energy_efficiency("dmt"),
            "max_efficiency_dmt": self.max_energy_efficiency("dmt"),
        }
