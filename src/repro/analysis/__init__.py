"""Analysis of simulation results: ΔTID CDF, speedups, energy, reports."""

from repro.analysis.comparison import ArchitectureComparison, ComparisonTable, geomean
from repro.analysis.delta_cdf import (
    DeltaSample,
    TransmissionCdf,
    build_cdf,
    collect_delta_samples,
)
from repro.analysis.report import (
    format_table,
    render_figure5,
    render_figure11,
    render_figure12,
    render_table3,
)

__all__ = [
    "ArchitectureComparison",
    "ComparisonTable",
    "DeltaSample",
    "TransmissionCdf",
    "build_cdf",
    "collect_delta_samples",
    "format_table",
    "geomean",
    "render_figure5",
    "render_figure11",
    "render_figure12",
    "render_table3",
]
