"""ΔTID transmission-distance analysis (paper Fig. 5).

Figure 5 plots the cumulative distribution of the transmission distances
(|ΔTID| in linear thread-ID space) over all communicated values of the
benchmark suite and observes that a 16-entry token buffer covers 87% of
them without cascading.  This module extracts the same distribution from
the dMT-CGRA kernel graphs: every elevator / eLDST node contributes one
sample per dynamic token it transfers (i.e. per consumer thread whose
producer exists), weighted accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graph.dfg import DataflowGraph
from repro.graph.interthread import eldst_source, elevator_source
from repro.graph.opcodes import Opcode

__all__ = ["DeltaSample", "TransmissionCdf", "collect_delta_samples", "build_cdf"]


@dataclass(frozen=True)
class DeltaSample:
    """One communication pattern: a distance and its dynamic token count."""

    kernel: str
    node_label: str
    distance: int
    tokens: int


@dataclass
class TransmissionCdf:
    """Cumulative distribution of transmission distances."""

    samples: list[DeltaSample]

    @property
    def total_tokens(self) -> int:
        return sum(s.tokens for s in self.samples)

    def points(self) -> list[tuple[int, float]]:
        """``(distance, cumulative fraction)`` points sorted by distance."""
        histogram: dict[int, int] = {}
        for sample in self.samples:
            histogram[sample.distance] = histogram.get(sample.distance, 0) + sample.tokens
        total = self.total_tokens
        points: list[tuple[int, float]] = []
        running = 0
        for distance in sorted(histogram):
            running += histogram[distance]
            points.append((distance, running / total if total else 0.0))
        return points

    def fraction_within(self, distance: int) -> float:
        """Fraction of communicated tokens with |ΔTID| <= ``distance``."""
        total = self.total_tokens
        if total == 0:
            return 0.0
        covered = sum(s.tokens for s in self.samples if s.distance <= distance)
        return covered / total

    def max_distance(self) -> int:
        return max((s.distance for s in self.samples), default=0)


def _dynamic_tokens(graph: DataflowGraph, node, source_fn) -> int:
    """Number of threads whose producer exists for this communication node."""
    block_dim = tuple(graph.metadata["block_dim"])
    num_threads = int(graph.metadata["num_threads"])
    return sum(
        1
        for tid in range(num_threads)
        if source_fn(node, tid, block_dim, num_threads) is not None
    )


def collect_delta_samples(graphs: Iterable[DataflowGraph]) -> list[DeltaSample]:
    """Extract one sample per inter-thread communication node of each graph."""
    samples: list[DeltaSample] = []
    for graph in graphs:
        for node in graph.nodes_with_opcode(Opcode.ELEVATOR):
            distance = abs(int(node.param("cascade_total_delta", node.param("delta"))))
            tokens = _dynamic_tokens(graph, node, elevator_source)
            samples.append(
                DeltaSample(
                    kernel=graph.name,
                    node_label=node.label(),
                    distance=distance,
                    tokens=tokens,
                )
            )
        for node in graph.nodes_with_opcode(Opcode.ELDST):
            distance = abs(int(node.param("delta")))
            tokens = _dynamic_tokens(graph, node, eldst_source)
            samples.append(
                DeltaSample(
                    kernel=graph.name,
                    node_label=node.label(),
                    distance=distance,
                    tokens=tokens,
                )
            )
    return samples


def build_cdf(graphs: Iterable[DataflowGraph] | Sequence[DataflowGraph]) -> TransmissionCdf:
    """Build the Fig. 5 CDF over a set of (uncompiled) dMT kernel graphs."""
    return TransmissionCdf(samples=collect_delta_samples(graphs))
