"""dMT-CGRA reproduction library.

A full-system Python reproduction of Voitsechov & Etsion, *Inter-thread
Communication in Multithreaded, Reconfigurable Coarse-grain Arrays*
(MICRO 2018): the programming-model extensions (``fromThreadOrConst``,
``tagValue``, ``fromThreadOrMem``), the compiler that lowers them to
elevator / eLDST nodes, cycle-level simulators for the MT-CGRA and
dMT-CGRA cores, a Fermi-like SIMT baseline, a GPUWattch-style energy
model, the Table 3 workloads in all three variants and the harness that
regenerates every table and figure of the paper's evaluation.

Typical use::

    from repro import KernelBuilder, compile_kernel, KernelLaunch, simulate

    builder = KernelBuilder("scan", 256)
    ...
    compiled = compile_kernel(builder.finish())
    result = simulate(compiled, KernelLaunch(compiled.graph, inputs))
    result.engine, result.cycles, result.array("out")
"""

from repro.compiler import CompiledKernel, CompilerOptions, compile_kernel
from repro.config import SystemConfig, default_system_config
from repro.errors import (
    CompilationError,
    ConfigurationError,
    DeadlockError,
    GraphError,
    GraphValidationError,
    KernelBuildError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.graph import DataflowGraph, DType, Opcode, UnitClass
from repro.harness import compare_architectures, run_suite, run_workload
from repro.kernel import KernelBuilder, ThreadGeometry
from repro.power import EnergyTable, cgra_energy, default_energy_table, fermi_energy
from repro.sim import (
    CycleResult,
    FunctionalResult,
    KernelLaunch,
    MulticoreResult,
    SimulationResult,
    run_batched,
    run_cycle_accurate,
    run_functional,
    run_multicore,
    run_sharded,
    simulate,
)
from repro.workloads import all_workloads, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "CompilationError",
    "CompiledKernel",
    "CompilerOptions",
    "ConfigurationError",
    "CycleResult",
    "DType",
    "DataflowGraph",
    "DeadlockError",
    "EnergyTable",
    "FunctionalResult",
    "GraphError",
    "GraphValidationError",
    "KernelBuildError",
    "KernelBuilder",
    "KernelLaunch",
    "MulticoreResult",
    "Opcode",
    "ReproError",
    "SimulationError",
    "SimulationResult",
    "SystemConfig",
    "ThreadGeometry",
    "UnitClass",
    "WorkloadError",
    "all_workloads",
    "cgra_energy",
    "compare_architectures",
    "compile_kernel",
    "default_energy_table",
    "default_system_config",
    "fermi_energy",
    "get_workload",
    "run_batched",
    "run_cycle_accurate",
    "run_functional",
    "run_multicore",
    "run_sharded",
    "run_suite",
    "run_workload",
    "simulate",
    "workload_names",
    "__version__",
]
