"""Energy model: per-event tables and per-architecture accounting."""

from repro.power.model import (
    EnergyBreakdown,
    cgra_energy,
    energy_from_counters,
    fermi_energy,
)
from repro.power.tables import EnergyTable, default_energy_table

__all__ = [
    "EnergyBreakdown",
    "EnergyTable",
    "cgra_energy",
    "default_energy_table",
    "energy_from_counters",
    "fermi_energy",
]
