"""Per-event energy tables (the GPUWattch substitute).

The paper extends GPUWattch with per-operation energy estimates obtained
from RTL place-and-route of the new units.  Neither the RTL nor the
GPUWattch configuration is available, so this module documents the
published per-event energy figures the model uses instead (40/45 nm-class
numbers in the spirit of GPUWattch [14] and Horowitz's ISSCC 2014 energy
survey), expressed in picojoules per event.

The absolute values are approximate; the architectural comparison of
Figs. 11/12 depends on the *ratios* between event classes (an instruction
fetched and decoded and its operands read from a large register file cost
an order of magnitude more than a small token-buffer access; a scratchpad
access costs several times an ALU operation; DRAM costs three orders of
magnitude more than an ALU operation), which these figures preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyTable", "default_energy_table"]


@dataclass(frozen=True)
class EnergyTable:
    """Energy per event in picojoules, plus static power in watts."""

    # --- von Neumann front-end (per warp instruction / per lane) -------------
    instruction_fetch_decode: float = 210.0   # per warp-instruction (fetch+decode+schedule)
    register_file_access: float = 3.6         # per 32-bit operand, per lane
    operand_collector: float = 1.2            # per lane instruction

    # --- datapath -------------------------------------------------------------
    int_alu_op: float = 0.8
    fp_op: float = 2.2
    sfu_op: float = 9.0

    # --- CGRA fabric ----------------------------------------------------------
    token_buffer_access: float = 0.9          # insert or match, per token
    noc_hop: float = 1.6                      # per token per hop
    elevator_retag: float = 0.7               # tag add + mux
    eldst_bypass: float = 1.0                 # predicated bypass + loopback
    lvc_access: float = 6.0
    configuration_per_unit: float = 45.0      # one-time grid configuration cost

    # --- memories ---------------------------------------------------------------
    scratchpad_access: float = 11.0           # per 32-bit shared-memory access
    l1_access: float = 26.0                   # per line-sized L1 access
    l2_access: float = 95.0                   # per line-sized L2 access
    dram_access: float = 1700.0               # per 128B DRAM burst

    # --- static power (watts per core, at the Table 2 clocks) -------------------
    static_power_fermi: float = 0.9
    static_power_cgra: float = 0.55

    def scaled(self, factor: float) -> "EnergyTable":
        """Return a copy with every dynamic-energy entry scaled by ``factor``.

        Used by sensitivity/ablation benches to confirm the architectural
        ranking is robust to the absolute calibration of the table.
        """
        fields = {
            name: getattr(self, name) * factor
            for name in (
                "instruction_fetch_decode",
                "register_file_access",
                "operand_collector",
                "int_alu_op",
                "fp_op",
                "sfu_op",
                "token_buffer_access",
                "noc_hop",
                "elevator_retag",
                "eldst_bypass",
                "lvc_access",
                "configuration_per_unit",
                "scratchpad_access",
                "l1_access",
                "l2_access",
                "dram_access",
            )
        }
        return EnergyTable(
            **fields,
            static_power_fermi=self.static_power_fermi,
            static_power_cgra=self.static_power_cgra,
        )


def default_energy_table() -> EnergyTable:
    """The default calibration used throughout the evaluation."""
    return EnergyTable()
