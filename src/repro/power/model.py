"""Energy accounting for the three simulated architectures.

The model follows the paper's methodology (Sec. 5.1): the total energy of
a kernel execution is the sum of per-event dynamic energies (taken from
:mod:`repro.power.tables`) plus leakage, ``static power x execution time``
at the Table 2 core clock.  Energy *efficiency* relative to the Fermi
baseline (Fig. 12) is then simply ``E_fermi / E_arch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.config.system import SystemConfig, default_system_config
from repro.power.tables import EnergyTable, default_energy_table

__all__ = ["EnergyBreakdown", "cgra_energy", "fermi_energy", "energy_from_counters"]


@dataclass
class EnergyBreakdown:
    """Energy of one kernel execution, split by component (picojoules)."""

    components: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, picojoules: float) -> None:
        if picojoules:
            self.components[name] = self.components.get(name, 0.0) + picojoules

    @property
    def total_pj(self) -> float:
        return sum(self.components.values())

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    @property
    def dynamic_pj(self) -> float:
        return self.total_pj - self.components.get("leakage", 0.0)

    def fraction(self, name: str) -> float:
        total = self.total_pj
        return self.components.get(name, 0.0) / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        out = dict(self.components)
        out["total_pj"] = self.total_pj
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnergyBreakdown(total={self.total_pj:.1f} pJ, parts={len(self.components)})"


def _memory_energy(
    counters: Mapping[str, int | float], table: EnergyTable, breakdown: EnergyBreakdown
) -> None:
    l1_accesses = (
        counters.get("l1_read_hits", 0)
        + counters.get("l1_read_misses", 0)
        + counters.get("l1_write_hits", 0)
        + counters.get("l1_write_misses", 0)
    )
    l2_accesses = (
        counters.get("l2_read_hits", 0)
        + counters.get("l2_read_misses", 0)
        + counters.get("l2_write_hits", 0)
        + counters.get("l2_write_misses", 0)
    )
    dram_accesses = counters.get("dram_reads", 0) + counters.get("dram_writes", 0)
    scratch = counters.get("scratchpad_reads", 0) + counters.get("scratchpad_writes", 0)
    breakdown.add("l1", l1_accesses * table.l1_access)
    breakdown.add("l2", l2_accesses * table.l2_access)
    breakdown.add("dram", dram_accesses * table.dram_access)
    breakdown.add("scratchpad", scratch * table.scratchpad_access)


def _leakage(cycles: int, clock_ghz: float, static_watts: float) -> float:
    """Leakage energy in picojoules for ``cycles`` at ``clock_ghz``."""
    seconds = cycles / (clock_ghz * 1e9)
    return static_watts * seconds * 1e12


def cgra_energy(
    counters: Mapping[str, int | float],
    config: SystemConfig | None = None,
    table: EnergyTable | None = None,
    configured_units: int | None = None,
) -> EnergyBreakdown:
    """Energy of one MT-CGRA / dMT-CGRA execution from its counters."""
    config = config or default_system_config()
    table = table or default_energy_table()
    breakdown = EnergyBreakdown()

    breakdown.add("alu", counters.get("alu_ops", 0) * table.int_alu_op)
    breakdown.add("fpu", counters.get("fpu_ops", 0) * table.fp_op)
    breakdown.add("sfu", counters.get("special_ops", 0) * table.sfu_op)
    breakdown.add(
        "control",
        (counters.get("control_ops", 0) + counters.get("split_join_ops", 0))
        * table.int_alu_op,
    )
    breakdown.add(
        "token_buffer",
        (counters.get("token_buffer_inserts", 0) + counters.get("token_buffer_matches", 0))
        * table.token_buffer_access,
    )
    breakdown.add("noc", counters.get("noc_hops", 0) * table.noc_hop)
    breakdown.add(
        "inter_thread",
        counters.get("elevator_retags", 0) * table.elevator_retag
        + counters.get("elevator_constants", 0) * table.elevator_retag
        + counters.get("eldst_forwards", 0) * table.eldst_bypass,
    )
    breakdown.add("lvc", counters.get("lvc_accesses", 0) * table.lvc_access)
    units = configured_units if configured_units is not None else config.grid.total_units
    breakdown.add("configuration", units * table.configuration_per_unit)
    _memory_energy(counters, table, breakdown)
    breakdown.add(
        "leakage",
        _leakage(int(counters.get("cycles", 0)), config.core_clock_ghz, table.static_power_cgra),
    )
    return breakdown


def fermi_energy(
    counters: Mapping[str, int | float],
    config: SystemConfig | None = None,
    table: EnergyTable | None = None,
) -> EnergyBreakdown:
    """Energy of one Fermi-SM execution from its counters."""
    config = config or default_system_config()
    table = table or default_energy_table()
    breakdown = EnergyBreakdown()

    breakdown.add(
        "fetch_decode",
        counters.get("instructions_issued", 0) * table.instruction_fetch_decode,
    )
    breakdown.add(
        "register_file",
        (counters.get("register_reads", 0) + counters.get("register_writes", 0))
        * table.register_file_access
        + counters.get("instructions_per_lane", 0) * table.operand_collector,
    )
    breakdown.add("alu", counters.get("alu_ops", 0) * table.fp_op)
    breakdown.add("sfu", counters.get("special_ops", 0) * table.sfu_op)
    _memory_energy(counters, table, breakdown)
    breakdown.add(
        "leakage",
        _leakage(int(counters.get("cycles", 0)), config.core_clock_ghz, table.static_power_fermi),
    )
    return breakdown


def energy_from_counters(
    architecture: str,
    counters: Mapping[str, int | float],
    config: SystemConfig | None = None,
    table: EnergyTable | None = None,
) -> EnergyBreakdown:
    """Dispatch on the architecture name used by the harness."""
    if architecture in ("fermi", "gpgpu"):
        return fermi_energy(counters, config, table)
    if architecture in ("mt-cgra", "dmt-cgra", "mt", "dmt"):
        return cgra_energy(counters, config, table)
    raise ValueError(f"unknown architecture '{architecture}'")
