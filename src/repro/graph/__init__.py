"""Dataflow-graph intermediate representation."""

from repro.graph.dfg import DataflowGraph
from repro.graph.node import Edge, Node
from repro.graph.opcodes import DType, OpInfo, Opcode, UnitClass, opcode_info
from repro.graph.semantics import PURE_OPCODES, evaluate_pure
from repro.graph.validate import validate_graph, validation_issues
from repro.graph.visualize import to_dot, to_networkx

__all__ = [
    "DataflowGraph",
    "Edge",
    "Node",
    "DType",
    "OpInfo",
    "Opcode",
    "UnitClass",
    "opcode_info",
    "PURE_OPCODES",
    "evaluate_pure",
    "validate_graph",
    "validation_issues",
    "to_dot",
    "to_networkx",
]
