"""Structural validation of kernel dataflow graphs.

Validation is run by the compiler pipeline before mapping; it rejects
graphs that cannot be configured onto the CGRA: missing operands,
non-temporal cycles, malformed elevator/eLDST parameters, sinks driving
consumers and similar structural mistakes.

The checks themselves live in the analyzer's structure pass
(:mod:`repro.analyze.structure`), which reports each problem as a
:class:`~repro.analyze.diagnostics.Diagnostic` with a stable ``RA00x``
code and node provenance.  This module keeps the historical string-based
surface: :func:`validation_issues` returns the diagnostics' messages
verbatim, and :func:`validate_graph` raises with the same wording it
always has.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyze.structure import structure_diagnostics
from repro.errors import GraphValidationError
from repro.graph.dfg import DataflowGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.diagnostics import Diagnostic

__all__ = ["structure_diagnostics", "validate_graph", "validation_issues"]


def validation_issues(graph: DataflowGraph) -> list[str]:
    """Return a list of human-readable validation problems (empty if valid)."""
    return [diagnostic.message for diagnostic in structure_diagnostics(graph)]


def validate_graph(graph: DataflowGraph) -> None:
    """Raise :class:`GraphValidationError` listing every structural problem."""
    diagnostics: "list[Diagnostic]" = structure_diagnostics(graph)
    if diagnostics:
        joined = "\n  - ".join(d.message for d in diagnostics)
        raise GraphValidationError(
            f"dataflow graph '{graph.name}' failed validation:\n  - {joined}"
        )
