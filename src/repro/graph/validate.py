"""Structural validation of kernel dataflow graphs.

Validation is run by the compiler pipeline before mapping; it rejects
graphs that cannot be configured onto the CGRA: missing operands,
non-temporal cycles, malformed elevator/eLDST parameters, sinks driving
consumers and similar structural mistakes.
"""

from __future__ import annotations

from repro.errors import GraphValidationError
from repro.graph.dfg import DataflowGraph
from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode, opcode_info

__all__ = ["validate_graph", "validation_issues"]


def _check_arity(graph: DataflowGraph, node: Node, issues: list[str]) -> None:
    info = opcode_info(node.opcode)
    arity = graph.arity_of(node.node_id)
    if not info.accepts_arity(arity):
        issues.append(
            f"{node.label()}: has {arity} operands, expected between "
            f"{info.min_arity} and {info.max_arity}"
        )
    ports = sorted(graph.inputs_of(node.node_id))
    if ports and ports != list(range(len(ports))):
        issues.append(f"{node.label()}: operand ports {ports} are not contiguous from 0")


def _check_params(node: Node, issues: list[str]) -> None:
    if node.opcode is Opcode.CONST and "value" not in node.params:
        issues.append(f"{node.label()}: CONST node is missing its 'value' parameter")
    if node.opcode is Opcode.ELEVATOR:
        delta = node.param("delta")
        if not isinstance(delta, int) or delta == 0:
            issues.append(f"{node.label()}: ELEVATOR delta must be a non-zero integer")
        if "const" not in node.params:
            issues.append(f"{node.label()}: ELEVATOR is missing its fallback constant")
        window = node.param("window")
        if window is not None and (not isinstance(window, int) or window <= 0):
            issues.append(f"{node.label()}: ELEVATOR window must be a positive integer")
    if node.opcode is Opcode.BARRIER:
        window = node.param("window")
        if window is not None and (not isinstance(window, int) or window <= 0):
            issues.append(f"{node.label()}: BARRIER window must be a positive integer")
    if node.opcode is Opcode.ELDST:
        delta = node.param("delta")
        if not isinstance(delta, int) or delta <= 0:
            issues.append(f"{node.label()}: ELDST delta must be a positive integer")
        if not node.param("array"):
            issues.append(f"{node.label()}: ELDST is missing its 'array' parameter")
        window = node.param("window")
        if window is not None and (not isinstance(window, int) or window <= 0):
            issues.append(f"{node.label()}: ELDST window must be a positive integer")
    if node.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.ELDST):
        if not node.param("array"):
            issues.append(f"{node.label()}: memory node is missing its 'array' parameter")
    if node.opcode in (Opcode.SCRATCH_LOAD, Opcode.SCRATCH_STORE):
        if not node.param("array"):
            issues.append(
                f"{node.label()}: scratchpad node is missing its 'array' parameter"
            )
    if node.opcode is Opcode.OUTPUT and not node.param("name"):
        issues.append(f"{node.label()}: OUTPUT node is missing its 'name' parameter")


def _check_dtypes(graph: DataflowGraph, node: Node, issues: list[str]) -> None:
    if node.opcode in (Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE, Opcode.EQ, Opcode.NE):
        if node.dtype is not DType.BOOL:
            issues.append(f"{node.label()}: comparison nodes must produce BOOL")
    if node.opcode is Opcode.SELECT:
        inputs = graph.inputs_of(node.node_id)
        if 0 in inputs and graph.node(inputs[0]).dtype is not DType.BOOL:
            issues.append(f"{node.label()}: SELECT condition operand must be BOOL")


def validation_issues(graph: DataflowGraph) -> list[str]:
    """Return a list of human-readable validation problems (empty if valid)."""
    issues: list[str] = []
    for node in graph.nodes:
        _check_arity(graph, node, issues)
        _check_params(node, issues)
        _check_dtypes(graph, node, issues)

    # Sinks must not feed anyone; already enforced by add_edge, re-check defensively.
    for node in graph.nodes:
        if node.is_sink and graph.successors(node.node_id):
            issues.append(f"{node.label()}: sink node drives downstream consumers")

    # The graph must be acyclic once temporal edges are removed.
    try:
        graph.topological_order(ignore_temporal=True)
    except Exception as exc:  # GraphError
        issues.append(str(exc))

    # A kernel must observably do something.
    has_effect = any(
        n.opcode in (Opcode.STORE, Opcode.SCRATCH_STORE, Opcode.OUTPUT)
        for n in graph.nodes
    )
    if graph.nodes and not has_effect:
        issues.append("graph has no STORE or OUTPUT node; kernel has no visible effect")
    return issues


def validate_graph(graph: DataflowGraph) -> None:
    """Raise :class:`GraphValidationError` listing every structural problem."""
    issues = validation_issues(graph)
    if issues:
        joined = "\n  - ".join(issues)
        raise GraphValidationError(
            f"dataflow graph '{graph.name}' failed validation:\n  - {joined}"
        )
