"""Dataflow-graph nodes and edges."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graph.opcodes import DType, Opcode, UnitClass, opcode_info

__all__ = ["Node", "Edge"]


@dataclass
class Node:
    """One static instruction of the kernel dataflow graph.

    Attributes
    ----------
    node_id:
        Unique integer identifier within the owning graph.
    opcode:
        The operation performed by the node.
    dtype:
        The type of the value produced on the node's output port.
    params:
        Opcode-specific static parameters, e.g. ``value`` for ``CONST``,
        ``array``/``elem_bytes`` for memory ops, ``delta``/``const``/
        ``window`` for ``ELEVATOR`` and ``delta``/``window``/``array`` for
        ``ELDST``, ``name`` for ``OUTPUT``.
    name:
        Optional human-readable label used in DOT dumps and error messages.
    """

    node_id: int
    opcode: Opcode
    dtype: DType = DType.I32
    params: dict[str, Any] = field(default_factory=dict)
    name: str = ""

    @property
    def unit_class(self) -> UnitClass:
        """The functional-unit class this node must be placed on.

        Integer arithmetic maps to ALUs and floating-point arithmetic to
        FPUs, mirroring the heterogeneous grid of Fig. 7a.
        """
        info = opcode_info(self.opcode)
        if info.unit_class is UnitClass.ALU and self.dtype.is_float:
            return UnitClass.FPU
        return info.unit_class

    @property
    def is_source(self) -> bool:
        return opcode_info(self.opcode).min_arity == 0

    @property
    def is_sink(self) -> bool:
        return not opcode_info(self.opcode).has_output

    @property
    def is_memory(self) -> bool:
        return self.opcode in (
            Opcode.LOAD,
            Opcode.STORE,
            Opcode.SCRATCH_LOAD,
            Opcode.SCRATCH_STORE,
            Opcode.ELDST,
        )

    @property
    def is_temporal(self) -> bool:
        """True for nodes whose *input* edges cross thread instances."""
        return self.opcode in (Opcode.ELEVATOR, Opcode.ELDST)

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def label(self) -> str:
        base = self.name or self.opcode.value
        return f"{base}#{self.node_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(id={self.node_id}, op={self.opcode.value}, "
            f"dtype={self.dtype.value}, name={self.name!r})"
        )


@dataclass(frozen=True)
class Edge:
    """A directed dataflow edge: ``src`` output feeds ``dst`` operand ``dst_port``."""

    src: int
    dst: int
    dst_port: int

    def __post_init__(self) -> None:
        if self.dst_port < 0:
            raise ValueError("dst_port must be non-negative")
