"""Operational semantics of dataflow opcodes.

Both the functional interpreter and the cycle-level simulator evaluate
node results through :func:`evaluate_pure`, so they cannot diverge on the
meaning of an opcode.  Memory and inter-thread opcodes are *not* handled
here — they interact with the memory hierarchy / token retagging machinery
and are implemented by the simulators themselves.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import SimulationError
from repro.graph.node import Node
from repro.graph.opcodes import DType, Opcode

__all__ = ["evaluate_pure", "PURE_OPCODES", "coerce", "python_value"]

#: Opcodes whose result depends only on their operand values.
PURE_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.MIN,
        Opcode.MAX,
        Opcode.ABS,
        Opcode.NEG,
        Opcode.FMA,
        Opcode.SQRT,
        Opcode.RSQRT,
        Opcode.EXP,
        Opcode.LOG,
        Opcode.RCP,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.NOT,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.LT,
        Opcode.LE,
        Opcode.GT,
        Opcode.GE,
        Opcode.EQ,
        Opcode.NE,
        Opcode.LAND,
        Opcode.LOR,
        Opcode.LNOT,
        Opcode.SELECT,
        Opcode.SPLIT,
        Opcode.JOIN,
    }
)

_INT_MASK = 0xFFFFFFFF


def _as_u32(value: int) -> int:
    return int(value) & _INT_MASK


def coerce(value: float | int | bool, dtype: DType) -> float | int | bool:
    """Coerce ``value`` to the Python representation of ``dtype``."""
    if dtype is DType.F32:
        return float(value)
    if dtype is DType.BOOL:
        return bool(value)
    return int(value)


def python_value(value: float | int | bool) -> float | int | bool:
    """Normalise numpy scalars to plain Python values."""
    if hasattr(value, "item"):
        return value.item()
    return value


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("integer division by zero in kernel graph")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("integer modulo by zero in kernel graph")
    return a - _int_div(a, b) * b


def evaluate_pure(node: Node, operands: Sequence[float | int | bool]):
    """Evaluate a pure opcode on concrete operand values.

    Integer arithmetic uses C-style truncating division/modulo; bitwise
    operations interpret operands as 32-bit values.  Comparisons produce
    Python booleans.
    """
    op = node.opcode
    dt = node.dtype
    if op not in PURE_OPCODES:
        raise SimulationError(f"{op.value} is not a pure opcode")

    a = operands[0] if operands else None
    b = operands[1] if len(operands) > 1 else None
    c = operands[2] if len(operands) > 2 else None

    if op is Opcode.ADD:
        return coerce(a + b, dt)
    if op is Opcode.SUB:
        return coerce(a - b, dt)
    if op is Opcode.MUL:
        return coerce(a * b, dt)
    if op is Opcode.DIV:
        if dt.is_float:
            if b == 0:
                return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
            return float(a) / float(b)
        return _int_div(int(a), int(b))
    if op is Opcode.MOD:
        if dt.is_float:
            return math.fmod(float(a), float(b))
        return _int_mod(int(a), int(b))
    if op is Opcode.MIN:
        return coerce(min(a, b), dt)
    if op is Opcode.MAX:
        return coerce(max(a, b), dt)
    if op is Opcode.ABS:
        return coerce(abs(a), dt)
    if op is Opcode.NEG:
        return coerce(-a, dt)
    if op is Opcode.FMA:
        return coerce(a * b + c, dt)

    if op is Opcode.SQRT:
        return float(math.sqrt(a)) if a >= 0 else math.nan
    if op is Opcode.RSQRT:
        return float(1.0 / math.sqrt(a)) if a > 0 else math.inf
    if op is Opcode.EXP:
        return float(math.exp(a))
    if op is Opcode.LOG:
        return float(math.log(a)) if a > 0 else -math.inf
    if op is Opcode.RCP:
        return float(1.0 / a) if a != 0 else math.inf

    if op is Opcode.AND:
        return coerce(_as_u32(a) & _as_u32(b), dt)
    if op is Opcode.OR:
        return coerce(_as_u32(a) | _as_u32(b), dt)
    if op is Opcode.XOR:
        return coerce(_as_u32(a) ^ _as_u32(b), dt)
    if op is Opcode.NOT:
        return coerce(_as_u32(~_as_u32(a)), dt)
    if op is Opcode.SHL:
        return coerce(_as_u32(_as_u32(a) << (int(b) & 31)), dt)
    if op is Opcode.SHR:
        return coerce(_as_u32(a) >> (int(b) & 31), dt)

    if op is Opcode.LT:
        return a < b
    if op is Opcode.LE:
        return a <= b
    if op is Opcode.GT:
        return a > b
    if op is Opcode.GE:
        return a >= b
    if op is Opcode.EQ:
        return a == b
    if op is Opcode.NE:
        return a != b
    if op is Opcode.LAND:
        return bool(a) and bool(b)
    if op is Opcode.LOR:
        return bool(a) or bool(b)
    if op is Opcode.LNOT:
        return not bool(a)

    if op is Opcode.SELECT:
        return coerce(b if bool(a) else c, dt)
    if op is Opcode.SPLIT:
        return a
    if op is Opcode.JOIN:
        # JOIN forwards operand 0 but synchronises on both operands.
        return a

    raise SimulationError(f"unhandled pure opcode {op.value}")  # pragma: no cover
