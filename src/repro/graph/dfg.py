"""The kernel dataflow graph (DFG).

A :class:`DataflowGraph` is the static program representation executed by
both the MT-CGRA and dMT-CGRA simulators.  Nodes are static instructions,
edges move tokens from a producer's output port to a consumer's operand
port.  Edges *into* temporal nodes (``ELEVATOR``/``ELDST``) are *temporal
edges*: at run time they connect different dynamic instances of the graph
(i.e. different threads), which is exactly the paper's mechanism for
direct inter-thread communication.  Because of those edges the static
graph may contain cycles (e.g. the prefix-sum recurrence of Fig. 6); the
graph is still required to be acyclic once temporal input edges are
removed.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Iterator

from repro.errors import GraphError
from repro.graph.node import Edge, Node
from repro.graph.opcodes import DType, Opcode, UnitClass, opcode_info

__all__ = ["DataflowGraph"]


class DataflowGraph:
    """A mutable dataflow graph with explicit operand ports."""

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._inputs: dict[int, dict[int, int]] = defaultdict(dict)  # dst -> port -> src
        self._next_id = 0
        self.metadata: dict[str, Any] = {}

    # ------------------------------------------------------------------ build
    def add_node(
        self,
        opcode: Opcode,
        dtype: DType = DType.I32,
        params: dict[str, Any] | None = None,
        name: str = "",
    ) -> Node:
        """Create a node and add it to the graph."""
        node = Node(
            node_id=self._next_id,
            opcode=opcode,
            dtype=dtype,
            params=dict(params or {}),
            name=name,
        )
        self._nodes[node.node_id] = node
        self._next_id += 1
        return node

    def add_edge(self, src: int | Node, dst: int | Node, dst_port: int) -> Edge:
        """Connect ``src``'s output to operand ``dst_port`` of ``dst``."""
        src_id = src.node_id if isinstance(src, Node) else src
        dst_id = dst.node_id if isinstance(dst, Node) else dst
        if src_id not in self._nodes:
            raise GraphError(f"unknown source node {src_id}")
        if dst_id not in self._nodes:
            raise GraphError(f"unknown destination node {dst_id}")
        if not opcode_info(self._nodes[src_id].opcode).has_output:
            raise GraphError(f"node {self._nodes[src_id].label()} has no output port")
        if dst_port in self._inputs[dst_id]:
            raise GraphError(
                f"operand {dst_port} of {self._nodes[dst_id].label()} is already driven"
            )
        info = opcode_info(self._nodes[dst_id].opcode)
        if dst_port >= info.max_arity:
            raise GraphError(
                f"{self._nodes[dst_id].label()} accepts at most {info.max_arity} operands"
            )
        self._inputs[dst_id][dst_port] = src_id
        return Edge(src_id, dst_id, dst_port)

    def remove_node(self, node_id: int) -> None:
        """Remove a node and every edge touching it."""
        if node_id not in self._nodes:
            raise GraphError(f"unknown node {node_id}")
        del self._nodes[node_id]
        self._inputs.pop(node_id, None)
        for ports in self._inputs.values():
            for port in [p for p, s in ports.items() if s == node_id]:
                del ports[port]

    def replace_input(self, dst: int | Node, dst_port: int, new_src: int | Node) -> None:
        """Redirect operand ``dst_port`` of ``dst`` to ``new_src``."""
        dst_id = dst.node_id if isinstance(dst, Node) else dst
        src_id = new_src.node_id if isinstance(new_src, Node) else new_src
        if dst_id not in self._nodes or src_id not in self._nodes:
            raise GraphError("replace_input on unknown node")
        if dst_port not in self._inputs[dst_id]:
            raise GraphError(
                f"operand {dst_port} of {self._nodes[dst_id].label()} is not driven"
            )
        self._inputs[dst_id][dst_port] = src_id

    # ------------------------------------------------------------------ query
    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise GraphError(f"unknown node {node_id}") from exc

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def edges(self) -> Iterator[Edge]:
        for dst_id, ports in self._inputs.items():
            for port, src_id in sorted(ports.items()):
                yield Edge(src_id, dst_id, port)

    def num_edges(self) -> int:
        return sum(len(p) for p in self._inputs.values())

    def inputs_of(self, node_id: int) -> dict[int, int]:
        """Return ``{operand_port: src_node_id}`` for ``node_id``."""
        return dict(self._inputs.get(node_id, {}))

    def arity_of(self, node_id: int) -> int:
        return len(self._inputs.get(node_id, {}))

    def successors(self, node_id: int) -> list[tuple[int, int]]:
        """Return ``[(dst_node_id, dst_port), ...]`` fed by ``node_id``."""
        out: list[tuple[int, int]] = []
        for dst_id, ports in self._inputs.items():
            for port, src_id in ports.items():
                if src_id == node_id:
                    out.append((dst_id, port))
        return sorted(out)

    def predecessors(self, node_id: int) -> list[int]:
        return sorted(set(self._inputs.get(node_id, {}).values()))

    def nodes_by_class(self) -> dict[UnitClass, list[Node]]:
        grouped: dict[UnitClass, list[Node]] = defaultdict(list)
        for node in self._nodes.values():
            grouped[node.unit_class].append(node)
        return dict(grouped)

    def nodes_with_opcode(self, *opcodes: Opcode) -> list[Node]:
        wanted = set(opcodes)
        return [n for n in self._nodes.values() if n.opcode in wanted]

    def has_interthread(self) -> bool:
        """True if any node couples different threads at run time.

        ELEVATOR and ELDST nodes move tokens between threads and BARRIER
        nodes synchronise the whole block; graphs containing none of them
        execute every thread independently, which is what allows the
        wave-batched engine and multi-core sharding to split the thread
        space freely.
        """
        return any(
            n.opcode in (Opcode.ELEVATOR, Opcode.ELDST, Opcode.BARRIER)
            for n in self._nodes.values()
        )

    # ------------------------------------------------------------- structure
    def structural_edges(self) -> Iterator[Edge]:
        """Edges excluding temporal edges (inputs of ELEVATOR/ELDST value port).

        For an ``ELEVATOR`` node the single input edge is temporal.  For an
        ``ELDST`` node only the implicit loop through its own token buffer
        is temporal; its explicit operand edges (address, predicate,
        ordering) are ordinary intra-thread edges.
        """
        for edge in self.edges():
            dst = self._nodes[edge.dst]
            if dst.opcode is Opcode.ELEVATOR:
                continue
            yield edge

    def topological_order(self, ignore_temporal: bool = True) -> list[Node]:
        """Kahn topological sort.

        With ``ignore_temporal`` (the default) temporal edges are excluded,
        which makes graphs containing inter-thread recurrences sortable.
        Raises :class:`GraphError` if a non-temporal cycle exists.
        """
        edges = self.structural_edges() if ignore_temporal else self.edges()
        indeg = {nid: 0 for nid in self._nodes}
        succ: dict[int, list[int]] = defaultdict(list)
        for edge in edges:
            indeg[edge.dst] += 1
            succ[edge.src].append(edge.dst)
        queue = deque(sorted(nid for nid, d in indeg.items() if d == 0))
        order: list[Node] = []
        while queue:
            nid = queue.popleft()
            order.append(self._nodes[nid])
            for nxt in succ[nid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if len(order) != len(self._nodes):
            raise GraphError(
                f"graph '{self.name}' contains a cycle through non-temporal edges"
            )
        return order

    def copy(self, name: str | None = None) -> "DataflowGraph":
        """Return a deep structural copy of the graph."""
        clone = DataflowGraph(name or self.name)
        clone._next_id = self._next_id
        for nid, node in self._nodes.items():
            clone._nodes[nid] = Node(
                node_id=nid,
                opcode=node.opcode,
                dtype=node.dtype,
                params=dict(node.params),
                name=node.name,
            )
        for dst, ports in self._inputs.items():
            clone._inputs[dst] = dict(ports)
        clone.metadata = dict(self.metadata)
        return clone

    # ----------------------------------------------------------------- stats
    def unit_demand(self) -> dict[UnitClass, int]:
        """Number of physical units of each class required to map this graph."""
        demand: dict[UnitClass, int] = defaultdict(int)
        for node in self._nodes.values():
            if node.unit_class is UnitClass.SOURCE:
                continue  # sources are injected by the streamer, not placed
            demand[node.unit_class] += 1
        return dict(demand)

    def summary(self) -> str:
        by_class = {k.value: len(v) for k, v in self.nodes_by_class().items()}
        return (
            f"DataflowGraph('{self.name}', nodes={len(self)}, "
            f"edges={self.num_edges()}, by_class={by_class})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()
