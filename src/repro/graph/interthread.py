"""Shared semantics of inter-thread communication nodes.

Both the functional interpreter and the cycle-level simulator must agree
on *which* thread a value travels from/to; this module is the single
source of truth for that question.

Conventions
-----------
* Thread IDs are linearised CUDA-style: ``tid = x + y*dim_x + z*dim_x*dim_y``.
* An ``ELEVATOR`` node stores the **hardware shift** ``delta``:
  the token produced by thread ``p`` is re-tagged to thread ``p + delta``;
  equivalently, consumer thread ``c`` receives the value produced by
  thread ``c - delta``.  The programmer-facing API of Table 1 instead
  specifies the *source offset* (``fromThreadOrConst<var, -1, 0>`` reads
  from thread ``tid - 1``); the kernel builder converts between the two.
* ``src_offset`` (optional, a coordinate tuple) preserves the multi-
  dimensional offset so that boundary conditions are evaluated per
  dimension, exactly like the coordinate arithmetic in the paper's
  matrix-multiplication example (Fig. 2b / Fig. 3).
* ``window`` bounds the transmission window (Sec. 3.2): the thread block
  is partitioned into consecutive groups of ``window`` linear TIDs and
  communication never crosses a group boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import GraphError
from repro.graph.node import Node

__all__ = [
    "linearize",
    "unlinearize",
    "linear_offset",
    "same_window",
    "elevator_source",
    "elevator_destination",
    "eldst_source",
]


def _normalize_dims(block_dim: Sequence[int]) -> tuple[int, int, int]:
    dims = tuple(int(d) for d in block_dim)
    if not 1 <= len(dims) <= 3:
        raise GraphError("block_dim must have between 1 and 3 dimensions")
    if any(d <= 0 for d in dims):
        raise GraphError("block dimensions must be positive")
    return dims + (1,) * (3 - len(dims))


def linearize(coord: Sequence[int], block_dim: Sequence[int]) -> int:
    """Linearise a (x[, y[, z]]) coordinate into a flat thread ID."""
    dx, dy, _ = _normalize_dims(block_dim)
    c = tuple(int(v) for v in coord) + (0,) * (3 - len(coord))
    return c[0] + c[1] * dx + c[2] * dx * dy


def unlinearize(tid: int, block_dim: Sequence[int]) -> tuple[int, int, int]:
    """Convert a flat thread ID back into a 3-component coordinate."""
    dx, dy, _ = _normalize_dims(block_dim)
    x = tid % dx
    y = (tid // dx) % dy
    z = tid // (dx * dy)
    return (x, y, z)


def linear_offset(offset: Sequence[int] | int, block_dim: Sequence[int]) -> int:
    """Linearise a multi-dimensional thread-ID offset."""
    if isinstance(offset, int):
        return offset
    dx, dy, _ = _normalize_dims(block_dim)
    o = tuple(int(v) for v in offset) + (0,) * (3 - len(tuple(offset)))
    return o[0] + o[1] * dx + o[2] * dx * dy


def same_window(tid_a: int, tid_b: int, window: Optional[int]) -> bool:
    """True if both linear TIDs fall in the same transmission window."""
    if window is None:
        return True
    return (tid_a // window) == (tid_b // window)


def _coord_source(
    consumer: int, src_offset: Sequence[int], block_dim: Sequence[int]
) -> Optional[int]:
    dims = _normalize_dims(block_dim)
    coord = unlinearize(consumer, block_dim)
    off = tuple(int(v) for v in src_offset) + (0,) * (3 - len(tuple(src_offset)))
    src = tuple(c + o for c, o in zip(coord, off))
    if any(s < 0 or s >= d for s, d in zip(src, dims)):
        return None
    return linearize(src, block_dim)


def elevator_source(
    node: Node, consumer_tid: int, block_dim: Sequence[int], num_threads: int
) -> Optional[int]:
    """Return the producer TID for ``consumer_tid``, or None for the fallback constant."""
    window = node.param("window")
    src_offset = node.param("src_offset")
    if src_offset is not None:
        src = _coord_source(consumer_tid, src_offset, block_dim)
    else:
        src = consumer_tid - int(node.param("delta"))
    if src is None or src < 0 or src >= num_threads:
        return None
    if not same_window(src, consumer_tid, window):
        return None
    return src


def elevator_destination(
    node: Node, producer_tid: int, block_dim: Sequence[int], num_threads: int
) -> Optional[int]:
    """Return the consumer TID that receives producer ``producer_tid``'s token."""
    window = node.param("window")
    src_offset = node.param("src_offset")
    if src_offset is not None:
        dst = _coord_source(producer_tid, [-v for v in src_offset], block_dim)
    else:
        dst = producer_tid + int(node.param("delta"))
    if dst is None or dst < 0 or dst >= num_threads:
        return None
    if not same_window(producer_tid, dst, window):
        return None
    return dst


def eldst_source(
    node: Node, consumer_tid: int, block_dim: Sequence[int], num_threads: int
) -> Optional[int]:
    """Return the TID whose loaded value is forwarded to ``consumer_tid``.

    ``None`` means the thread must fall back to issuing its own memory load
    (this matches the paper's requirement that the predicate selects the
    loading threads; a forwarding thread with an out-of-window source would
    otherwise deadlock).
    """
    return elevator_source(node, consumer_tid, block_dim, num_threads)
