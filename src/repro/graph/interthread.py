"""Shared semantics of inter-thread communication nodes.

Both the functional interpreter and the cycle-level simulator must agree
on *which* thread a value travels from/to; this module is the single
source of truth for that question.

Conventions
-----------
* Thread IDs are linearised CUDA-style: ``tid = x + y*dim_x + z*dim_x*dim_y``.
* An ``ELEVATOR`` node stores the **hardware shift** ``delta``:
  the token produced by thread ``p`` is re-tagged to thread ``p + delta``;
  equivalently, consumer thread ``c`` receives the value produced by
  thread ``c - delta``.  The programmer-facing API of Table 1 instead
  specifies the *source offset* (``fromThreadOrConst<var, -1, 0>`` reads
  from thread ``tid - 1``); the kernel builder converts between the two.
* ``src_offset`` (optional, a coordinate tuple) preserves the multi-
  dimensional offset so that boundary conditions are evaluated per
  dimension, exactly like the coordinate arithmetic in the paper's
  matrix-multiplication example (Fig. 2b / Fig. 3).
* ``window`` bounds the transmission window (Sec. 3.2): the thread block
  is partitioned into consecutive groups of ``window`` linear TIDs and
  communication never crosses a group boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.node import Node
from repro.graph.opcodes import Opcode

__all__ = [
    "linearize",
    "unlinearize",
    "linear_offset",
    "same_window",
    "elevator_source",
    "elevator_source_vec",
    "elevator_destination",
    "eldst_source",
    "communication_windows",
    "subset_closed_under_window",
    "thread_subset_problem",
    "window_batch_problem",
]


def _normalize_dims(block_dim: Sequence[int]) -> tuple[int, int, int]:
    dims = tuple(int(d) for d in block_dim)
    if not 1 <= len(dims) <= 3:
        raise GraphError("block_dim must have between 1 and 3 dimensions")
    if any(d <= 0 for d in dims):
        raise GraphError("block dimensions must be positive")
    return dims + (1,) * (3 - len(dims))


def linearize(coord: Sequence[int], block_dim: Sequence[int]) -> int:
    """Linearise a (x[, y[, z]]) coordinate into a flat thread ID."""
    dx, dy, _ = _normalize_dims(block_dim)
    c = tuple(int(v) for v in coord) + (0,) * (3 - len(coord))
    return c[0] + c[1] * dx + c[2] * dx * dy


def unlinearize(tid: int, block_dim: Sequence[int]) -> tuple[int, int, int]:
    """Convert a flat thread ID back into a 3-component coordinate."""
    dx, dy, _ = _normalize_dims(block_dim)
    x = tid % dx
    y = (tid // dx) % dy
    z = tid // (dx * dy)
    return (x, y, z)


def linear_offset(offset: Sequence[int] | int, block_dim: Sequence[int]) -> int:
    """Linearise a multi-dimensional thread-ID offset."""
    if isinstance(offset, int):
        return offset
    dx, dy, _ = _normalize_dims(block_dim)
    o = tuple(int(v) for v in offset) + (0,) * (3 - len(tuple(offset)))
    return o[0] + o[1] * dx + o[2] * dx * dy


def same_window(tid_a: int, tid_b: int, window: Optional[int]) -> bool:
    """True if both linear TIDs fall in the same transmission window."""
    if window is None:
        return True
    return (tid_a // window) == (tid_b // window)


def _coord_source(
    consumer: int, src_offset: Sequence[int], block_dim: Sequence[int]
) -> Optional[int]:
    dims = _normalize_dims(block_dim)
    coord = unlinearize(consumer, block_dim)
    off = tuple(int(v) for v in src_offset) + (0,) * (3 - len(tuple(src_offset)))
    src = tuple(c + o for c, o in zip(coord, off))
    if any(s < 0 or s >= d for s, d in zip(src, dims)):
        return None
    return linearize(src, block_dim)


def elevator_source(
    node: Node, consumer_tid: int, block_dim: Sequence[int], num_threads: int
) -> Optional[int]:
    """Return the producer TID for ``consumer_tid``, or None for the fallback constant."""
    window = node.param("window")
    src_offset = node.param("src_offset")
    if src_offset is not None:
        src = _coord_source(consumer_tid, src_offset, block_dim)
    else:
        src = consumer_tid - int(node.param("delta"))
    if src is None or src < 0 or src >= num_threads:
        return None
    if not same_window(src, consumer_tid, window):
        return None
    return src


def elevator_destination(
    node: Node, producer_tid: int, block_dim: Sequence[int], num_threads: int
) -> Optional[int]:
    """Return the consumer TID that receives producer ``producer_tid``'s token."""
    window = node.param("window")
    src_offset = node.param("src_offset")
    if src_offset is not None:
        dst = _coord_source(producer_tid, [-v for v in src_offset], block_dim)
    else:
        dst = producer_tid + int(node.param("delta"))
    if dst is None or dst < 0 or dst >= num_threads:
        return None
    if not same_window(producer_tid, dst, window):
        return None
    return dst


def elevator_source_vec(
    node: Node,
    tids: "np.ndarray",
    block_dim: Sequence[int],
    num_threads: int,
) -> "np.ndarray":
    """Vectorised :func:`elevator_source`: producer TID per consumer, -1 for none.

    The window-batched engine resolves a whole thread vector's
    communication in one gather, so the consumer→producer map must be
    computed as array arithmetic; this is the exact NumPy twin of the
    scalar function above (coordinate bounds, window check, launch
    bounds), pinned element-for-element by the engine's tests.
    """
    consumers = np.asarray(tids, dtype=np.int64)
    window = node.param("window")
    src_offset = node.param("src_offset")
    if src_offset is not None:
        dx, dy, dz = _normalize_dims(block_dim)
        off = tuple(int(v) for v in src_offset) + (0,) * (3 - len(tuple(src_offset)))
        sx = consumers % dx + off[0]
        sy = (consumers // dx) % dy + off[1]
        sz = consumers // (dx * dy) + off[2]
        valid = (
            (sx >= 0) & (sx < dx) & (sy >= 0) & (sy < dy) & (sz >= 0) & (sz < dz)
        )
        src = sx + sy * dx + sz * dx * dy
    else:
        src = consumers - int(node.param("delta"))
        valid = np.ones(consumers.shape, dtype=np.bool_)
    valid &= (src >= 0) & (src < int(num_threads))
    if window is not None:
        w = int(window)
        valid &= (src // w) == (consumers // w)
    return np.where(valid, src, np.int64(-1))


def eldst_source(
    node: Node, consumer_tid: int, block_dim: Sequence[int], num_threads: int
) -> Optional[int]:
    """Return the TID whose loaded value is forwarded to ``consumer_tid``.

    ``None`` means the thread must fall back to issuing its own memory load
    (this matches the paper's requirement that the predicate selects the
    loading threads; a forwarding thread with an out-of-window source would
    otherwise deadlock).
    """
    return elevator_source(node, consumer_tid, block_dim, num_threads)


def subset_closed_under_window(
    thread_ids: Sequence[int], window: int, num_threads: int
) -> bool:
    """True if ``thread_ids`` is a union of whole transmission windows.

    Communication through a node with transmission window ``w`` never
    crosses a boundary between consecutive groups of ``w`` linear TIDs
    (:func:`same_window`), so a thread subset that contains every window
    it touches is closed under that node's communication — the legality
    condition for simulating the subset on its own core.
    """
    present = {int(t) for t in thread_ids}
    for group_start in {(tid // window) * window for tid in present}:
        # Threads in range(group_start, group_start + window) are exactly
        # the ones same_window() groups with group_start.
        for other in range(group_start, min(group_start + window, num_threads)):
            if other not in present:
                return False
    return True


def communication_windows(graph) -> tuple[list[int], Optional[str]]:
    """The transmission windows bounding ``graph``'s inter-thread traffic.

    This is the single statement of the shard/subset legality rule, shared
    by the multi-core partition planner (``sim/multicore.py::plan_shards``)
    and the simulator-side subset check (:func:`thread_subset_problem`):

    * every ELEVATOR/ELDST node must carry a bounded ``window``;
    * a BARRIER contributes its ``window`` if it has one; an un-windowed
      BARRIER degrades to a per-subset barrier, which preserves every
      value only if the graph moves no data through the scratchpad
      (scratch traffic ordered by a whole-block barrier may cross a
      subset boundary).

    Returns ``(windows, None)`` when cuts aligned to the windows are
    legal, or ``([], reason)`` when no cut is.
    """
    windows: list[int] = []
    for node in graph.nodes_with_opcode(Opcode.ELEVATOR, Opcode.ELDST):
        window = node.param("window")
        if window is None:
            return [], f"{node.label()} has no bounded transmission window"
        windows.append(int(window))
    has_scratch = bool(
        graph.nodes_with_opcode(Opcode.SCRATCH_LOAD, Opcode.SCRATCH_STORE)
    )
    for node in graph.nodes_with_opcode(Opcode.BARRIER):
        window = node.param("window")
        if window is not None:
            windows.append(int(window))
        elif has_scratch:
            return [], (
                f"{node.label()} synchronises scratchpad traffic across "
                "the whole block"
            )
    return windows, None


def thread_subset_problem(graph, thread_ids: Sequence[int], num_threads: int) -> Optional[str]:
    """Why ``thread_ids`` cannot be simulated as a stand-alone subset.

    Returns ``None`` when every inter-thread node of ``graph`` keeps its
    communication inside the subset: the graph's windows must be bounded
    (:func:`communication_windows`) and the subset closed under each of
    them.
    """
    windows, reason = communication_windows(graph)
    if reason is not None:
        return reason
    for window in sorted(set(windows)):
        if not subset_closed_under_window(thread_ids, window, num_threads):
            return (
                f"thread subset is not aligned to a transmission window "
                f"of {window}"
            )
    return None


def window_batch_problem(graph) -> Optional[str]:
    """Why ``graph`` cannot run on the window-batched engine (``None`` = it can).

    This is the single statement of window-batchability, shared by the
    static analyzer (``RA044``/``RA045``) and the engine's own
    construction check so the verdict IS the dispatch decision.  A
    communicating graph batches by window groups when its inter-thread
    traffic is *feed-forward*:

    * there is inter-thread traffic at all (otherwise the plain
      wave-batched engine applies — this function is about the
      communicating path);
    * no static cycle runs through an ELEVATOR's temporal edge
      (a recurrence such as the Fig. 6 prefix sum must be resolved
      token by token by the event engine);
    * every BARRIER carries a bounded ``window`` — an un-windowed
      barrier synchronises the whole block, so there is no group
      smaller than the launch to batch over.

    ELEVATOR/ELDST chains need no bounded ``window`` of their own: their
    consumer→producer maps are static (:func:`elevator_source_vec`), so
    chains bounded by coordinate geometry (e.g. the row/column forwarding
    of the paper's matrixMul) batch just as well — only *recurrences*
    are out of reach.
    """
    if not graph.has_interthread():
        return "no inter-thread nodes (the plain wave-batched engine applies)"
    try:
        graph.topological_order(ignore_temporal=False)
    except GraphError:
        return (
            "an inter-thread recurrence cycle requires token-by-token "
            "resolution"
        )
    for node in graph.nodes_with_opcode(Opcode.BARRIER):
        if node.param("window") is None:
            return f"{node.label()} synchronises the whole block (no bounded window)"
    return None
