"""Opcode and type definitions for the kernel dataflow-graph IR.

The MT-CGRA maps every static instruction of a kernel onto one functional
unit of the grid.  The paper's grid (Table 2) contains heterogeneous unit
classes — ALUs, FPUs, special compute units, load/store units, control
units (which double as elevator nodes in dMT-CGRA) and split/join units.
Each IR opcode therefore carries the :class:`UnitClass` it must be placed
on, its operand arity and a latency class used by the timed simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["DType", "UnitClass", "Opcode", "OpInfo", "OPCODE_INFO", "opcode_info"]


class DType(enum.Enum):
    """Value types carried by dataflow tokens."""

    I32 = "i32"
    F32 = "f32"
    BOOL = "bool"

    @property
    def is_float(self) -> bool:
        return self is DType.F32

    @property
    def is_integer(self) -> bool:
        return self is DType.I32


class UnitClass(enum.Enum):
    """Physical functional-unit classes of the CGRA grid (Fig. 7a)."""

    ALU = "alu"
    FPU = "fpu"
    SPECIAL = "special"
    LDST = "ldst"
    ELDST = "eldst"
    CONTROL = "control"
    ELEVATOR = "elevator"
    SPLIT_JOIN = "split_join"
    SOURCE = "source"
    SINK = "sink"
    BARRIER = "barrier"


class Opcode(enum.Enum):
    """Static dataflow-graph operations."""

    # --- sources (values injected by the thread streamer) -----------------
    CONST = "const"
    TID_X = "tid_x"
    TID_Y = "tid_y"
    TID_Z = "tid_z"
    TID_LINEAR = "tid_linear"

    # --- integer / floating-point arithmetic ------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    FMA = "fma"

    # --- special-function unit ops -----------------------------------------
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    EXP = "exp"
    LOG = "log"
    RCP = "rcp"

    # --- control-unit ops: bitwise, compares, select ------------------------
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    LAND = "land"
    LOR = "lor"
    LNOT = "lnot"
    SELECT = "select"

    # --- memory --------------------------------------------------------------
    LOAD = "load"
    STORE = "store"
    SCRATCH_LOAD = "scratch_load"
    SCRATCH_STORE = "scratch_store"

    # --- inter-thread communication (the paper's contribution) ---------------
    ELEVATOR = "elevator"
    ELDST = "eldst"

    # --- structural ----------------------------------------------------------
    SPLIT = "split"
    JOIN = "join"
    BARRIER = "barrier"
    OUTPUT = "output"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode."""

    unit_class: UnitClass
    min_arity: int
    max_arity: int
    commutative: bool = False
    has_output: bool = True

    def accepts_arity(self, n: int) -> bool:
        return self.min_arity <= n <= self.max_arity


_ARITH = {
    Opcode.ADD: OpInfo(UnitClass.ALU, 2, 2, commutative=True),
    Opcode.SUB: OpInfo(UnitClass.ALU, 2, 2),
    Opcode.MUL: OpInfo(UnitClass.ALU, 2, 2, commutative=True),
    Opcode.DIV: OpInfo(UnitClass.ALU, 2, 2),
    Opcode.MOD: OpInfo(UnitClass.ALU, 2, 2),
    Opcode.MIN: OpInfo(UnitClass.ALU, 2, 2, commutative=True),
    Opcode.MAX: OpInfo(UnitClass.ALU, 2, 2, commutative=True),
    Opcode.ABS: OpInfo(UnitClass.ALU, 1, 1),
    Opcode.NEG: OpInfo(UnitClass.ALU, 1, 1),
    Opcode.FMA: OpInfo(UnitClass.ALU, 3, 3),
}

_SPECIAL = {
    op: OpInfo(UnitClass.SPECIAL, 1, 1)
    for op in (Opcode.SQRT, Opcode.RSQRT, Opcode.EXP, Opcode.LOG, Opcode.RCP)
}

_CONTROL = {
    Opcode.AND: OpInfo(UnitClass.CONTROL, 2, 2, commutative=True),
    Opcode.OR: OpInfo(UnitClass.CONTROL, 2, 2, commutative=True),
    Opcode.XOR: OpInfo(UnitClass.CONTROL, 2, 2, commutative=True),
    Opcode.NOT: OpInfo(UnitClass.CONTROL, 1, 1),
    Opcode.SHL: OpInfo(UnitClass.CONTROL, 2, 2),
    Opcode.SHR: OpInfo(UnitClass.CONTROL, 2, 2),
    Opcode.LT: OpInfo(UnitClass.CONTROL, 2, 2),
    Opcode.LE: OpInfo(UnitClass.CONTROL, 2, 2),
    Opcode.GT: OpInfo(UnitClass.CONTROL, 2, 2),
    Opcode.GE: OpInfo(UnitClass.CONTROL, 2, 2),
    Opcode.EQ: OpInfo(UnitClass.CONTROL, 2, 2, commutative=True),
    Opcode.NE: OpInfo(UnitClass.CONTROL, 2, 2, commutative=True),
    Opcode.LAND: OpInfo(UnitClass.CONTROL, 2, 2, commutative=True),
    Opcode.LOR: OpInfo(UnitClass.CONTROL, 2, 2, commutative=True),
    Opcode.LNOT: OpInfo(UnitClass.CONTROL, 1, 1),
    Opcode.SELECT: OpInfo(UnitClass.CONTROL, 3, 3),
}

_SOURCES = {
    Opcode.CONST: OpInfo(UnitClass.SOURCE, 0, 0),
    Opcode.TID_X: OpInfo(UnitClass.SOURCE, 0, 0),
    Opcode.TID_Y: OpInfo(UnitClass.SOURCE, 0, 0),
    Opcode.TID_Z: OpInfo(UnitClass.SOURCE, 0, 0),
    Opcode.TID_LINEAR: OpInfo(UnitClass.SOURCE, 0, 0),
}

_MEMORY = {
    # LOAD: index [, ordering token]
    Opcode.LOAD: OpInfo(UnitClass.LDST, 1, 2),
    # STORE: index, value [, ordering token]; produces an ack token
    Opcode.STORE: OpInfo(UnitClass.LDST, 2, 3),
    Opcode.SCRATCH_LOAD: OpInfo(UnitClass.LDST, 1, 2),
    Opcode.SCRATCH_STORE: OpInfo(UnitClass.LDST, 2, 3),
}

_INTER_THREAD = {
    # ELEVATOR: single value input; params: delta, const, window
    Opcode.ELEVATOR: OpInfo(UnitClass.ELEVATOR, 1, 1),
    # ELDST: index, enable predicate [, ordering token]; params: array, delta, window
    Opcode.ELDST: OpInfo(UnitClass.ELDST, 2, 3),
}

_STRUCTURAL = {
    Opcode.SPLIT: OpInfo(UnitClass.SPLIT_JOIN, 1, 1),
    # JOIN outputs operand 0 but waits for both operands (ordering join)
    Opcode.JOIN: OpInfo(UnitClass.SPLIT_JOIN, 2, 2),
    Opcode.BARRIER: OpInfo(UnitClass.BARRIER, 1, 1),
    Opcode.OUTPUT: OpInfo(UnitClass.SINK, 1, 1, has_output=False),
}

OPCODE_INFO: dict[Opcode, OpInfo] = {
    **_SOURCES,
    **_ARITH,
    **_SPECIAL,
    **_CONTROL,
    **_MEMORY,
    **_INTER_THREAD,
    **_STRUCTURAL,
}


def opcode_info(opcode: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` of ``opcode``."""
    return OPCODE_INFO[opcode]
