"""Graph export helpers (DOT and networkx) for debugging and documentation."""

from __future__ import annotations

import networkx as nx

from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode, UnitClass

__all__ = ["to_networkx", "to_dot"]

_CLASS_COLORS = {
    UnitClass.ALU: "lightblue",
    UnitClass.FPU: "lightskyblue",
    UnitClass.SPECIAL: "plum",
    UnitClass.LDST: "lightsalmon",
    UnitClass.ELDST: "orange",
    UnitClass.CONTROL: "palegreen",
    UnitClass.ELEVATOR: "gold",
    UnitClass.SPLIT_JOIN: "lightgrey",
    UnitClass.SOURCE: "white",
    UnitClass.SINK: "grey80",
    UnitClass.BARRIER: "tomato",
}


def to_networkx(graph: DataflowGraph) -> nx.MultiDiGraph:
    """Convert a dataflow graph to a :class:`networkx.MultiDiGraph`."""
    g = nx.MultiDiGraph(name=graph.name)
    for node in graph.nodes:
        g.add_node(
            node.node_id,
            opcode=node.opcode.value,
            dtype=node.dtype.value,
            unit_class=node.unit_class.value,
            label=node.label(),
            **{f"param_{k}": v for k, v in node.params.items()},
        )
    for edge in graph.edges():
        temporal = graph.node(edge.dst).opcode is Opcode.ELEVATOR
        g.add_edge(edge.src, edge.dst, port=edge.dst_port, temporal=temporal)
    return g


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(graph: DataflowGraph) -> str:
    """Render the graph in Graphviz DOT format.

    Temporal edges (inter-thread communication through elevator nodes) are
    drawn dashed, mirroring the paper's figures.
    """
    lines = [f'digraph "{_dot_escape(graph.name)}" {{', "  rankdir=TB;"]
    for node in sorted(graph.nodes, key=lambda n: n.node_id):
        color = _CLASS_COLORS.get(node.unit_class, "white")
        extra = ""
        if node.opcode is Opcode.ELEVATOR:
            extra = f"\\nΔ={node.param('delta')} C={node.param('const')}"
            if node.param("window"):
                extra += f" win={node.param('window')}"
        elif node.opcode is Opcode.ELDST:
            extra = f"\\nΔ={node.param('delta')} array={node.param('array')}"
        elif node.opcode is Opcode.CONST:
            extra = f"\\n{node.param('value')}"
        elif node.param("array"):
            extra = f"\\n{node.param('array')}"
        lines.append(
            f'  n{node.node_id} [label="{_dot_escape(node.label() + extra)}", '
            f'style=filled, fillcolor={color}, shape=box];'
        )
    for edge in graph.edges():
        style = "dashed" if graph.node(edge.dst).opcode is Opcode.ELEVATOR else "solid"
        lines.append(
            f"  n{edge.src} -> n{edge.dst} "
            f'[label="{edge.dst_port}", style={style}];'
        )
    lines.append("}")
    return "\n".join(lines)
