"""The asyncio HTTP front end of the simulation service.

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams — no
framework, no new dependency.  It parses requests, routes them to
:class:`~repro.serve.handlers.SimulationService`, serialises the
returned payload as JSON and keeps connections alive.  Anything slow
happens in the service's worker pools; this layer's work per request is
a few dict operations, so cached traffic is answered at event-loop
speed.

Routes::

    POST /v1/compile                               compile + analyze (memoised)
    POST /v1/simulate                              simulate one point (memoised)
    POST /v1/explore                               run a campaign spec
    GET  /v1/kernels                               kernels with cached records
    GET  /v1/kernels/<digest>/characterization     latency/energy per config
    GET  /v1/stats                                 counters, hit ratios, timers
    GET  /healthz                                  liveness

Every JSON response carries a ``server`` object with the request's
wall-clock ``elapsed_s`` and, where a simulation record is involved, the
per-phase timers of the underlying pipeline run.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from http import HTTPStatus
from typing import Any, Awaitable, Callable
from urllib.parse import unquote, urlsplit

from repro.obs.log import get_logger
from repro.serve.canonicalize import ServeError
from repro.serve.handlers import SimulationService

__all__ = ["ReproServer", "MAX_BODY_BYTES"]

log = get_logger("serve")

#: Request bodies above this are refused with 413 (a campaign spec is a
#: few KiB; anything near this limit is a mistake or an attack).
MAX_BODY_BYTES = 16 * 1024 * 1024

_CHARACTERIZATION = re.compile(r"^/v1/kernels/(?P<digest>[0-9a-fA-F]{64})/characterization$")


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ReproServer:
    """One listening simulation server bound to a service instance."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # updated to the bound port after start()
        self._server: asyncio.base_events.Server | None = None
        #: Live per-connection tasks, cancelled on close() so a graceful
        #: shutdown never leaves kept-alive sockets dangling.
        self._clients: set[asyncio.Task] = set()

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> "ReproServer":
        self.service.start()
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("serving on http://%s:%d (store: %s)", self.host, self.port,
                 self.service.store.path)
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        self.service.close()

    # ------------------------------------------------------------- protocol
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload = await self._dispatch(method, path, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                await self._write_response(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError, BrokenPipeError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down mid-keep-alive
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass
            # Deregister last: close() must be able to gather this task
            # while it is still draining the socket.
            if task is not None:
                self._clients.discard(task)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "invalid Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body too large (limit {MAX_BODY_BYTES} bytes)")
        body = await reader.readexactly(length) if length else b""
        path = unquote(urlsplit(target).path)
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        phrase = HTTPStatus(status).phrase
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # -------------------------------------------------------------- routing
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        started = time.perf_counter()
        service = self.service
        service.metrics.inc("serve.requests")
        try:
            handler, needs_body = self._route(method, path)
            if needs_body:
                try:
                    parsed = json.loads(body.decode("utf-8")) if body else {}
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServeError(f"request body is not valid JSON: {exc}") from exc
                status, payload = await handler(parsed)
            else:
                # Every GET handler is synchronous (pure lookups).
                status, payload = handler()
        except ServeError as exc:
            service.metrics.inc("serve.errors.client")
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the server
            log.exception("internal error handling %s %s", method, path)
            service.metrics.inc("serve.errors.internal")
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - started
        service.metrics.observe("serve.response_s", elapsed)
        payload.setdefault("server", {})["elapsed_s"] = elapsed
        log.info("%s %s -> %d (%.4fs)", method, path, status, elapsed)
        return status, payload

    def _route(
        self, method: str, path: str
    ) -> tuple[Callable[..., Any], bool]:
        """Resolve ``(handler, needs_body)`` or raise a routing ServeError."""
        service = self.service
        post_routes: dict[str, Callable[[Any], Awaitable[tuple[int, dict]]]] = {
            "/v1/compile": service.compile,
            "/v1/simulate": service.simulate,
            "/v1/explore": service.explore,
        }
        get_routes: dict[str, Callable[[], tuple[int, dict]]] = {
            "/healthz": service.healthz,
            "/v1/stats": service.stats,
            "/v1/kernels": service.kernels_index,
        }
        match = _CHARACTERIZATION.match(path)
        if match is not None:
            if method != "GET":
                raise ServeError("use GET for characterization tables", status=405)
            digest = match.group("digest").lower()
            return (lambda: service.characterization(digest)), False
        if path in post_routes:
            if method != "POST":
                raise ServeError(f"use POST for {path}", status=405)
            return post_routes[path], True
        if path in get_routes:
            if method != "GET":
                raise ServeError(f"use GET for {path}", status=405)
            return get_routes[path], False
        raise ServeError(f"no such endpoint: {method} {path}", status=404)
