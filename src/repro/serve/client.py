"""Minimal client helpers: JSON requests and an embedded server harness.

:func:`request_json` is a tiny stdlib HTTP client for talking to a
running server; :class:`LocalServer` runs a whole server on a background
thread with its own event loop — the harness the cache-correctness tests
and the warm/cold benchmark drive real HTTP traffic through, and a
convenient way to embed the service in a notebook or script::

    from repro.serve.client import LocalServer

    with LocalServer(store_dir=".explore-cache") as server:
        status, body = server.request(
            "POST", "/v1/simulate", {"workload": "matrixMul", "variant": "dmt"}
        )
        print(status, body["cache"], body["record"]["result"]["cycles"])
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from pathlib import Path
from typing import Any

from repro.explore.cache import DEFAULT_CACHE_DIR
from repro.serve.app import ReproServer
from repro.serve.handlers import SimulationService

__all__ = ["LocalServer", "request_json"]


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
    timeout: float = 300.0,
) -> tuple[int, dict[str, Any]]:
    """One HTTP request with a JSON body; returns ``(status, payload)``."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        connection.request(method, path, body=data, headers=headers)
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload
    finally:
        connection.close()


class LocalServer:
    """A live server on a daemon thread (context manager).

    ``workers=0`` (the default here, unlike the CLI) runs simulations on
    in-process threads — no forked pool to spin up or tear down per
    test.  The underlying :class:`SimulationService` is exposed as
    ``.service`` so callers can assert on its metrics and stores.
    """

    def __init__(
        self,
        store_dir: str | Path = DEFAULT_CACHE_DIR,
        *,
        workers: int = 0,
        kernel_lru: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = SimulationService(store_dir, workers=workers, kernel_lru=kernel_lru)
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "LocalServer":
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server failed to start within 60s")
        if self._startup_error is not None:
            raise RuntimeError(f"server failed to start: {self._startup_error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = ReproServer(self.service, host=self.host, port=self.port)
        try:
            loop.run_until_complete(server.start())
            self.port = server.port
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.close())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=60)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "LocalServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------- requests
    def request(
        self, method: str, path: str, body: dict[str, Any] | None = None, timeout: float = 300.0
    ) -> tuple[int, dict[str, Any]]:
        """One JSON request against this server."""
        return request_json(self.host, self.port, method, path, body, timeout=timeout)
