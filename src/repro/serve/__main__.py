"""CLI: ``python -m repro.serve`` — run the simulation server.

Binds the asyncio HTTP server and blocks until interrupted.  The record
store defaults to the explore subsystem's ``.explore-cache/`` directory,
so campaigns run offline pre-warm the server and served traffic
back-fills future campaigns.

Usage::

    python -m repro.serve [--host 127.0.0.1] [--port 8787]
                          [--store-dir .explore-cache]
                          [--workers N] [--kernel-lru 64] [--quiet]

``--workers 0`` runs simulations on in-process threads (useful for
single-user or test setups); the default is one worker process per CPU.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from repro.explore.cache import DEFAULT_CACHE_DIR
from repro.obs.log import configure
from repro.serve.app import ReproServer
from repro.serve.handlers import SimulationService


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve memoised compile/simulate/explore requests over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8787, help="bind port (default: %(default)s)")
    parser.add_argument(
        "--store-dir",
        default=str(DEFAULT_CACHE_DIR),
        help="persistent record store directory, shared with repro.explore "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation worker processes (default: CPU count; 0 = in-process threads)",
    )
    parser.add_argument(
        "--kernel-lru",
        type=int,
        default=64,
        help="compiled kernels kept live in memory (default: %(default)s)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress request logging")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    service = SimulationService(
        args.store_dir, workers=args.workers, kernel_lru=args.kernel_lru
    )
    server = ReproServer(service, host=args.host, port=args.port)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.close()


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    configure(verbosity=0 if args.quiet else 1, stream=sys.stderr)
    with contextlib.suppress(KeyboardInterrupt, asyncio.CancelledError):
        asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
