"""The server's memoisation tiers: kernel LRU and single-flight table.

Three layers make repeat traffic O(lookup):

1. the **persistent record store** — the explore subsystem's
   content-addressed JSONL :class:`~repro.explore.cache.ResultCache`,
   shared verbatim (same directory, same schema), so campaigns pre-warm
   the server and served traffic back-fills campaigns;
2. the **in-process kernel LRU** (:class:`KernelLRU`) holding live
   :class:`~repro.compiler.pipeline.CompiledKernel` objects keyed by
   ``kernel digest + config digest`` — compilation is pure w.r.t. those
   identities, so a bounded map of the hottest kernels answers repeat
   ``/v1/compile`` traffic without touching the compiler;
3. the **single-flight table** (:class:`SingleFlight`) collapsing N
   concurrent identical requests into one simulation — the classic
   thundering-herd guard: the first request runs, the other N-1 await
   its future and are answered from the same record.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Awaitable, Callable

__all__ = ["KernelLRU", "SingleFlight"]


class KernelLRU:
    """Bounded least-recently-used map (used for compiled kernels).

    Not thread-safe by design: the server only touches it from the event
    loop.  ``hits``/``misses`` feed ``GET /v1/stats``.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """Return the cached value (refreshing its recency) or ``None``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert or refresh one entry, evicting the coldest past capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class SingleFlight:
    """Deduplicate concurrent async work by key (one flight per key).

    :meth:`run` either starts ``factory`` (first caller for the key) or
    awaits the in-flight future (every concurrent duplicate).  The check
    is synchronous with respect to the event loop, so there is no window
    in which two callers can both decide to start the work.
    """

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, factory: Callable[[], Awaitable[Any]]
    ) -> tuple[Any, bool]:
        """Return ``(result, coalesced)`` for ``key``.

        ``coalesced`` is ``True`` when this call piggybacked on an
        already-running flight instead of executing ``factory`` itself.
        A failing factory propagates its exception to every waiter.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing), True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Late joiners must never crash on an orphaned exception: mark the
        # future's exception as retrieved even when no duplicate awaited it.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        try:
            result = await factory()
        except BaseException as exc:
            future.set_exception(exc)
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            del self._inflight[key]
