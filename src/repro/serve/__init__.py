"""Simulation-as-a-service: a digest-keyed compile/simulate server.

The paper's evaluation pipeline — compile a dMT kernel once, simulate it
under many configurations — is pure with respect to its request
identity: the same (workload, variant, params, engine, seed, config)
always produces the same counters, energy and outputs.  ``repro.serve``
exploits that purity to serve repeat traffic at O(lookup) cost instead
of O(recompile + resimulate):

* **Canonicalization** (:mod:`repro.serve.canonicalize`) folds request
  bodies into the same SHA-256 digests :mod:`repro.explore` caches by,
  so server, campaign runner and offline tools share one key space.
* **Memoisation** (:mod:`repro.serve.cache`,
  :class:`~repro.explore.cache.ResultCache`): an in-process LRU of live
  :class:`~repro.compiler.pipeline.CompiledKernel` objects answers
  repeat compiles; the explore subsystem's persistent JSONL store
  answers repeat simulations — and single-flight deduplication collapses
  N concurrent identical requests into one worker-pool simulation.
* **Characterization tables** aggregate a kernel's cached records into
  latency/energy-per-config lookup rows
  (``GET /v1/kernels/<digest>/characterization``).
* **Transport** (:mod:`repro.serve.app`): a stdlib-only asyncio HTTP/1.1
  server; simulations run on a worker pool so the event loop never
  blocks on a long event-engine run.

Start one with::

    python -m repro.serve --port 8787

and talk JSON to it::

    curl -s localhost:8787/healthz
    curl -s -XPOST localhost:8787/v1/simulate \\
         -d '{"workload": "matrixMul", "variant": "dmt"}'

See ``docs/api.md`` for the endpoint reference and
``docs/architecture.md`` for where this layer sits in the pipeline.
"""

from repro.serve.app import ReproServer
from repro.serve.cache import KernelLRU, SingleFlight
from repro.serve.canonicalize import (
    CanonicalRequest,
    ServeError,
    canonicalize_compile,
    canonicalize_simulate,
    kernel_digest,
)
from repro.serve.client import LocalServer, request_json
from repro.serve.handlers import SimulationService

__all__ = [
    "CanonicalRequest",
    "KernelLRU",
    "LocalServer",
    "ReproServer",
    "ServeError",
    "SimulationService",
    "SingleFlight",
    "canonicalize_compile",
    "canonicalize_simulate",
    "kernel_digest",
    "request_json",
]
