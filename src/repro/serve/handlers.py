"""Endpoint logic of the simulation service (transport-agnostic).

:class:`SimulationService` implements what each route *means* — the HTTP
layer in :mod:`repro.serve.app` only parses requests and serialises the
returned payloads.  Handlers are ``async`` and run on the event loop;
anything that takes real time (a compile, a 30-second event-engine
simulation) is pushed onto a worker pool through
:meth:`asyncio.loop.run_in_executor`, so the loop keeps accepting and
answering cached requests while simulations run.

The memoisation path of one simulate request::

    body ──canonicalize──▶ RunPoint.key ──store.get──▶ hit?  ──▶ record
                                         │ miss
                                         ▼
                              single-flight table ──▶ already running? await it
                                         │ first
                                         ▼
                              worker pool: execute_point  (the explore
                              subsystem's worker — records are
                              byte-compatible with campaign records)
                                         │
                                         ▼
                              store.put (persists, serves every future
                              request and every explore campaign)
"""

from __future__ import annotations

import asyncio
import os
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

from repro.analyze.manager import analyze_kernel
from repro.compiler.pipeline import compile_kernel
from repro.config.system import SystemConfig
from repro.errors import ExplorationError
from repro.explore.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.explore.runner import execute_point
from repro.explore.spec import CampaignSpec, RunPoint
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import KernelLRU, SingleFlight
from repro.serve.canonicalize import (
    CanonicalRequest,
    ServeError,
    build_graph,
    canonical_from_point,
    canonicalize_compile,
    canonicalize_simulate,
    kernel_digest,
)

__all__ = ["SimulationService"]

log = get_logger("serve")


def _compile_point(
    workload: str, variant: str, params: Mapping[str, Any], config: SystemConfig
):
    """Worker-side compile: build the graph, compile, analyze (blocking)."""
    graph = build_graph(workload, variant, params)
    with warnings.catch_warnings():
        # Analyzer warnings become diagnostics in the response body; the
        # server process's stderr is not the place for them.
        warnings.simplefilter("ignore")
        compiled = compile_kernel(graph, config)
    return compiled, analyze_kernel(compiled)


class SimulationService:
    """State and behaviour behind the server's endpoints."""

    def __init__(
        self,
        store_dir: str | Path = DEFAULT_CACHE_DIR,
        *,
        workers: int | None = None,
        kernel_lru: int = 64,
        store: ResultCache | None = None,
    ) -> None:
        #: Persistent simulate memo — the explore subsystem's store class
        #: and, by default, its directory.
        self.store = store if store is not None else ResultCache(store_dir)
        self.kernels = KernelLRU(kernel_lru)
        self.flights = SingleFlight()
        self.metrics = MetricsRegistry()
        #: ``workers=0`` runs simulations on an in-process thread pool
        #: (cheap startup — tests, benchmarks, single-user CLIs);
        #: ``workers>=1`` forks a process pool of that size (the serving
        #: default: simulations are CPU-bound Python, so processes are
        #: what actually scales on a multi-core host).
        self.workers = os.cpu_count() or 1 if workers is None else int(workers)
        self._sim_pool: Executor | None = None
        self._compile_pool: ThreadPoolExecutor | None = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "SimulationService":
        """Load the store and create the worker pools (idempotent)."""
        self.store.load()
        if self._sim_pool is None:
            if self.workers <= 0:
                self._sim_pool = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="serve-sim"
                )
            else:
                self._sim_pool = ProcessPoolExecutor(max_workers=self.workers)
        if self._compile_pool is None:
            # Compiles are short and their product (a live CompiledKernel
            # for the LRU) must stay in-process, so they always run on
            # threads regardless of the simulation pool flavour.
            self._compile_pool = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="serve-compile"
            )
        self._started_at = time.monotonic()
        return self

    def close(self) -> None:
        if self._sim_pool is not None:
            self._sim_pool.shutdown(wait=True)
            self._sim_pool = None
        if self._compile_pool is not None:
            self._compile_pool.shutdown(wait=True)
            self._compile_pool = None

    # ------------------------------------------------------------- internals
    async def _get_or_simulate(self, canonical: CanonicalRequest) -> tuple[dict, str]:
        """Serve one point from the store, or simulate it exactly once.

        Returns ``(record, cache)`` where ``cache`` is ``"hit"`` (store
        lookup), ``"miss"`` (this call simulated) or ``"coalesced"``
        (an identical concurrent request simulated; we awaited it).
        """
        self.metrics.inc("serve.lookups")
        record = self.store.get(canonical.key)
        if record is not None:
            self.metrics.inc("serve.cache.hits")
            return record, "hit"

        async def factory() -> dict:
            self.metrics.inc("serve.simulations")
            assert self._sim_pool is not None, "service not started"
            loop = asyncio.get_running_loop()
            with self.metrics.timer("serve.phase.simulate"):
                record = await loop.run_in_executor(
                    self._sim_pool, execute_point, canonical.point.payload()
                )
            self.store.put(canonical.key, record)
            return record

        record, coalesced = await self.flights.run(canonical.key, factory)
        self.metrics.inc("serve.cache.coalesced" if coalesced else "serve.cache.misses")
        return record, "coalesced" if coalesced else "miss"

    # ------------------------------------------------------------- endpoints
    async def simulate(self, body: Any) -> tuple[int, dict[str, Any]]:
        """``POST /v1/simulate`` — memoised run of one simulation point."""
        self.metrics.inc("serve.requests.simulate")
        with self.metrics.timer("serve.phase.canonicalize"):
            canonical = canonicalize_simulate(body)
        record, cache = await self._get_or_simulate(canonical)
        result = record.get("result") or {}
        return 200, {
            "key": canonical.key,
            "kernel_digest": canonical.kernel_digest,
            "config_digest": canonical.config_digest,
            "cache": cache,
            "status": record.get("status"),
            "record": record,
            "server": {"phases": dict(result.get("phases") or {})},
        }

    async def compile(self, body: Any) -> tuple[int, dict[str, Any]]:
        """``POST /v1/compile`` — memoised compile + static analysis."""
        self.metrics.inc("serve.requests.compile")
        with self.metrics.timer("serve.phase.canonicalize"):
            canonical = canonicalize_compile(body)
        entry = self.kernels.get(canonical.key)
        cache = "hit"
        if entry is None:

            async def factory() -> tuple[Any, dict[str, Any]]:
                self.metrics.inc("serve.compiles")
                assert self._compile_pool is not None, "service not started"
                loop = asyncio.get_running_loop()
                point = canonical.point
                with self.metrics.timer("serve.phase.compile"):
                    compiled, analysis = await loop.run_in_executor(
                        self._compile_pool,
                        _compile_point,
                        point.workload,
                        point.variant,
                        dict(point.params),
                        point.config(),
                    )
                summary = {
                    "name": compiled.name,
                    "replicas": compiled.replicas,
                    "num_threads": compiled.num_threads,
                    "nodes": len(compiled.graph),
                    "edges": compiled.graph.num_edges(),
                    "elevator_nodes": len(compiled.elevator_nodes()),
                    "eldst_nodes": len(compiled.eldst_nodes()),
                    "spilled_nodes": len(compiled.spilled_nodes()),
                    "uses_barriers": compiled.uses_barriers(),
                }
                entry = (
                    compiled,
                    {
                        "analysis": analysis.to_dict(),
                        "kernel": summary,
                        "report": compiled.report(),
                    },
                )
                self.kernels.put(canonical.key, entry)
                return entry

            entry, coalesced = await self.flights.run("compile:" + canonical.key, factory)
            cache = "coalesced" if coalesced else "miss"
        _, payload = entry
        return 200, {
            "kernel_digest": canonical.kernel_digest,
            "config_digest": canonical.config_digest,
            "cache": cache,
            "workload": canonical.workload,
            "variant": canonical.variant,
            **payload,
        }

    async def explore(self, body: Any) -> tuple[int, dict[str, Any]]:
        """``POST /v1/explore`` — run a whole campaign spec through the memo.

        The body is a campaign spec in the exact JSON form
        ``python -m repro.explore run`` takes.  Every expanded point goes
        through the same store/single-flight path as ``/v1/simulate``
        (duplicates across concurrent campaigns collapse too); the
        response summarises per-point provenance.
        """
        self.metrics.inc("serve.requests.explore")
        try:
            spec = CampaignSpec.from_dict(_require_mapping(body))
            points = spec.expand()
        except ExplorationError as exc:
            raise ServeError(str(exc)) from exc

        async def one(point: RunPoint) -> dict[str, Any]:
            canonical = canonical_from_point(point)
            record, cache = await self._get_or_simulate(canonical)
            result = record.get("result") or {}
            return {
                "key": canonical.key,
                "kernel_digest": canonical.kernel_digest,
                "config_digest": canonical.config_digest,
                "label": point.label(),
                "cache": cache,
                "status": record.get("status"),
                "cycles": result.get("cycles"),
                "energy_pj": result.get("energy_pj"),
                "error": record.get("error"),
            }

        rows = await asyncio.gather(*(one(point) for point in points))
        by_cache = {kind: sum(1 for r in rows if r["cache"] == kind) for kind in
                    ("hit", "miss", "coalesced")}
        return 200, {
            "campaign": spec.name,
            "points": len(rows),
            "hits": by_cache["hit"],
            "misses": by_cache["miss"],
            "coalesced": by_cache["coalesced"],
            "errors": sum(1 for r in rows if r["status"] != "ok"),
            "results": list(rows),
        }

    def characterization(self, digest: str) -> tuple[int, dict[str, Any]]:
        """``GET /v1/kernels/<digest>/characterization``.

        Aggregates every stored record of one kernel into its
        latency/energy-per-config lookup table: one row per cached
        (config digest, engine, seed) — the repeat-traffic answer shape
        (cf. ``get_latency_cc``-style characterization tables).
        """
        self.metrics.inc("serve.requests.characterization")
        rows: list[dict[str, Any]] = []
        meta: dict[str, Any] | None = None
        error_records = 0
        for key, record in self.store.items():
            point = record.get("point") or {}
            try:
                kdigest = kernel_digest(
                    point["workload"], point["variant"], point.get("params") or {}
                )
            except Exception:  # noqa: BLE001 - foreign records never 500 the table
                continue
            if kdigest != digest:
                continue
            if meta is None:
                meta = {
                    "workload": point["workload"],
                    "variant": point["variant"],
                    "params": point.get("params") or {},
                }
            if record.get("status") != "ok":
                error_records += 1
                continue
            result = record.get("result") or {}
            counters = result.get("counters") or {}
            rows.append(
                {
                    "key": key,
                    "config_digest": point.get("config_digest"),
                    "overrides": point.get("overrides") or {},
                    "engine": point.get("engine"),
                    "resolved_engine": counters.get("engine"),
                    "cores": counters.get("cores"),
                    "seed": point.get("seed"),
                    "cycles": result.get("cycles"),
                    "static_min_cycles": counters.get("static_min_cycles"),
                    "energy_pj": result.get("energy_pj"),
                    "energy": result.get("energy") or {},
                    "outputs_digest": result.get("outputs_digest"),
                }
            )
        if meta is None:
            raise ServeError(f"no cached records for kernel digest '{digest}'", status=404)
        rows.sort(key=lambda r: (str(r["config_digest"]), str(r["engine"]), int(r["seed"] or 0)))
        return 200, {
            "kernel_digest": digest,
            **meta,
            "rows": rows,
            "error_records": error_records,
        }

    def kernels_index(self) -> tuple[int, dict[str, Any]]:
        """``GET /v1/kernels`` — every kernel the store has rows for."""
        self.metrics.inc("serve.requests.kernels")
        groups: dict[str, dict[str, Any]] = {}
        for _, record in self.store.items():
            point = record.get("point") or {}
            try:
                kdigest = kernel_digest(
                    point["workload"], point["variant"], point.get("params") or {}
                )
            except Exception:  # noqa: BLE001
                continue
            group = groups.setdefault(
                kdigest,
                {
                    "kernel_digest": kdigest,
                    "workload": point["workload"],
                    "variant": point["variant"],
                    "params": point.get("params") or {},
                    "records": 0,
                    "ok_records": 0,
                },
            )
            group["records"] += 1
            if record.get("status") == "ok":
                group["ok_records"] += 1
        kernels = sorted(
            groups.values(), key=lambda g: (g["workload"], g["variant"], g["kernel_digest"])
        )
        return 200, {"kernels": kernels, "count": len(kernels)}

    def stats(self) -> tuple[int, dict[str, Any]]:
        """``GET /v1/stats`` — counters, hit ratios and phase timers."""
        self.metrics.inc("serve.requests.stats")
        metrics = self.metrics
        return 200, {
            "uptime_s": time.monotonic() - self._started_at,
            "workers": self.workers,
            "store": {"path": str(self.store.path), "records": len(self.store)},
            "kernel_lru": self.kernels.stats(),
            "cache": {
                "lookups": metrics.counter("serve.lookups"),
                "hits": metrics.counter("serve.cache.hits"),
                "misses": metrics.counter("serve.cache.misses"),
                "coalesced": metrics.counter("serve.cache.coalesced"),
                "hit_ratio": metrics.ratio("serve.cache.hits", "serve.lookups"),
            },
            "simulations": metrics.counter("serve.simulations"),
            "compiles": metrics.counter("serve.compiles"),
            "inflight": len(self.flights),
            "metrics": metrics.snapshot("serve."),
        }

    def healthz(self) -> tuple[int, dict[str, Any]]:
        """``GET /healthz`` — liveness (never touches store or pools)."""
        return 200, {"status": "ok"}


def _require_mapping(body: Any) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise ServeError("explore request must be a campaign spec JSON object")
    return body
