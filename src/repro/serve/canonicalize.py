"""Request canonicalization: JSON bodies to the digests every cache keys on.

The server's whole memoisation story rests on one rule: **two requests
that mean the same simulation must hash to the same key**, no matter how
they are spelled.  This module owns that rule, and it owns none of it
itself — a simulate body is folded into the exact
:class:`~repro.explore.spec.RunPoint` identity the explore subsystem
already caches by (SHA-256 over canonical config + workload + resolved
params + variant + engine + seed + schema version), so the server, the
campaign runner and any offline tooling share one key space and one
persistent store.

Two digests matter per request:

* ``RunPoint.key()`` — the *simulation* identity (config included); the
  key of the JSONL record store and the single-flight table.
* :func:`kernel_digest` — the *kernel* identity (workload + variant +
  resolved params, config excluded); the grouping key of
  characterization tables, under which many config digests' rows
  accumulate.

Validation is eager and loud: unknown body keys, unknown workloads,
parameter typos, illegal config overrides — every one of them raises
:class:`ServeError` with an HTTP status before any simulation time is
spent, mirroring the explore spec's fail-before-you-burn contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Mapping

from repro.config.system import SystemConfig, config_digest
from repro.errors import ConfigurationError, ExplorationError, ReproError, WorkloadError
from repro.explore.spec import CACHE_SCHEMA_VERSION, RunPoint, resolved_base_config
from repro.graph.dfg import DataflowGraph
from repro.harness.experiments import GRAPH_VARIANTS
from repro.sim.cycle import ENGINES
from repro.workloads.base import ARCHITECTURES
from repro.workloads.registry import get_workload

__all__ = [
    "CanonicalRequest",
    "ServeError",
    "build_graph",
    "canonical_from_point",
    "canonicalize_compile",
    "canonicalize_simulate",
    "kernel_digest",
]

#: Graph variants a simulate request may name (the paper's architectures
#: plus the extra graph variants the harness runs).
SIMULATE_VARIANTS = tuple(dict.fromkeys(ARCHITECTURES + GRAPH_VARIANTS))
#: Variants that compile to a CGRA kernel (everything but the SIMT baseline).
COMPILE_VARIANTS = tuple(v for v in SIMULATE_VARIANTS if v != "fermi")

_SIMULATE_KEYS = {"workload", "variant", "engine", "seed", "params", "config", "overrides"}
_COMPILE_KEYS = {"workload", "variant", "params", "config"}


class ServeError(ReproError):
    """A request the server must refuse, carrying its HTTP status."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


@dataclass(frozen=True)
class CanonicalRequest:
    """One validated request, reduced to the identities the caches use."""

    point: RunPoint
    #: ``point.key()`` — record-store / single-flight key.
    key: str
    #: SHA-256 of the fully resolved :class:`SystemConfig`.
    config_digest: str
    #: Config-independent kernel identity (characterization grouping key).
    kernel_digest: str

    @property
    def workload(self) -> str:
        return self.point.workload

    @property
    def variant(self) -> str:
        return self.point.variant


@lru_cache(maxsize=4096)
def _kernel_digest(workload: str, variant: str, params_blob: str) -> str:
    resolved = get_workload(workload).params_with_defaults(json.loads(params_blob))
    blob = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "workload": workload,
            "variant": variant,
            "params": resolved,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def kernel_digest(workload: str, variant: str, params: Mapping[str, Any] | None = None) -> str:
    """Config-independent identity of one kernel (workload/variant/params).

    Parameters are resolved against the workload's defaults first, so
    ``{}`` and an explicit ``{"dim": 16}`` (the default) digest
    identically — the same normalisation :meth:`RunPoint.key` applies.
    Raises :class:`~repro.errors.WorkloadError` for unknown workloads or
    parameter typos.
    """
    params_blob = json.dumps(dict(params or {}), sort_keys=True, separators=(",", ":"))
    return _kernel_digest(str(workload), str(variant), params_blob)


def _require_mapping(body: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise ServeError(f"{what} must be a JSON object")
    return body


def _scalar_mapping(value: Any, field: str) -> dict[str, Any]:
    value = value or {}
    if not isinstance(value, Mapping):
        raise ServeError(f"'{field}' must be a JSON object")
    out: dict[str, Any] = {}
    for key, item in value.items():
        if isinstance(item, (dict, list)):
            raise ServeError(f"'{field}.{key}' must be a scalar, not {type(item).__name__}")
        out[str(key)] = item
    return out


def _common_fields(
    body: Mapping[str, Any], allowed: set[str], legal_variants: tuple[str, ...]
) -> tuple[str, str, dict[str, Any], SystemConfig]:
    unknown = set(body) - allowed
    if unknown:
        raise ServeError(
            f"unknown request key(s) {sorted(unknown)}; expected a subset of {sorted(allowed)}"
        )
    workload = body.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ServeError("'workload' is required and must be a string")
    variant = body.get("variant", "dmt")
    if variant not in legal_variants:
        raise ServeError(f"unknown variant '{variant}'; expected one of {list(legal_variants)}")
    params = _scalar_mapping(body.get("params"), "params")
    config = body.get("config") or {}
    if not isinstance(config, Mapping):
        raise ServeError("'config' must be a (partial) nested config object")
    try:
        base = resolved_base_config(config)
    except ConfigurationError as exc:
        raise ServeError(f"invalid config: {exc}") from exc
    # Unknown workloads and parameter typos fail here, loudly, before any
    # digest exists for them.
    try:
        get_workload(workload).params_with_defaults(params)
    except WorkloadError as exc:
        raise ServeError(str(exc)) from exc
    return workload, str(variant), params, base


def canonicalize_simulate(body: Any) -> CanonicalRequest:
    """Validate a ``POST /v1/simulate`` body and derive its digests.

    Accepted keys: ``workload`` (required), ``variant``, ``engine``,
    ``seed``, ``params`` (workload parameters), ``config`` (partial
    nested :class:`SystemConfig` merged over the Table 2 defaults) and
    ``overrides`` (dotted-path config overrides, the sweep-axis form).
    """
    body = _require_mapping(body, "simulate request")
    workload, variant, params, base = _common_fields(body, _SIMULATE_KEYS, SIMULATE_VARIANTS)
    engine = body.get("engine", "auto")
    if engine not in ENGINES:
        raise ServeError(f"unknown engine '{engine}'; expected one of {list(ENGINES)}")
    try:
        seed = int(body.get("seed", 0))
    except (TypeError, ValueError) as exc:
        raise ServeError(f"'seed' must be an integer: {exc}") from exc
    overrides = _scalar_mapping(body.get("overrides"), "overrides")

    point = RunPoint(
        workload=workload,
        variant=variant,
        engine=str(engine),
        seed=seed,
        params=tuple(sorted(params.items())),
        overrides=tuple(sorted(overrides.items())),
        base_config=base,
    )
    try:
        key = point.key()
        digest = config_digest(point.config_dict())
    except (ExplorationError, ConfigurationError) as exc:
        raise ServeError(str(exc)) from exc
    return CanonicalRequest(
        point=point,
        key=key,
        config_digest=digest,
        kernel_digest=kernel_digest(workload, variant, params),
    )


def canonical_from_point(point: RunPoint) -> CanonicalRequest:
    """Wrap an already-validated :class:`RunPoint` (explore expansion path).

    Campaign specs validate their own fields in
    :meth:`CampaignSpec.__post_init__`; their expanded points skip the
    body validation and go straight to the digests, guaranteeing a served
    campaign and an offline ``python -m repro.explore run`` of the same
    spec key into the same store entries.
    """
    return CanonicalRequest(
        point=point,
        key=point.key(),
        config_digest=config_digest(point.config_dict()),
        kernel_digest=kernel_digest(point.workload, point.variant, dict(point.params)),
    )


def canonicalize_compile(body: Any) -> CanonicalRequest:
    """Validate a ``POST /v1/compile`` body and derive its digests.

    Accepted keys: ``workload`` (required), ``variant``, ``params``,
    ``config``.  The SIMT baseline (``fermi``) has no CGRA kernel and is
    rejected.  The returned ``key`` is the compile-cache key
    (``kernel digest + config digest`` — compilation is pure w.r.t.
    those two identities).
    """
    body = _require_mapping(body, "compile request")
    workload, variant, params, base = _common_fields(body, _COMPILE_KEYS, COMPILE_VARIANTS)
    point = RunPoint(
        workload=workload,
        variant=variant,
        params=tuple(sorted(params.items())),
        base_config=base,
    )
    try:
        digest = config_digest(point.config_dict())
    except ConfigurationError as exc:
        raise ServeError(str(exc)) from exc
    kdigest = kernel_digest(workload, variant, params)
    return CanonicalRequest(
        point=point,
        key=f"{kdigest}:{digest}",
        config_digest=digest,
        kernel_digest=kdigest,
    )


def build_graph(workload_name: str, variant: str, params: Mapping[str, Any]) -> DataflowGraph:
    """Build the dataflow graph of one kernel (no input data required)."""
    workload = get_workload(workload_name)
    resolved = workload.params_with_defaults(dict(params))
    try:
        if variant == "mt":
            return workload.build_mt(resolved)
        if variant == "dmt":
            return workload.build_dmt(resolved)
        if variant == "dmt_win":
            return workload.build_dmt_windowed(resolved)
        if variant == "stream":
            return workload.build_stream(resolved)
    except WorkloadError as exc:
        raise ServeError(str(exc)) from exc
    raise ServeError(f"variant '{variant}' has no CGRA kernel graph")
