"""Process-local metrics: counters, gauges, histograms and phase timers.

One module-level :data:`REGISTRY` instruments the pipeline phases
(compile → analyze → simulate → report, see
:func:`repro.harness.experiments.run_workload`); anything else in the
process may register its own counters under dotted names.  The registry
is deliberately tiny — plain dicts, no locks, no export protocol — the
snapshot is a flat JSON-able dict that rides benchmark records and
campaign reports.

Usage::

    from repro.obs.metrics import REGISTRY, timer

    REGISTRY.inc("explore.points")
    REGISTRY.set_gauge("explore.jobs", 4)
    with timer("compile") as span:
        compiled = compile_kernel(graph)
    print(span.seconds)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator

__all__ = ["Histogram", "MetricsRegistry", "REGISTRY", "TimerSpan", "timer"]


@dataclass
class Histogram:
    """Streaming summary of one observed quantity (no buckets kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


@dataclass
class TimerSpan:
    """Handle yielded by :meth:`MetricsRegistry.timer`; ``seconds`` is
    set when the ``with`` block exits (0.0 while still inside)."""

    name: str
    seconds: float = 0.0


@dataclass
class MetricsRegistry:
    """Counters, gauges and histograms for one process."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    # ---------------------------------------------------------------- update
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, Histogram()).observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[TimerSpan]:
        """Time a phase; the duration lands in the ``timer.<name>``
        histogram and on the yielded :class:`TimerSpan`."""
        span = TimerSpan(name=name)
        start = perf_counter()
        try:
            yield span
        finally:
            span.seconds = perf_counter() - start
            self.observe(f"timer.{name}", span.seconds)

    # ----------------------------------------------------------------- query
    def counter(self, name: str) -> float:
        """Current value of one counter (0.0 if it never incremented)."""
        return self.counters.get(name, 0.0)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counters[numerator] / counters[denominator]``, 0.0 when empty.

        The shape every hit-ratio wants: ``ratio("serve.cache.hits",
        "serve.requests")`` never divides by zero on a fresh registry.
        """
        total = self.counters.get(denominator, 0.0)
        return self.counters.get(numerator, 0.0) / total if total else 0.0

    def snapshot(self, prefix: str | None = None) -> dict[str, Any]:
        """Flat JSON-able view: ``counter.*``, ``gauge.*``, ``<hist>.*``.

        ``prefix`` restricts the view to metric names starting with it
        (e.g. ``snapshot("serve.")`` for one subsystem's corner of a
        shared registry).
        """

        def keep(name: str) -> bool:
            return prefix is None or name.startswith(prefix)

        out: dict[str, Any] = {}
        for name, value in sorted(self.counters.items()):
            if keep(name):
                out[f"counter.{name}"] = value
        for name, value in sorted(self.gauges.items()):
            if keep(name):
                out[f"gauge.{name}"] = value
        for name, hist in sorted(self.histograms.items()):
            if keep(name):
                for stat, value in hist.as_dict().items():
                    out[f"{name}.{stat}"] = value
        return out

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


#: The process-wide registry the pipeline phases report into.
REGISTRY = MetricsRegistry()


def timer(name: str):
    """``with timer("compile"):`` — shorthand for ``REGISTRY.timer``."""
    return REGISTRY.timer(name)
