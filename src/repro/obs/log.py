"""Logging for the reproduction: one ``repro.*`` namespace, one knob.

Library modules fetch a namespaced logger and emit through it; nothing
is printed unless an entry point opts in::

    from repro.obs.log import get_logger
    log = get_logger("explore")          # -> logging.Logger "repro.explore"
    log.info("campaign '%s': %d points", name, total)

Entry points (CLIs, benchmark scripts) call :func:`configure` once::

    configure(verbosity=1)               # 0=WARNING, 1=INFO, >=2=DEBUG

``configure`` installs exactly one stream handler on the ``repro`` root
logger (re-calling replaces it, so tests and REPLs can reconfigure
freely) and leaves the global logging tree untouched — embedding
applications keep full control by configuring ``logging`` themselves and
never calling :func:`configure`.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["ROOT_NAME", "configure", "get_logger"]

ROOT_NAME = "repro"

#: Marker attribute identifying the handler :func:`configure` installed.
_HANDLER_MARK = "_repro_obs_handler"

_LEVELS = {0: logging.WARNING, 1: logging.INFO}


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro.*`` namespace.

    ``get_logger()`` returns the root ``repro`` logger;
    ``get_logger("explore")`` returns ``repro.explore``; names already
    starting with ``repro`` are used as-is.
    """
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure(verbosity: int = 0, stream: "IO[str] | None" = None) -> logging.Logger:
    """Route ``repro.*`` log records to ``stream`` at a verbosity level.

    ``verbosity`` 0 shows warnings and errors, 1 adds progress
    (``INFO``), 2 or more adds debug detail.  ``stream`` defaults to
    stderr; benchmark scripts that interleave log lines with measured
    tables pass ``sys.stdout``.  Idempotent: the previously-installed
    handler (if any) is replaced, never stacked.
    """
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(_LEVELS.get(int(verbosity), logging.DEBUG))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    # Keep records inside the installed handler: the repro tree should not
    # double-print through an application's root handlers.
    root.propagate = False
    return root
