"""Timeline tracing: Chrome trace-event capture for the simulator stack.

The engines are instrumented with a *zero-overhead-when-off* seam: every
hook site binds the ambient tracer once at construction time
(``self._trace = active_tracer()``) and guards each event with a single
``if self._trace is not None`` branch.  With no tracer installed — the
default — the hot paths pay one pointer comparison per hook and nothing
else; no event objects are built, no strings formatted.

Install a tracer around a run with the :func:`tracing` context manager::

    tracer = ChromeTracer()              # or ChromeTracer(limit=100_000)
    with tracing(tracer):
        result = simulate(compiled, launch)
    tracer.export_file("trace.json")

The export is standard Chrome trace-event JSON (the "JSON array format"
with process/thread metadata), loadable in Perfetto or
``chrome://tracing``:

* **pid** is the simulated core (multi-core shards get one process
  each); :data:`HOST_PID` is a separate process carrying *wall-clock*
  engine-phase spans (wave sweep, prepass, tag walk, residue walk,
  forwarding levels) in microseconds since the tracer was created.
* **tid** is the lane: the physical PE hosting a node (from the compiled
  placement, falling back to the node id for unmapped graphs), plus
  dedicated lanes for injection, the batched memory stream and per-core
  activity spans.
* Cycle-domain events use ``ts`` = simulated cycle (so one trace-viewer
  microsecond reads as one cycle); wall-clock spans live only under
  :data:`HOST_PID` and use real microseconds.  The two domains share a
  file but never a process lane.

Two counter tracks are derived at export time from the duration events —
no per-cycle sampling happens during simulation:

* ``occupancy`` — concurrently active op events, weighted by each
  event's ``args["count"]`` (the batched engines emit one event per node
  per wave covering ``count`` threads);
* ``outstanding_mshrs`` — concurrently in-flight memory accesses,
  derived the same way from the ``mem`` category.

A bounded ring buffer (``ChromeTracer(limit=N)``) keeps the newest ``N``
events and counts the overwritten ones in ``dropped``, capping memory on
big runs; :func:`active_mode` reports ``"off"``/``"ring"``/``"full"``
and is what ``simulate()`` records into ``stats.extra["trace"]``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Protocol

__all__ = [
    "HOST_PID",
    "INJECT_LANE",
    "MEM_LANE",
    "CORE_LANE",
    "ChromeTracer",
    "Tracer",
    "active_mode",
    "active_tracer",
    "tracing",
]

#: Synthetic process id for wall-clock engine-phase spans.
HOST_PID = 1_000_000
#: Synthetic lanes (thread ids) for events with no hosting PE.
INJECT_LANE = 1_000_000
MEM_LANE = 1_000_001
CORE_LANE = 1_000_002

_LANE_NAMES = {INJECT_LANE: "inject", MEM_LANE: "memory", CORE_LANE: "core"}

#: Cap on the number of change points emitted per derived counter track;
#: beyond it the sweep is thinned evenly so exports stay viewer-friendly.
_MAX_COUNTER_POINTS = 20_000


class Tracer(Protocol):
    """The hook surface the engines emit into.

    :class:`ChromeTracer` is the recording implementation; "off" is not a
    no-op object but the absence of a tracer (``active_tracer() is
    None``), which the engines test with one branch per hook site.
    """

    def event(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float = 0.0,
        pid: int = 0,
        tid: int = 0,
        args: dict[str, Any] | None = None,
    ) -> None: ...

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        pid: int = 0,
        tid: int = 0,
        args: dict[str, Any] | None = None,
    ) -> None: ...

    def clock(self) -> float: ...

    def wall_event(
        self, name: str, start_us: float, args: dict[str, Any] | None = None
    ) -> None: ...

    def set_process_name(self, pid: int, name: str) -> None: ...

    def set_lane_name(self, pid: int, tid: int, name: str) -> None: ...


class ChromeTracer:
    """Recording tracer producing Chrome trace-event JSON.

    ``limit`` bounds the event buffer: the newest ``limit`` events are
    kept (ring mode) and older ones are dropped, with the drop count
    reported in ``dropped`` and in the export's ``otherData``.
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("ring-buffer limit must be >= 1")
        self.limit = limit
        self.dropped = 0
        # Raw events as tuples (name, cat, ph, ts, dur, pid, tid, args);
        # dicts are only built at export time.
        self._events: deque[tuple] | list[tuple]
        self._events = deque(maxlen=limit) if limit is not None else []
        # (pid, None) -> process name; (pid, tid) -> lane name.
        self._names: dict[tuple[int, int | None], str] = {}
        self._t0 = time.perf_counter()

    # ----------------------------------------------------------------- state
    @property
    def mode(self) -> str:
        return "ring" if self.limit is not None else "full"

    def __len__(self) -> int:
        return len(self._events)

    # ---------------------------------------------------------------- events
    def _append(self, record: tuple) -> None:
        if self.limit is not None and len(self._events) == self.limit:
            self.dropped += 1
        self._events.append(record)

    def event(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float = 0.0,
        pid: int = 0,
        tid: int = 0,
        args: dict[str, Any] | None = None,
    ) -> None:
        """One complete-duration ("X") event in the cycle domain."""
        self._append((name, cat, "X", float(ts), max(0.0, float(dur)), pid, tid, args))

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        pid: int = 0,
        tid: int = 0,
        args: dict[str, Any] | None = None,
    ) -> None:
        """One instant ("i") event in the cycle domain."""
        self._append((name, cat, "i", float(ts), 0.0, pid, tid, args))

    # ------------------------------------------------------- wall-clock spans
    def clock(self) -> float:
        """Microseconds of wall clock since the tracer was created."""
        return (time.perf_counter() - self._t0) * 1e6

    def wall_event(
        self, name: str, start_us: float, args: dict[str, Any] | None = None
    ) -> None:
        """Close a wall-clock span opened at ``clock()`` time ``start_us``."""
        now = self.clock()
        self._append((name, "host", "X", start_us, max(0.0, now - start_us), HOST_PID, 0, args))

    @contextmanager
    def wall_span(self, name: str, args: dict[str, Any] | None = None) -> Iterator[None]:
        """Wall-clock span on the host process lane (engine phases)."""
        start = self.clock()
        try:
            yield
        finally:
            self.wall_event(name, start, args)

    # ------------------------------------------------------------- metadata
    def set_process_name(self, pid: int, name: str) -> None:
        self._names[(pid, None)] = name

    def set_lane_name(self, pid: int, tid: int, name: str) -> None:
        self._names[(pid, tid)] = name

    # --------------------------------------------------------------- export
    def events(self) -> list[dict[str, Any]]:
        """The raw captured events as trace-event dicts (no metadata)."""
        out = []
        for name, cat, ph, ts, dur, pid, tid, args in self._events:
            record: dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ph": ph,
                "ts": ts,
                "pid": pid,
                "tid": tid,
            }
            if ph == "X":
                record["dur"] = dur
            if ph == "i":
                record["s"] = "t"
            if args:
                record["args"] = dict(args)
            out.append(record)
        return out

    def _metadata_events(self) -> list[dict[str, Any]]:
        seen_pids = {e[5] for e in self._events}
        seen_lanes = {(e[5], e[6]) for e in self._events}
        meta: list[dict[str, Any]] = []
        for (pid, tid), name in self._names.items():
            if tid is None:
                meta.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "args": {"name": name},
                    }
                )
                seen_pids.discard(pid)
            else:
                meta.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": name},
                    }
                )
                seen_lanes.discard((pid, tid))
        # Default names for anything the engines did not label explicitly.
        for pid in sorted(seen_pids):
            name = "host (wall clock)" if pid == HOST_PID else f"core {pid}"
            meta.append(
                {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
            )
        for pid, tid in sorted(seen_lanes):
            name = _LANE_NAMES.get(tid, f"PE {tid}")
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return meta

    def _counter_track(self, cat: str, track: str) -> list[dict[str, Any]]:
        """Derive one per-process counter track with a boundary sweep.

        Each duration event of category ``cat`` contributes
        ``args["count"]`` (default 1) between its start and end; the
        cumulative sum over the sorted change points is the counter
        value, emitted as "C" events at every change.
        """
        deltas: dict[int, dict[float, float]] = {}
        for name, ecat, ph, ts, dur, pid, tid, args in self._events:
            if ecat != cat or ph != "X" or pid == HOST_PID:
                continue
            weight = float((args or {}).get("count", 1))
            per_pid = deltas.setdefault(pid, {})
            per_pid[ts] = per_pid.get(ts, 0.0) + weight
            end = ts + max(dur, 1.0)
            per_pid[end] = per_pid.get(end, 0.0) - weight
        out: list[dict[str, Any]] = []
        for pid, per_pid in sorted(deltas.items()):
            points = sorted(per_pid.items())
            if len(points) > _MAX_COUNTER_POINTS:
                step = len(points) / _MAX_COUNTER_POINTS
                points = [points[int(i * step)] for i in range(_MAX_COUNTER_POINTS)]
            level = 0.0
            for ts, delta in points:
                level += delta
                out.append(
                    {
                        "name": track,
                        "cat": cat,
                        "ph": "C",
                        "ts": ts,
                        "pid": pid,
                        "args": {track: max(0.0, round(level, 6))},
                    }
                )
        return out

    def export(self) -> dict[str, Any]:
        """The complete trace as a Chrome trace-event JSON object."""
        trace_events = self._metadata_events()
        trace_events.extend(self.events())
        trace_events.extend(self._counter_track("op", "occupancy"))
        trace_events.extend(self._counter_track("mem", "outstanding_mshrs"))
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "mode": self.mode,
                "events": len(self._events),
                "dropped": self.dropped,
                "timeDomains": {
                    "cycle": "ts is the simulated cycle (all pids except the host)",
                    "host": f"ts is wall-clock microseconds (pid {HOST_PID})",
                },
            },
        }

    def export_file(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.export(), handle)
        return path


# -------------------------------------------------------------- ambient state
_ACTIVE: ChromeTracer | None = None


def active_tracer() -> ChromeTracer | None:
    """The currently-installed tracer, or ``None`` when tracing is off.

    Engines bind this once at construction; the ``None`` return is the
    whole zero-overhead-off design — hot paths guard each hook with a
    single ``is not None`` branch.
    """
    return _ACTIVE


def active_mode() -> str:
    """Resolved tracer mode: ``"off"``, ``"ring"`` or ``"full"``."""
    return _ACTIVE.mode if _ACTIVE is not None else "off"


@contextmanager
def tracing(tracer: ChromeTracer | None) -> Iterator[ChromeTracer | None]:
    """Install ``tracer`` as the ambient tracer for the duration.

    ``tracing(None)`` forces tracing off inside the block (used by the
    overhead benchmark to pin the structural baseline).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
