"""CLI: trace one workload run and export it for Perfetto.

Usage::

    python -m repro.obs trace matrixMul --variant dmt --engine event \\
        --param dim=16 --out trace.json --profile

The run executes under an ambient :class:`~repro.obs.trace.ChromeTracer`
(``--ring N`` bounds the buffer to the newest ``N`` events) and the
export is Chrome trace-event JSON: one process per simulated core, one
lane per physical PE, instant lanes for injection and the batched memory
stream, wall-clock engine-phase spans on a separate host process, and
derived ``occupancy`` / ``outstanding_mshrs`` counter tracks.
``--profile`` additionally prints the per-node cycle attribution and the
PE-occupancy heatmap derived from the same trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.obs.log import configure, get_logger
from repro.obs.profile import render_heatmap, render_node_profile
from repro.obs.trace import ChromeTracer, tracing

log = get_logger("obs")


def _parse_param(item: str) -> tuple[str, Any]:
    if "=" not in item:
        raise argparse.ArgumentTypeError(f"--param expects key=value, got '{item}'")
    key, text = item.split("=", 1)
    for cast in (int, float):
        try:
            return key, cast(text)
        except ValueError:
            continue
    return key, text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tools: trace a workload run for Perfetto.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    trace = sub.add_parser("trace", help="run one workload under a tracer")
    trace.add_argument("workload", help="registry workload name (e.g. matrixMul)")
    trace.add_argument("--variant", default="dmt", help="graph variant (default: %(default)s)")
    trace.add_argument(
        "--param",
        action="append",
        default=[],
        type=_parse_param,
        metavar="KEY=VALUE",
        help="workload parameter override (repeatable)",
    )
    trace.add_argument("--engine", default="auto", help="simulation engine (default: auto)")
    trace.add_argument("--cores", type=int, default=None, help="simulated cores")
    trace.add_argument("--seed", type=int, default=0, help="input seed (default: 0)")
    trace.add_argument(
        "--ring",
        type=int,
        default=None,
        metavar="N",
        help="bound the trace buffer to the newest N events (default: unbounded)",
    )
    trace.add_argument(
        "--out",
        default=None,
        help="output path (default: <workload>_<variant>_trace.json)",
    )
    trace.add_argument(
        "--profile",
        action="store_true",
        help="also print the per-node cycle profile and PE-occupancy heatmap",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    configure(verbosity=1)

    # Imported here so `--help` stays instant.
    from repro.compiler.pipeline import compile_kernel
    from repro.errors import ReproError
    from repro.sim import simulate
    from repro.workloads.registry import get_workload

    try:
        workload = get_workload(args.workload)
        prepared = workload.prepare(dict(args.param) or None, seed=args.seed)
        launch = prepared.launch(args.variant)
        compiled = compile_kernel(launch.graph)
        tracer = ChromeTracer(limit=args.ring)
        with tracing(tracer):
            result = simulate(compiled, launch, engine=args.engine, cores=args.cores)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = args.out or f"{args.workload}_{args.variant}_trace.json"
    tracer.export_file(out)
    log.info(
        "traced %s/%s: %d cycles on the %s engine (%d cores), "
        "%d events (%s mode, %d dropped) -> %s",
        args.workload,
        args.variant,
        result.cycles,
        result.engine,
        result.cores,
        len(tracer),
        tracer.mode,
        tracer.dropped,
        out,
    )
    if args.profile:
        trace = tracer.export()
        print(render_node_profile(trace))
        print()
        print(render_heatmap(trace))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
