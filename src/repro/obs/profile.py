"""Profiles derived from a captured trace: cycle attribution + occupancy.

Everything here consumes the exported Chrome trace-event object
(:meth:`repro.obs.trace.ChromeTracer.export`), not the live tracer, so
profiles can equally be computed from a ``trace.json`` loaded back from
disk.  The central invariant — pinned by ``tests/obs`` — is that the
per-node profile is a *partition* of the trace's total cycles-weighted
activity:

    sum(node_profile(trace).values()) == total_activity(trace)

where one op event of duration ``d`` covering ``count`` threads
contributes ``d * count`` (the batched engines emit one event per node
per wave; the event engine emits one per thread with ``count`` 1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping

from repro.obs.trace import HOST_PID

__all__ = [
    "lane_busy",
    "node_profile",
    "op_events",
    "render_heatmap",
    "render_node_profile",
    "total_activity",
]

_BAR_WIDTH = 40


def _trace_events(trace: Mapping[str, Any]) -> Iterable[Mapping[str, Any]]:
    return trace.get("traceEvents", [])


def op_events(trace: Mapping[str, Any]) -> list[Mapping[str, Any]]:
    """The cycle-domain op duration events of an exported trace."""
    return [
        e
        for e in _trace_events(trace)
        if e.get("cat") == "op" and e.get("ph") == "X" and e.get("pid") != HOST_PID
    ]


def _weight(event: Mapping[str, Any]) -> float:
    return float(event.get("args", {}).get("count", 1))


def _activity(event: Mapping[str, Any]) -> float:
    # Zero-duration ops (e.g. latency-0 sources) still represent work;
    # floor each firing at one cycle so attribution never loses them.
    return max(1.0, float(event.get("dur", 0.0))) * _weight(event)


def node_profile(trace: Mapping[str, Any]) -> dict[str, float]:
    """Cycles-weighted activity attributed to each static node label."""
    profile: dict[str, float] = defaultdict(float)
    for event in op_events(trace):
        profile[str(event["name"])] += _activity(event)
    return dict(profile)


def total_activity(trace: Mapping[str, Any]) -> float:
    """Total cycles-weighted op activity of the trace."""
    return sum(_activity(e) for e in op_events(trace))


def lane_busy(trace: Mapping[str, Any]) -> dict[tuple[int, int], float]:
    """Busy cycles (unweighted durations summed) per (core, PE lane)."""
    busy: dict[tuple[int, int], float] = defaultdict(float)
    for event in op_events(trace):
        busy[(int(event["pid"]), int(event["tid"]))] += max(
            1.0, float(event.get("dur", 0.0))
        )
    return dict(busy)


def _lane_names(trace: Mapping[str, Any]) -> dict[tuple[int, int], str]:
    names: dict[tuple[int, int], str] = {}
    for event in _trace_events(trace):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[(int(event.get("pid", 0)), int(event.get("tid", 0)))] = str(
                event.get("args", {}).get("name", "")
            )
    return names


def render_node_profile(trace: Mapping[str, Any], top: int | None = 20) -> str:
    """Per-node cycle attribution table, heaviest nodes first."""
    profile = node_profile(trace)
    total = sum(profile.values())
    if not profile:
        return "node profile: no op events captured"
    ranked = sorted(profile.items(), key=lambda item: (-item[1], item[0]))
    shown = ranked if top is None else ranked[:top]
    width = max(len(name) for name, _ in shown)
    lines = [f"node profile ({len(profile)} nodes, {total:.0f} cycle-threads total)"]
    for name, activity in shown:
        share = activity / total if total else 0.0
        lines.append(f"  {name:<{width}}  {activity:>12.0f}  {share:>6.1%}")
    if top is not None and len(ranked) > top:
        rest = sum(a for _, a in ranked[top:])
        lines.append(f"  {'(other)':<{width}}  {rest:>12.0f}  {rest / total:>6.1%}")
    return "\n".join(lines)


def render_heatmap(trace: Mapping[str, Any]) -> str:
    """PE-occupancy heatmap: busy fraction of the traced span per lane."""
    events = op_events(trace)
    if not events:
        return "occupancy heatmap: no op events captured"
    start = min(float(e["ts"]) for e in events)
    end = max(float(e["ts"]) + float(e.get("dur", 0.0)) for e in events)
    span = max(1.0, end - start)
    busy = lane_busy(trace)
    names = _lane_names(trace)
    lines = [f"PE occupancy over cycles {start:.0f}..{end:.0f}"]
    for (pid, tid), cycles in sorted(busy.items()):
        fraction = min(1.0, cycles / span)
        bar = "#" * round(fraction * _BAR_WIDTH)
        label = names.get((pid, tid), f"PE {tid}")
        lines.append(
            f"  core {pid:<3} {label:<10} |{bar:<{_BAR_WIDTH}}| {fraction:>6.1%}"
        )
    return "\n".join(lines)
