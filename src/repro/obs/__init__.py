"""Observability for the reproduction: tracing, metrics, logging, profiles.

The package is the instrumentation seam of the whole stack:

* :mod:`repro.obs.trace` — Chrome trace-event timeline capture with a
  zero-overhead-when-off ambient tracer (engines guard every hook with
  one ``is not None`` branch); ring-buffer mode bounds memory.
* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  and the ``with timer("compile")`` phase spans the harness threads into
  run records.
* :mod:`repro.obs.log` — stdlib logging under the ``repro.*`` namespace
  with a one-call :func:`~repro.obs.log.configure` entry point.
* :mod:`repro.obs.profile` — per-node cycle attribution and the
  PE-occupancy heatmap derived from an exported trace.

CLI: ``python -m repro.obs trace <workload> [--variant dmt] [--out
trace.json] [--profile]`` runs one workload under a tracer and writes a
Perfetto-loadable trace; ``benchmarks/bench_obs_overhead.py`` gates the
tracing-off overhead at <= 2% on the engine-speedup rows.
"""

from repro.obs.log import configure, get_logger
from repro.obs.metrics import REGISTRY, MetricsRegistry, timer
from repro.obs.profile import node_profile, render_heatmap, render_node_profile, total_activity
from repro.obs.trace import ChromeTracer, Tracer, active_mode, active_tracer, tracing

__all__ = [
    "ChromeTracer",
    "MetricsRegistry",
    "REGISTRY",
    "Tracer",
    "active_mode",
    "active_tracer",
    "configure",
    "get_logger",
    "node_profile",
    "render_heatmap",
    "render_node_profile",
    "timer",
    "total_activity",
    "tracing",
]
