"""Statically routed network-on-chip (NoC) model.

The MT-CGRA interconnect is configured together with the grid: every
dataflow edge is assigned a fixed XY route at compile time, and tokens of
all threads follow that route.  The model provides

* dimension-ordered (XY) route computation between physical tiles,
* per-link bandwidth accounting (``link_bandwidth_tokens`` tokens per
  cycle per link), which adds queueing delay on hot links, and
* hop/energy statistics for the power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arch.grid import PhysicalGrid
from repro.config.system import NocConfig
from repro.errors import RoutingError

__all__ = ["NocStats", "Link", "Noc"]


@dataclass(frozen=True)
class Link:
    """A directed link between two adjacent tiles, identified by coordinates."""

    src_row: int
    src_col: int
    dst_row: int
    dst_col: int

    def __post_init__(self) -> None:
        if abs(self.src_row - self.dst_row) + abs(self.src_col - self.dst_col) != 1:
            raise RoutingError("NoC links connect adjacent tiles only")


@dataclass
class NocStats:
    """Counters of the interconnect."""

    tokens_sent: int = 0
    total_hops: int = 0
    contention_cycles: int = 0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.tokens_sent if self.tokens_sent else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "tokens_sent": self.tokens_sent,
            "total_hops": self.total_hops,
            "contention_cycles": self.contention_cycles,
            "mean_hops": self.mean_hops,
        }


class Noc:
    """Statically routed mesh interconnect over a :class:`PhysicalGrid`."""

    def __init__(self, grid: PhysicalGrid, config: NocConfig) -> None:
        config.validate()
        self.grid = grid
        self.config = config
        self.stats = NocStats()
        # Per-link usage per cycle for bandwidth accounting: (link, cycle) -> tokens.
        self._link_use: dict[tuple[Link, int], int] = {}

    # ------------------------------------------------------------------ routes
    def route(self, src_unit: int, dst_unit: int) -> list[Link]:
        """Dimension-ordered (X then Y) route between two tiles."""
        src = self.grid.unit(src_unit)
        dst = self.grid.unit(dst_unit)
        links: list[Link] = []
        row, col = src.row, src.col
        step = 1 if dst.col > col else -1
        while col != dst.col:
            links.append(Link(row, col, row, col + step))
            col += step
        step = 1 if dst.row > row else -1
        while row != dst.row:
            links.append(Link(row, col, row + step, col))
            row += step
        return links

    def hop_count(self, src_unit: int, dst_unit: int) -> int:
        return self.grid.distance(src_unit, dst_unit)

    # ------------------------------------------------------------------ traffic
    def send(self, src_unit: int, dst_unit: int, cycle: int) -> int:
        """Send one token along the static route starting at ``cycle``.

        Returns the arrival cycle.  Each link accepts
        ``link_bandwidth_tokens`` tokens per cycle; excess tokens slip to
        the next cycle, modelling contention on hot links.
        """
        if cycle < 0:
            raise RoutingError("cycle must be non-negative")
        links = self.route(src_unit, dst_unit)
        now = cycle + self.config.injection_latency
        for link in links:
            now = self._traverse(link, now)
        self.stats.tokens_sent += 1
        self.stats.total_hops += len(links)
        return now

    def _traverse(self, link: Link, cycle: int) -> int:
        while True:
            used = self._link_use.get((link, cycle), 0)
            if used < self.config.link_bandwidth_tokens:
                self._link_use[(link, cycle)] = used + 1
                return cycle + self.config.hop_latency
            self.stats.contention_cycles += 1
            cycle += 1

    def transfer_latency(self, src_unit: int, dst_unit: int) -> int:
        """Contention-free latency of a token between two tiles."""
        return (
            self.config.injection_latency
            + self.hop_count(src_unit, dst_unit) * self.config.hop_latency
        )

    def estimate_route_hops(self, placements: Sequence[tuple[int, int]]) -> int:
        """Total hop count over a set of (src_unit, dst_unit) pairs."""
        return sum(self.hop_count(src, dst) for src, dst in placements)

    def reset_traffic(self) -> None:
        """Forget per-cycle link usage (between simulation runs)."""
        self._link_use.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Noc(tokens={self.stats.tokens_sent}, mean_hops={self.stats.mean_hops:.2f})"
