"""Token buffer with tagged-token matching logic (Fig. 7b).

Every functional unit of the grid holds a small token buffer.  Operands of
different threads arrive out of order from the NoC; the buffer groups them
by thread ID and reports which threads have a complete operand set and can
therefore fire (the dataflow firing rule).  The buffer has a bounded number
of thread slots (16 in Table 2), which is the quantity that limits how far
a single elevator node can shift a token.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["TokenBufferStats", "TokenBuffer"]


@dataclass
class TokenBufferStats:
    """Counters of one token buffer."""

    inserts: int = 0
    matches: int = 0
    stalls_full: int = 0
    peak_occupancy: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "inserts": self.inserts,
            "matches": self.matches,
            "stalls_full": self.stalls_full,
            "peak_occupancy": self.peak_occupancy,
        }


@dataclass
class _Slot:
    operands: dict[int, float | int | bool] = field(default_factory=dict)
    ready_bits: set[int] = field(default_factory=set)


class TokenBuffer:
    """Groups arriving operand tokens by thread ID until a thread can fire."""

    def __init__(self, entries: int, arity: int) -> None:
        if entries <= 0:
            raise SimulationError("token buffer needs at least one entry")
        if arity < 0:
            raise SimulationError("arity must be non-negative")
        self.entries = entries
        self.arity = arity
        self.stats = TokenBufferStats()
        self._slots: OrderedDict[int, _Slot] = OrderedDict()

    # ------------------------------------------------------------------ state
    @property
    def occupancy(self) -> int:
        return len(self._slots)

    @property
    def is_full(self) -> bool:
        return len(self._slots) >= self.entries

    def has_slot_for(self, tid: int) -> bool:
        """A token for ``tid`` can be accepted (existing slot or free entry)."""
        return tid in self._slots or not self.is_full

    def occupied_tids(self) -> list[int]:
        return list(self._slots)

    # ------------------------------------------------------------------ insert
    def insert(self, tid: int, port: int, value: float | int | bool) -> bool:
        """Insert one operand token.

        Returns ``True`` if the token was accepted, ``False`` if the buffer
        is full and has no slot for this thread (the caller must retry, i.e.
        the producer experiences backpressure).
        """
        if port < 0 or (self.arity and port >= self.arity):
            raise SimulationError(f"operand port {port} out of range (arity {self.arity})")
        slot = self._slots.get(tid)
        if slot is None:
            if self.is_full:
                self.stats.stalls_full += 1
                return False
            slot = _Slot()
            self._slots[tid] = slot
        if port in slot.operands:
            raise SimulationError(
                f"duplicate token for thread {tid} operand {port} in token buffer"
            )
        slot.operands[port] = value
        self.stats.inserts += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._slots))
        return True

    def mark_ready(self, tid: int, port: int) -> bool:
        """Mark operand ``port`` of ``tid`` as satisfied without a value.

        Used by the elevator controller to acknowledge producer-only
        threads (the paper's "setting the acknowledged bit", Sec. 4.1).
        Like :meth:`insert`, the acknowledge allocates a thread slot and is
        therefore subject to the same ``entries`` capacity bound (Table 2);
        returns ``False`` (backpressure) when the buffer is full and has no
        slot for this thread.
        """
        if port < 0 or (self.arity and port >= self.arity):
            raise SimulationError(f"operand port {port} out of range (arity {self.arity})")
        slot = self._slots.get(tid)
        if slot is None:
            if self.is_full:
                self.stats.stalls_full += 1
                return False
            slot = _Slot()
            self._slots[tid] = slot
        slot.ready_bits.add(port)
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._slots))
        return True

    # ------------------------------------------------------------------ match
    def ready_threads(self) -> list[int]:
        """Thread IDs whose operand sets are complete (oldest first)."""
        ready = []
        for tid, slot in self._slots.items():
            if len(slot.operands) + len(slot.ready_bits - set(slot.operands)) >= self.arity:
                ready.append(tid)
        return ready

    def pop(self, tid: int) -> list[float | int | bool]:
        """Remove thread ``tid``'s slot and return its operands in port order."""
        slot = self._slots.pop(tid, None)
        if slot is None:
            raise SimulationError(f"thread {tid} has no slot in the token buffer")
        self.stats.matches += 1
        return [slot.operands[p] for p in sorted(slot.operands)]

    def peek(self, tid: int) -> dict[int, float | int | bool]:
        slot = self._slots.get(tid)
        return dict(slot.operands) if slot else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenBuffer(entries={self.entries}, arity={self.arity}, occ={self.occupancy})"
