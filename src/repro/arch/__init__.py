"""CGRA hardware models: tokens, units, elevator, eLDST, barrier, LVC, grid, NoC."""

from repro.arch.barrier import BarrierStats, BarrierUnit
from repro.arch.eldst import EldstStats, EldstUnit
from repro.arch.elevator import ElevatorStats, ElevatorUnit
from repro.arch.grid import COMPATIBLE_CLASSES, PhysicalGrid, PhysicalUnit
from repro.arch.lvc import LiveValueCache, LiveValueCacheStats
from repro.arch.noc import Link, Noc, NocStats
from repro.arch.token import TaggedToken
from repro.arch.token_buffer import TokenBuffer, TokenBufferStats

__all__ = [
    "BarrierStats",
    "BarrierUnit",
    "COMPATIBLE_CLASSES",
    "EldstStats",
    "EldstUnit",
    "ElevatorStats",
    "ElevatorUnit",
    "LiveValueCache",
    "LiveValueCacheStats",
    "Link",
    "Noc",
    "NocStats",
    "PhysicalGrid",
    "PhysicalUnit",
    "TaggedToken",
    "TokenBuffer",
    "TokenBufferStats",
]
