"""Work-group barrier support for the baseline architectures.

dMT-CGRA kernels never need a barrier — point-to-point dataflow
synchronisation replaces it — but the two baselines do:

* the Fermi SM implements CUDA ``__syncthreads()`` in its warp scheduler;
* the plain MT-CGRA maps the barrier to a dedicated unit that collects one
  token per thread, parks the in-flight thread state in the Live Value
  Cache and only releases the post-barrier tokens once every thread of the
  block has arrived.

This module models the collecting unit used by the MT-CGRA baseline and
keeps the statistics (arrivals, release time, parked values) that feed the
performance and energy comparison of Figs. 11 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["BarrierStats", "BarrierUnit"]


@dataclass
class BarrierStats:
    """Counters of one barrier unit."""

    arrivals: int = 0
    releases: int = 0
    parked_values: int = 0
    wait_cycles: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "arrivals": self.arrivals,
            "releases": self.releases,
            "parked_values": self.parked_values,
            "wait_cycles": self.wait_cycles,
        }


class BarrierUnit:
    """Collects one arrival per thread and releases them all together."""

    def __init__(self, num_threads: int) -> None:
        if num_threads <= 0:
            raise SimulationError("barrier needs a positive thread count")
        self.num_threads = num_threads
        self.stats = BarrierStats()
        self._arrival_cycle: dict[int, int] = {}
        self._released = False
        self._release_cycle: int | None = None

    # ------------------------------------------------------------------ state
    @property
    def arrived(self) -> int:
        return len(self._arrival_cycle)

    @property
    def complete(self) -> bool:
        return self.arrived >= self.num_threads

    @property
    def release_cycle(self) -> int | None:
        return self._release_cycle

    # ------------------------------------------------------------------ operate
    def arrive(self, tid: int, cycle: int) -> bool:
        """Thread ``tid`` reaches the barrier at ``cycle``.

        Returns ``True`` when this arrival completes the barrier (i.e. the
        caller should release every waiting thread).
        """
        if tid < 0 or tid >= self.num_threads:
            raise SimulationError(f"thread {tid} is outside the barrier's block")
        if tid in self._arrival_cycle:
            raise SimulationError(f"thread {tid} arrived at the barrier twice")
        self._arrival_cycle[tid] = cycle
        self.stats.arrivals += 1
        self.stats.parked_values += 1
        if self.complete and not self._released:
            self._released = True
            self._release_cycle = max(self._arrival_cycle.values())
            self.stats.releases += 1
            self.stats.wait_cycles = sum(
                self._release_cycle - c for c in self._arrival_cycle.values()
            )
            return True
        return False

    def waiting_threads(self) -> list[int]:
        """Thread IDs currently parked at the barrier (unsorted arrival order)."""
        if self._released:
            return []
        return list(self._arrival_cycle)

    def arrival_cycle_of(self, tid: int) -> int:
        try:
            return self._arrival_cycle[tid]
        except KeyError as exc:
            raise SimulationError(f"thread {tid} has not arrived at the barrier") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BarrierUnit(arrived={self.arrived}/{self.num_threads})"
