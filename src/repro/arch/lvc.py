"""The Live Value Cache (LVC).

The MT-CGRA architecture (VGIW, [7] in the paper) provides a small,
compiler-managed cache used to park live values that cannot stay in the
fabric — e.g. values crossing a barrier in the plain MT-CGRA baseline, or
inter-thread transfers whose ΔTID is so large that even cascaded elevator
nodes cannot buffer them (the spill fallback of Sec. 4.3).

The model is a simple bounded key/value store with access counters; spills
beyond the capacity overflow to the L1 (counted separately so the energy
model can charge them at cache cost rather than LVC cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.errors import SimulationError

__all__ = ["LiveValueCacheStats", "LiveValueCache"]


@dataclass
class LiveValueCacheStats:
    """Counters of the live value cache."""

    writes: int = 0
    reads: int = 0
    overflow_writes: int = 0
    overflow_reads: int = 0
    peak_occupancy: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "writes": self.writes,
            "reads": self.reads,
            "overflow_writes": self.overflow_writes,
            "overflow_reads": self.overflow_reads,
            "peak_occupancy": self.peak_occupancy,
        }


class LiveValueCache:
    """A bounded compiler-managed store for spilled live values."""

    def __init__(self, capacity_values: int = 1024, access_latency: int = 6) -> None:
        if capacity_values <= 0:
            raise SimulationError("LVC capacity must be positive")
        if access_latency < 1:
            raise SimulationError("LVC access latency must be >= 1")
        self.capacity_values = capacity_values
        self.access_latency = access_latency
        self.stats = LiveValueCacheStats()
        self._store: dict[Hashable, float | int | bool] = {}
        self._overflow: dict[Hashable, float | int | bool] = {}

    # ------------------------------------------------------------------ operate
    def write(self, key: Hashable, value: float | int | bool) -> int:
        """Park ``value`` under ``key``; returns the access latency in cycles."""
        if key in self._store or len(self._store) < self.capacity_values:
            self._store[key] = value
            self.stats.writes += 1
        else:
            self._overflow[key] = value
            self.stats.overflow_writes += 1
        occupancy = len(self._store) + len(self._overflow)
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, occupancy)
        return self.access_latency

    def read(self, key: Hashable) -> tuple[float | int | bool, int]:
        """Read (and remove) the value parked under ``key``.

        Returns ``(value, latency)``.  Raises if the key was never written —
        that indicates a compiler/simulator bug, not a program error.
        """
        if key in self._store:
            self.stats.reads += 1
            return self._store.pop(key), self.access_latency
        if key in self._overflow:
            self.stats.overflow_reads += 1
            return self._overflow.pop(key), self.access_latency
        raise SimulationError(f"live value cache has no value parked under {key!r}")

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store or key in self._overflow

    @property
    def occupancy(self) -> int:
        return len(self._store) + len(self._overflow)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LiveValueCache(occupancy={self.occupancy}/{self.capacity_values})"
