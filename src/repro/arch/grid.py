"""The physical CGRA grid (Fig. 7a).

The grid is the inventory of functional units the mapper places dataflow
nodes onto: a ``rows x cols`` rectangle in which every tile is a unit of a
specific class (ALU, FPU, special, LDST, control/elevator, split/join).
The default layout interleaves unit classes in columns the way Fig. 7a
draws them — load/store units along the edges (close to the L1 banks),
compute in the middle, control/split-join interleaved — so that XY routes
between typical producer/consumer pairs stay short.

In dMT-CGRA the control units double as elevator nodes and the LDST units
as eLDST units (Sec. 4: "we introduce the new units to the grid by
converting the existing control units to elevator nodes and LDST units to
eLDST units"), so the grid exposes a *compatibility* relation rather than
an exact class match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config.system import CgraGridConfig
from repro.errors import ConfigurationError
from repro.graph.opcodes import UnitClass

__all__ = ["PhysicalUnit", "PhysicalGrid", "COMPATIBLE_CLASSES"]


#: Which physical unit classes may host a dataflow node of a given class.
#: Comparisons, bitwise operations and selects are primarily mapped to the
#: control units (Sec. 4) but are simple enough to fall back onto integer
#: ALUs when the 16 control units are exhausted, mirroring how the SGMF
#: toolchain balances unit classes when replicating graphs.
COMPATIBLE_CLASSES: dict[UnitClass, tuple[UnitClass, ...]] = {
    UnitClass.ALU: (UnitClass.ALU, UnitClass.FPU),
    UnitClass.FPU: (UnitClass.FPU,),
    UnitClass.SPECIAL: (UnitClass.SPECIAL,),
    UnitClass.LDST: (UnitClass.LDST,),
    UnitClass.ELDST: (UnitClass.LDST,),
    UnitClass.CONTROL: (UnitClass.CONTROL, UnitClass.ALU),
    UnitClass.ELEVATOR: (UnitClass.CONTROL,),
    UnitClass.SPLIT_JOIN: (UnitClass.SPLIT_JOIN, UnitClass.CONTROL),
    UnitClass.BARRIER: (UnitClass.SPLIT_JOIN, UnitClass.CONTROL),
    UnitClass.SINK: (UnitClass.LDST, UnitClass.CONTROL, UnitClass.SPLIT_JOIN),
}


@dataclass(frozen=True)
class PhysicalUnit:
    """One tile of the CGRA grid."""

    unit_id: int
    unit_class: UnitClass
    row: int
    col: int

    def distance_to(self, other: "PhysicalUnit") -> int:
        """Manhattan (XY-routing) hop distance to ``other``."""
        return abs(self.row - other.row) + abs(self.col - other.col)


class PhysicalGrid:
    """The placed inventory of functional units of one CGRA core."""

    def __init__(self, config: CgraGridConfig) -> None:
        config.validate()
        self.config = config
        self._units: list[PhysicalUnit] = []
        self._by_class: dict[UnitClass, list[PhysicalUnit]] = {}
        self._build()

    # ------------------------------------------------------------------ layout
    def _class_sequence(self) -> list[UnitClass]:
        """Interleave unit classes across the grid row-major.

        LDST units are emitted first and last (edge columns, near the L1),
        compute units fill the middle, and control / split-join units are
        spread evenly between them.
        """
        cfg = self.config
        half_ldst = cfg.num_ldst // 2
        sequence: list[UnitClass] = []
        sequence += [UnitClass.LDST] * half_ldst
        middle: list[UnitClass] = []
        middle += [UnitClass.ALU] * cfg.num_alu
        middle += [UnitClass.FPU] * cfg.num_fpu
        middle += [UnitClass.SPECIAL] * cfg.num_special
        control: list[UnitClass] = []
        control += [UnitClass.CONTROL] * cfg.num_control
        control += [UnitClass.SPLIT_JOIN] * cfg.num_split_join
        # Interleave control units evenly into the compute body so that an
        # elevator node is never far from the ALUs/FPUs it connects.
        interleaved: list[UnitClass] = []
        if control:
            stride = max(1, len(middle) // len(control))
            ci = 0
            for i, unit in enumerate(middle):
                interleaved.append(unit)
                if i % stride == stride - 1 and ci < len(control):
                    interleaved.append(control[ci])
                    ci += 1
            interleaved.extend(control[ci:])
        else:
            interleaved = middle
        sequence += interleaved
        sequence += [UnitClass.LDST] * (cfg.num_ldst - half_ldst)
        return sequence

    def _build(self) -> None:
        sequence = self._class_sequence()
        if len(sequence) > self.config.rows * self.config.cols:
            raise ConfigurationError(
                "functional units do not fit the configured grid rectangle"
            )
        for unit_id, unit_class in enumerate(sequence):
            row, col = divmod(unit_id, self.config.cols)
            unit = PhysicalUnit(unit_id=unit_id, unit_class=unit_class, row=row, col=col)
            self._units.append(unit)
            self._by_class.setdefault(unit_class, []).append(unit)

    # ------------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self) -> Iterator[PhysicalUnit]:
        return iter(self._units)

    def unit(self, unit_id: int) -> PhysicalUnit:
        try:
            return self._units[unit_id]
        except IndexError as exc:
            raise ConfigurationError(f"unknown physical unit {unit_id}") from exc

    def units_of_class(self, unit_class: UnitClass) -> list[PhysicalUnit]:
        return list(self._by_class.get(unit_class, []))

    def units_compatible_with(self, node_class: UnitClass) -> list[PhysicalUnit]:
        """Physical units that may host a dataflow node of ``node_class``."""
        compatible = COMPATIBLE_CLASSES.get(node_class, (node_class,))
        out: list[PhysicalUnit] = []
        for cls in compatible:
            out.extend(self._by_class.get(cls, []))
        return out

    def capacity(self) -> dict[UnitClass, int]:
        """Number of physical units per class."""
        return {cls: len(units) for cls, units in self._by_class.items()}

    def capacity_for(self, node_class: UnitClass) -> int:
        return len(self.units_compatible_with(node_class))

    def distance(self, unit_a: int, unit_b: int) -> int:
        return self.unit(unit_a).distance_to(self.unit(unit_b))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        capacity = sorted(self.capacity().items(), key=lambda x: x[0].value)
        caps = {cls.value: n for cls, n in capacity}
        return f"PhysicalGrid({self.config.rows}x{self.config.cols}, {caps})"
