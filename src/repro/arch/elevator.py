"""The elevator node (Sec. 4.1, Figs. 4 and 8).

The elevator node implements ``fromThreadOrConst``: it receives the token
produced by thread ``TID`` and re-emits it tagged for thread ``TID + Δ``.
Threads whose producer falls outside the thread block or outside the
transmission window receive a preconfigured constant instead.  The node
holds in-flight tokens in its token buffer, which bounds the shift a
single node can support; larger shifts are obtained by cascading nodes
(Sec. 4.3), which the compiler handles.

This module is the *unit-level* model: given producer tokens it yields the
retagged consumer tokens and keeps the statistics the power model charges
(token-buffer reads/writes and retag operations).  The cycle-level
simulator drives it token by token; the functional interpreter uses the
pure helpers in :mod:`repro.graph.interthread` instead, so the two cannot
disagree on the communication pattern — both are exercised against each
other in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.token import TaggedToken
from repro.errors import SimulationError
from repro.graph.interthread import elevator_destination, elevator_source
from repro.graph.node import Node
from repro.graph.opcodes import Opcode

__all__ = ["ElevatorStats", "ElevatorUnit"]


@dataclass
class ElevatorStats:
    """Counters of one elevator node."""

    tokens_in: int = 0
    tokens_retagged: int = 0
    constants_injected: int = 0
    tokens_dropped: int = 0
    peak_buffered: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "tokens_in": self.tokens_in,
            "tokens_retagged": self.tokens_retagged,
            "constants_injected": self.constants_injected,
            "tokens_dropped": self.tokens_dropped,
            "peak_buffered": self.peak_buffered,
        }


class ElevatorUnit:
    """Unit-level model of one configured elevator node."""

    def __init__(
        self,
        node: Node,
        block_dim: Sequence[int],
        num_threads: int,
        buffer_entries: int = 16,
    ) -> None:
        if node.opcode is not Opcode.ELEVATOR:
            raise SimulationError("ElevatorUnit requires an ELEVATOR node")
        if buffer_entries <= 0:
            raise SimulationError("buffer_entries must be positive")
        self.node = node
        self.block_dim = tuple(block_dim)
        self.num_threads = num_threads
        self.buffer_entries = buffer_entries
        self.stats = ElevatorStats()
        self._buffered: dict[int, TaggedToken] = {}
        self._delivered: set[int] = set()

    # ------------------------------------------------------------------ config
    @property
    def delta(self) -> int:
        return int(self.node.param("delta"))

    @property
    def constant(self) -> float | int | bool:
        return self.node.param("const")

    @property
    def window(self) -> Optional[int]:
        return self.node.param("window")

    # ------------------------------------------------------------------ queries
    def source_of(self, consumer_tid: int) -> Optional[int]:
        """Producer TID for ``consumer_tid`` or ``None`` for the constant."""
        return elevator_source(self.node, consumer_tid, self.block_dim, self.num_threads)

    def destination_of(self, producer_tid: int) -> Optional[int]:
        """Consumer TID of ``producer_tid``'s token or ``None`` if it is dropped."""
        return elevator_destination(
            self.node, producer_tid, self.block_dim, self.num_threads
        )

    def required_buffering(self, producer_tid: int) -> int:
        """How many slots the producer's token occupies (|Δ| of the shift)."""
        dst = self.destination_of(producer_tid)
        if dst is None:
            return 0
        return abs(dst - producer_tid)

    # ------------------------------------------------------------------ operate
    def push(self, token: TaggedToken, now: int = 0) -> Optional[TaggedToken]:
        """Feed the producer token of thread ``token.tid``.

        Returns the retagged consumer token, or ``None`` when the producer's
        destination is invalid (the token is simply dropped — the paper's
        "thread TID may not serve as a producer").
        """
        self.stats.tokens_in += 1
        dst = self.destination_of(token.tid)
        if dst is None:
            self.stats.tokens_dropped += 1
            return None
        if dst in self._delivered or dst in self._buffered:
            raise SimulationError(
                f"elevator {self.node.label()} received a second token for thread {dst}"
            )
        retagged = token.retag(dst, produced_at=now)
        self._buffered[dst] = retagged
        self.stats.peak_buffered = max(self.stats.peak_buffered, len(self._buffered))
        self.stats.tokens_retagged += 1
        return retagged

    def constant_token(self, consumer_tid: int, now: int = 0) -> Optional[TaggedToken]:
        """The fallback-constant token for ``consumer_tid`` (or ``None``).

        Returns a token only when the consumer's producer is invalid —
        exactly the ``else`` branch of the paper's Fig. 4 pseudo-code.
        """
        if self.source_of(consumer_tid) is not None:
            return None
        self.stats.constants_injected += 1
        return TaggedToken(tid=consumer_tid, value=self.constant, produced_at=now)

    def deliver(self, consumer_tid: int) -> Optional[TaggedToken]:
        """Pop the buffered token destined to ``consumer_tid`` (if present)."""
        token = self._buffered.pop(consumer_tid, None)
        if token is not None:
            self._delivered.add(consumer_tid)
        return token

    @property
    def buffered_count(self) -> int:
        return len(self._buffered)

    def overflow(self) -> bool:
        """True when the node currently buffers more tokens than it has entries.

        The compiler's cascading pass guarantees this never happens for a
        legalised graph; the cycle simulator asserts it as an invariant.
        """
        return len(self._buffered) > self.buffer_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ElevatorUnit({self.node.label()}, delta={self.delta}, "
            f"buffered={len(self._buffered)})"
        )
