"""Tagged tokens — the unit of information moving through the CGRA.

The MT-CGRA executes multiple threads on one configured dataflow graph by
tagging every value with the thread ID it belongs to (dynamic tagged-token
dataflow, Sec. 3 of the paper).  A :class:`TaggedToken` is therefore a
``(tag, value)`` pair plus bookkeeping used by the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TaggedToken"]


@dataclass(frozen=True)
class TaggedToken:
    """A value travelling through the fabric, tagged with its thread ID."""

    tid: int
    value: float | int | bool
    produced_at: int = 0

    def __post_init__(self) -> None:
        if self.tid < 0:
            raise ValueError("thread IDs must be non-negative")
        if self.produced_at < 0:
            raise ValueError("produced_at must be non-negative")

    def retag(self, new_tid: int, produced_at: int | None = None) -> "TaggedToken":
        """Return a copy of the token carrying a different thread ID.

        Re-tagging is the paper's core hardware mechanism: only elevator
        nodes and eLDST units may change a token's tag (Sec. 4).
        """
        return replace(
            self,
            tid=new_tid,
            produced_at=self.produced_at if produced_at is None else produced_at,
        )

    def with_value(self, value: float | int | bool) -> "TaggedToken":
        return replace(self, value=value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaggedToken(tid={self.tid}, value={self.value!r})"
