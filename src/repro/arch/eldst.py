"""The enhanced load/store unit (eLDST, Sec. 4.2 and Fig. 9).

The eLDST implements ``fromThreadOrMem``: threads whose predicate is true
issue a real memory load; all other threads receive the value loaded by an
earlier thread, forwarded through the unit's token buffer (the loop-back
path of Fig. 9).  Each loaded value is reused ``window / Δ`` times, which
is where the paper's memory-traffic reduction comes from.

Like :class:`repro.arch.elevator.ElevatorUnit` this is the unit-level
model used by the cycle simulator; the functional interpreter uses the
shared helpers of :mod:`repro.graph.interthread`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.token import TaggedToken
from repro.errors import SimulationError
from repro.graph.interthread import eldst_source
from repro.graph.node import Node
from repro.graph.opcodes import Opcode

__all__ = ["EldstStats", "EldstUnit"]


@dataclass
class EldstStats:
    """Counters of one eLDST unit."""

    memory_loads: int = 0
    forwarded: int = 0
    loopback_tokens: int = 0
    dropped_duplicates: int = 0
    peak_buffered: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_loads": self.memory_loads,
            "forwarded": self.forwarded,
            "loopback_tokens": self.loopback_tokens,
            "dropped_duplicates": self.dropped_duplicates,
            "peak_buffered": self.peak_buffered,
        }


class EldstUnit:
    """Unit-level model of one configured eLDST unit."""

    def __init__(
        self,
        node: Node,
        block_dim: Sequence[int],
        num_threads: int,
        buffer_entries: int = 16,
    ) -> None:
        if node.opcode is not Opcode.ELDST:
            raise SimulationError("EldstUnit requires an ELDST node")
        if buffer_entries <= 0:
            raise SimulationError("buffer_entries must be positive")
        self.node = node
        self.block_dim = tuple(block_dim)
        self.num_threads = num_threads
        self.buffer_entries = buffer_entries
        self.stats = EldstStats()
        # Forwarded values waiting for their consumer thread, keyed by TID.
        self._buffered: dict[int, TaggedToken] = {}

    # ------------------------------------------------------------------ config
    @property
    def delta(self) -> int:
        return int(self.node.param("delta"))

    @property
    def window(self) -> Optional[int]:
        return self.node.param("window")

    @property
    def array(self) -> str:
        return str(self.node.param("array"))

    # ------------------------------------------------------------------ queries
    def source_of(self, consumer_tid: int) -> Optional[int]:
        """The TID whose output is forwarded to ``consumer_tid`` (or None)."""
        return eldst_source(self.node, consumer_tid, self.block_dim, self.num_threads)

    def reuse_factor(self) -> float:
        """Expected reuses per loaded value, ``window / Δ`` (Sec. 4.2)."""
        window = self.window or self.num_threads
        return window / max(1, abs(self.delta))

    # ------------------------------------------------------------------ operate
    def complete_load(self, tid: int, value: float | int | bool, now: int = 0) -> TaggedToken:
        """Thread ``tid`` finished its memory load; produce its output token.

        The output token is duplicated inside the unit: one copy goes
        downstream, the other is re-tagged for the next consumer thread and
        kept in the token buffer (Fig. 9's loop-back).
        """
        self.stats.memory_loads += 1
        token = TaggedToken(tid=tid, value=value, produced_at=now)
        self._loopback(token, now)
        return token

    def forward(self, consumer_tid: int, now: int = 0) -> Optional[TaggedToken]:
        """Deliver the forwarded value buffered for ``consumer_tid`` (if any)."""
        token = self._buffered.pop(consumer_tid, None)
        if token is None:
            return None
        self.stats.forwarded += 1
        out = TaggedToken(tid=consumer_tid, value=token.value, produced_at=now)
        self._loopback(out, now)
        return out

    def has_forward_for(self, consumer_tid: int) -> bool:
        return consumer_tid in self._buffered

    def _loopback(self, token: TaggedToken, now: int) -> None:
        """Duplicate ``token`` towards the next consumer in the chain."""
        next_tid = token.tid + abs(self.delta)
        if next_tid >= self.num_threads:
            self.stats.dropped_duplicates += 1
            return
        window = self.window
        if window is not None and (token.tid // window) != (next_tid // window):
            # The duplicate's consumer is outside the transmission window;
            # the paper discards it (Sec. 4.2).
            self.stats.dropped_duplicates += 1
            return
        src = self.source_of(next_tid)
        if src is None:
            # The next thread loads for itself (its predicate is true).
            self.stats.dropped_duplicates += 1
            return
        if next_tid in self._buffered:
            raise SimulationError(
                f"eLDST {self.node.label()} already buffers a token for thread {next_tid}"
            )
        self._buffered[next_tid] = token.retag(next_tid, produced_at=now)
        self.stats.loopback_tokens += 1
        self.stats.peak_buffered = max(self.stats.peak_buffered, len(self._buffered))

    @property
    def buffered_count(self) -> int:
        return len(self._buffered)

    def overflow(self) -> bool:
        """True when more values are buffered than the token buffer holds."""
        return len(self._buffered) > self.buffer_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EldstUnit({self.node.label()}, array={self.array!r}, "
            f"delta={self.delta}, buffered={len(self._buffered)})"
        )
