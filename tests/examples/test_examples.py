"""Every example script runs to completion and prints what its docstring promises.

Each example is executed as a real subprocess (``python examples/<name>.py``)
from a temporary working directory, with small problem sizes where the
script takes a CLI argument, and its stdout is checked against a marker
from the "Expected output" section of its module docstring.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"

#: (script, argv, stdout markers) — argv chosen small so the whole module
#: stays in the CI fast lane.
CASES = [
    ("quickstart.py", [], ["verified", "quickstart_trace.json"]),
    ("convolution_pipeline.py", ["64"], ["dmt", "NumPy reference"]),
    ("matmul_forwarding.py", ["8"], ["dMT-CGRA vs Fermi SM", "forwarded in-fabric"]),
    ("reduction_tree.py", [], ["cascaded elevators", "128"]),
]


def test_every_example_is_covered_here():
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == {script for script, _, _ in CASES}


@pytest.mark.parametrize("script,argv,markers", CASES, ids=[c[0] for c in CASES])
def test_example_runs_to_completion(script, argv, markers, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        cwd=tmp_path,  # quickstart writes quickstart_trace.json into cwd
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    for marker in markers:
        assert marker in completed.stdout, f"{script}: {marker!r} missing from output"


def test_every_example_docstring_states_expected_output():
    for script, _, _ in CASES:
        source = (EXAMPLES / script).read_text(encoding="utf-8")
        assert "Expected output" in source.split('"""')[1], script
