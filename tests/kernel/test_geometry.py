"""Tests for thread-block geometry."""

import pytest

from repro.errors import KernelBuildError
from repro.kernel.geometry import ThreadGeometry


def test_num_threads_and_dims():
    g = ThreadGeometry((8, 4, 2))
    assert g.num_threads == 64
    assert g.dims == 3


def test_linearize_matches_cuda_order():
    g = ThreadGeometry((4, 4))
    assert g.linearize((1, 0)) == 1
    assert g.linearize((0, 1)) == 4
    assert g.unlinearize(5) == (1, 1, 0)


def test_coordinates_iterate_in_linear_order():
    g = ThreadGeometry((2, 2))
    coords = list(g.coordinates())
    assert coords == [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]


def test_contains():
    g = ThreadGeometry((4, 4))
    assert g.contains((3, 3))
    assert not g.contains((4, 0))
    assert not g.contains((-1, 0))


def test_invalid_geometry_rejected():
    with pytest.raises(KernelBuildError):
        ThreadGeometry((0,))
    with pytest.raises(KernelBuildError):
        ThreadGeometry((2, 2, 2, 2))


def test_linear_offset_negative_dimension():
    g = ThreadGeometry((8, 8))
    assert g.linear_offset((0, -1)) == -8
    assert g.linear_offset(-1) == -1
