"""Tests for kernel array declarations."""

import pytest

from repro.errors import KernelBuildError
from repro.kernel.arrays import ArrayTable, MemorySpace


def test_declare_and_lookup():
    table = ArrayTable()
    spec = table.declare("a", 16)
    assert table.get("a") is spec
    assert "a" in table
    assert spec.size_bytes == 64


def test_addresses_do_not_overlap():
    table = ArrayTable()
    a = table.declare("a", 100)
    b = table.declare("b", 100)
    assert b.base_address >= a.base_address + a.size_bytes


def test_shared_and_global_spaces_are_separate():
    table = ArrayTable()
    g = table.declare("g", 8, space=MemorySpace.GLOBAL)
    s = table.declare("s", 8, space=MemorySpace.SHARED)
    assert g.space == MemorySpace.GLOBAL
    assert s.space == MemorySpace.SHARED
    assert table.total_shared_bytes() == 32
    assert [a.name for a in table.global_arrays()] == ["g"]


def test_duplicate_name_rejected():
    table = ArrayTable()
    table.declare("a", 8)
    with pytest.raises(KernelBuildError):
        table.declare("a", 8)


def test_invalid_length_rejected():
    with pytest.raises(KernelBuildError):
        ArrayTable().declare("a", 0)


def test_address_of_and_bounds():
    table = ArrayTable()
    a = table.declare("a", 4, elem_bytes=8)
    assert a.address_of(2) == a.base_address + 16
    assert a.contains_index(3)
    assert not a.contains_index(4)


def test_unknown_array_lookup():
    with pytest.raises(KernelBuildError):
        ArrayTable().get("nope")
