"""Tests for the kernel-builder DSL (the Table 1 programming model)."""

import pytest

from repro.errors import KernelBuildError
from repro.graph.opcodes import DType, Opcode
from repro.kernel.builder import KernelBuilder


def test_constants_are_deduplicated():
    b = KernelBuilder("k", 8)
    c1 = b.const(3.0)
    c2 = b.const(3.0)
    assert c1.node_id == c2.node_id
    assert b.const(3).node_id != c1.node_id  # different dtype


def test_thread_index_nodes_are_cached():
    b = KernelBuilder("k", 8)
    assert b.thread_idx_x().node_id == b.thread_idx_x().node_id


def test_operator_overloading_builds_expected_graph():
    b = KernelBuilder("k", 8)
    b.global_array("out", 8)
    tid = b.thread_idx_x()
    expr = (tid + 1) * 2 - tid
    b.store("out", tid, expr)
    graph = b.finish()
    opcodes = {n.opcode for n in graph.nodes}
    assert {Opcode.ADD, Opcode.MUL, Opcode.SUB, Opcode.STORE} <= opcodes


def test_dtype_promotion_to_float():
    b = KernelBuilder("k", 8)
    tid = b.thread_idx_x()
    result = tid * 2.5
    assert result.dtype is DType.F32


def test_from_thread_or_const_creates_elevator():
    b = KernelBuilder("k", 8)
    b.global_array("out", 8)
    tid = b.thread_idx_x()
    v = b.load("out", tid) if False else b.const(1.0)
    b.tag_value("v", v)
    remote = b.from_thread_or_const("v", -1, 0.0)
    b.store("out", tid, remote)
    graph = b.finish()
    elevators = graph.nodes_with_opcode(Opcode.ELEVATOR)
    assert len(elevators) == 1
    # source offset -1 => hardware shift +1
    assert elevators[0].param("delta") == 1


def test_from_thread_or_const_rejects_zero_delta():
    b = KernelBuilder("k", 8)
    v = b.const(1.0)
    with pytest.raises(KernelBuildError):
        b.from_thread_or_const(v, 0, 0.0)


def test_untagged_variable_is_reported_at_finish():
    b = KernelBuilder("k", 8)
    b.global_array("out", 8)
    tid = b.thread_idx_x()
    remote = b.from_thread_or_const("missing", -1, 0.0)
    b.store("out", tid, remote)
    with pytest.raises(KernelBuildError, match="missing"):
        b.finish()


def test_tag_value_connects_pending_elevators():
    b = KernelBuilder("k", 8)
    b.global_array("out", 8)
    tid = b.thread_idx_x()
    remote = b.from_thread_or_const("sum", -1, 0.0)
    total = remote + 1.0
    b.tag_value("sum", total)
    b.store("out", tid, total)
    graph = b.finish()
    elevator = graph.nodes_with_opcode(Opcode.ELEVATOR)[0]
    assert graph.arity_of(elevator.node_id) == 1


def test_duplicate_tag_rejected():
    b = KernelBuilder("k", 8)
    v = b.const(1.0)
    b.tag_value("x", v)
    with pytest.raises(KernelBuildError):
        b.tag_value("x", v)


def test_from_thread_or_mem_requires_earlier_thread():
    b = KernelBuilder("k", (4, 4))
    b.global_array("a", 16)
    tid = b.thread_idx_linear()
    pred = b.thread_idx_x().eq(0)
    with pytest.raises(KernelBuildError):
        b.from_thread_or_mem("a", tid, pred, src_offset=(1, 0))


def test_from_thread_or_mem_builds_eldst():
    b = KernelBuilder("k", (4, 4))
    b.global_array("a", 16)
    b.global_array("out", 16)
    tid = b.thread_idx_linear()
    pred = b.thread_idx_x().eq(0)
    val = b.from_thread_or_mem("a", tid, pred, src_offset=(-1, 0))
    b.store("out", tid, val)
    graph = b.finish()
    eldst = graph.nodes_with_opcode(Opcode.ELDST)
    assert len(eldst) == 1
    assert eldst[0].param("delta") == 1
    assert eldst[0].param("array") == "a"


def test_scratch_requires_shared_array():
    b = KernelBuilder("k", 8)
    b.global_array("g", 8)
    with pytest.raises(KernelBuildError):
        b.scratch_load("g", b.thread_idx_x())


def test_load_requires_global_array():
    b = KernelBuilder("k", 8)
    b.scratch_array("s", 8)
    with pytest.raises(KernelBuildError):
        b.load("s", b.thread_idx_x())


def test_finish_records_metadata_and_closes_builder():
    b = KernelBuilder("k", (4, 2))
    b.global_array("out", 8)
    b.store("out", b.thread_idx_linear(), b.const(1.0))
    graph = b.finish()
    assert graph.metadata["block_dim"] == (4, 2)
    assert graph.metadata["num_threads"] == 8
    assert "out" in graph.metadata["arrays"]
    with pytest.raises(KernelBuildError):
        b.const(1)


def test_values_cannot_cross_builders():
    b1 = KernelBuilder("a", 4)
    b2 = KernelBuilder("b", 4)
    v = b1.const(1.0)
    with pytest.raises(KernelBuildError):
        b2.unary(Opcode.NEG, v)
