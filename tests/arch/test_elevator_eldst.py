"""Tests for the elevator node and eLDST unit models (Sec. 4.1 / 4.2)."""

import pytest

from repro.arch.eldst import EldstUnit
from repro.arch.elevator import ElevatorUnit
from repro.arch.token import TaggedToken
from repro.errors import SimulationError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode


def _elevator_node(delta=1, const=0.0, window=None):
    g = DataflowGraph()
    return g.add_node(
        Opcode.ELEVATOR, params={"delta": delta, "const": const, "window": window}
    )


def _eldst_node(delta=1, window=None, array="a"):
    g = DataflowGraph()
    return g.add_node(
        Opcode.ELDST, params={"delta": delta, "window": window, "array": array}
    )


# ----------------------------------------------------------------- elevator
def test_elevator_retags_tokens_downstream():
    unit = ElevatorUnit(_elevator_node(delta=1), (8,), 8)
    out = unit.push(TaggedToken(tid=2, value=5.0))
    assert out.tid == 3 and out.value == 5.0
    assert unit.stats.tokens_retagged == 1


def test_elevator_drops_tokens_without_consumer():
    unit = ElevatorUnit(_elevator_node(delta=1), (8,), 8)
    assert unit.push(TaggedToken(tid=7, value=1.0)) is None
    assert unit.stats.tokens_dropped == 1


def test_elevator_constant_for_first_threads():
    unit = ElevatorUnit(_elevator_node(delta=2, const=9.0), (8,), 8)
    token = unit.constant_token(1)
    assert token.value == 9.0
    assert unit.constant_token(5) is None  # has a real producer


def test_elevator_window_respected():
    unit = ElevatorUnit(_elevator_node(delta=1, window=4), (8,), 8)
    # producer 3 -> consumer 4 crosses the window boundary and is dropped
    assert unit.push(TaggedToken(tid=3, value=1.0)) is None
    assert unit.constant_token(4) is not None


def test_elevator_deliver_and_duplicate_protection():
    unit = ElevatorUnit(_elevator_node(delta=1), (8,), 8)
    unit.push(TaggedToken(tid=0, value=1.0))
    assert unit.deliver(1).value == 1.0
    with pytest.raises(SimulationError):
        unit.push(TaggedToken(tid=0, value=2.0))


def test_elevator_buffer_occupancy_matches_delta():
    unit = ElevatorUnit(_elevator_node(delta=4), (16,), 16, buffer_entries=16)
    for producer in range(4):
        unit.push(TaggedToken(tid=producer, value=float(producer)))
    assert unit.buffered_count == 4
    assert not unit.overflow()
    assert unit.required_buffering(0) == 4


# -------------------------------------------------------------------- eLDST
def test_eldst_forwards_loaded_value_down_the_chain():
    unit = EldstUnit(_eldst_node(delta=1), (4,), 4)
    unit.complete_load(0, 7.5)
    assert unit.has_forward_for(1)
    token = unit.forward(1)
    assert token.tid == 1 and token.value == 7.5
    # forwarding loops the value onwards to thread 2
    assert unit.has_forward_for(2)


def test_eldst_reuse_factor():
    unit = EldstUnit(_eldst_node(delta=1, window=8), (16,), 16)
    assert unit.reuse_factor() == 8.0


def test_eldst_window_stops_the_loopback():
    unit = EldstUnit(_eldst_node(delta=1, window=2), (4,), 4)
    unit.complete_load(0, 1.0)
    unit.forward(1)
    # thread 2 starts a new window; the duplicate is discarded
    assert not unit.has_forward_for(2)
    assert unit.stats.dropped_duplicates >= 1


def test_eldst_requires_eldst_node():
    with pytest.raises(SimulationError):
        EldstUnit(_elevator_node(), (4,), 4)
