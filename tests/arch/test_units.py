"""Tests for tokens, token buffers, barrier unit and the Live Value Cache."""

import pytest

from repro.arch.barrier import BarrierUnit
from repro.arch.lvc import LiveValueCache
from repro.arch.token import TaggedToken
from repro.arch.token_buffer import TokenBuffer
from repro.errors import SimulationError


# ------------------------------------------------------------------- tokens
def test_token_retag_preserves_value():
    token = TaggedToken(tid=3, value=1.5, produced_at=7)
    retagged = token.retag(8)
    assert retagged.tid == 8
    assert retagged.value == 1.5
    assert retagged.produced_at == 7


def test_token_rejects_negative_tid():
    with pytest.raises(ValueError):
        TaggedToken(tid=-1, value=0)


# -------------------------------------------------------------- token buffer
def test_token_buffer_matches_when_operands_complete():
    buf = TokenBuffer(entries=4, arity=2)
    assert buf.insert(0, 0, 1.0)
    assert buf.ready_threads() == []
    assert buf.insert(0, 1, 2.0)
    assert buf.ready_threads() == [0]
    assert buf.pop(0) == [1.0, 2.0]
    assert buf.occupancy == 0


def test_token_buffer_backpressure_when_full():
    buf = TokenBuffer(entries=2, arity=1)
    assert buf.insert(0, 0, 1)
    assert buf.insert(1, 0, 1)
    assert not buf.insert(2, 0, 1)  # full: third thread rejected
    assert buf.stats.stalls_full == 1
    assert buf.has_slot_for(0)
    assert not buf.has_slot_for(2)


def test_token_buffer_rejects_duplicate_operand():
    buf = TokenBuffer(entries=2, arity=2)
    buf.insert(0, 0, 1)
    with pytest.raises(SimulationError):
        buf.insert(0, 0, 2)


def test_token_buffer_ready_bits_complete_a_thread():
    buf = TokenBuffer(entries=2, arity=2)
    buf.insert(0, 0, 5)
    assert buf.mark_ready(0, 1)
    assert buf.ready_threads() == [0]


def test_token_buffer_mark_ready_respects_capacity():
    """Acknowledge bits must not allocate slots beyond the entries bound."""
    buf = TokenBuffer(entries=2, arity=2)
    assert buf.insert(0, 0, 1)
    assert buf.insert(1, 0, 2)
    assert buf.is_full
    # A new thread's acknowledge is backpressured exactly like insert().
    assert not buf.mark_ready(2, 1)
    assert buf.occupancy == 2
    assert buf.stats.stalls_full == 1
    # Threads that already own a slot can still be acknowledged.
    assert buf.mark_ready(0, 1)
    assert buf.ready_threads() == [0]


def test_token_buffer_mark_ready_validates_port():
    buf = TokenBuffer(entries=2, arity=2)
    with pytest.raises(SimulationError):
        buf.mark_ready(0, 5)


# ------------------------------------------------------------------ barrier
def test_barrier_releases_after_all_arrivals():
    barrier = BarrierUnit(num_threads=4)
    assert not barrier.arrive(0, cycle=10)
    assert not barrier.arrive(1, cycle=12)
    assert not barrier.arrive(2, cycle=11)
    assert barrier.arrive(3, cycle=20)
    assert barrier.release_cycle == 20
    assert barrier.stats.wait_cycles == (20 - 10) + (20 - 12) + (20 - 11)


def test_barrier_rejects_double_arrival_and_foreign_threads():
    barrier = BarrierUnit(num_threads=2)
    barrier.arrive(0, 0)
    with pytest.raises(SimulationError):
        barrier.arrive(0, 1)
    with pytest.raises(SimulationError):
        barrier.arrive(5, 0)


# ---------------------------------------------------------------------- LVC
def test_lvc_roundtrip_and_latency():
    lvc = LiveValueCache(capacity_values=2, access_latency=6)
    assert lvc.write("k", 1.0) == 6
    value, latency = lvc.read("k")
    assert value == 1.0 and latency == 6
    assert "k" not in lvc


def test_lvc_overflow_is_tracked_separately():
    lvc = LiveValueCache(capacity_values=1)
    lvc.write("a", 1)
    lvc.write("b", 2)
    assert lvc.stats.overflow_writes == 1
    assert lvc.read("b")[0] == 2
    assert lvc.stats.overflow_reads == 1


def test_lvc_missing_key_is_an_error():
    with pytest.raises(SimulationError):
        LiveValueCache().read("missing")
