"""Tests for the physical grid and the NoC model."""

import pytest

from repro.arch.grid import PhysicalGrid
from repro.arch.noc import Link, Noc
from repro.config.system import CgraGridConfig, NocConfig
from repro.errors import RoutingError
from repro.graph.opcodes import UnitClass


def test_grid_matches_table2_inventory():
    grid = PhysicalGrid(CgraGridConfig())
    caps = grid.capacity()
    assert len(grid) == 140
    assert caps[UnitClass.ALU] == 32
    assert caps[UnitClass.FPU] == 32
    assert caps[UnitClass.SPECIAL] == 12
    assert caps[UnitClass.LDST] == 32
    assert caps[UnitClass.CONTROL] == 16
    assert caps[UnitClass.SPLIT_JOIN] == 16


def test_grid_compatibility_for_new_units():
    grid = PhysicalGrid(CgraGridConfig())
    # elevator nodes are hosted by control units, eLDST by LDST units
    assert all(u.unit_class is UnitClass.CONTROL
               for u in grid.units_compatible_with(UnitClass.ELEVATOR))
    assert all(u.unit_class is UnitClass.LDST
               for u in grid.units_compatible_with(UnitClass.ELDST))


def test_grid_positions_are_unique_and_in_bounds():
    grid = PhysicalGrid(CgraGridConfig())
    positions = {(u.row, u.col) for u in grid}
    assert len(positions) == len(grid)
    assert all(0 <= u.row < 10 and 0 <= u.col < 14 for u in grid)


def test_manhattan_distance():
    grid = PhysicalGrid(CgraGridConfig())
    a, b = grid.unit(0), grid.unit(15)
    assert a.distance_to(b) == abs(a.row - b.row) + abs(a.col - b.col)


def test_noc_xy_route_length_equals_manhattan_distance():
    grid = PhysicalGrid(CgraGridConfig())
    noc = Noc(grid, NocConfig())
    route = noc.route(0, 25)
    assert len(route) == grid.distance(0, 25)
    assert noc.transfer_latency(0, 25) == 1 + len(route)


def test_noc_link_contention_delays_tokens():
    grid = PhysicalGrid(CgraGridConfig())
    noc = Noc(grid, NocConfig(link_bandwidth_tokens=1))
    first = noc.send(0, 1, cycle=0)
    second = noc.send(0, 1, cycle=0)
    assert second > first
    assert noc.stats.contention_cycles >= 1


def test_link_must_connect_adjacent_tiles():
    with pytest.raises(RoutingError):
        Link(0, 0, 2, 0)
