"""Diagnostic core: codes, formatting, and structure-pass parity."""

import pytest

from repro.analyze import CODES, Diagnostic, Severity, structure_diagnostics
from repro.errors import GraphValidationError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode
from repro.graph.validate import validate_graph, validation_issues


def test_unknown_code_is_rejected():
    with pytest.raises(ValueError):
        Diagnostic(code="RA999", severity=Severity.ERROR, message="nope")


def test_format_carries_code_severity_labels_and_hint():
    d = Diagnostic(
        code="RA020",
        severity=Severity.WARNING,
        message="unordered writes",
        nodes=(3, 7),
        labels=("a#3", "b#7"),
        hint="add a barrier",
    )
    line = d.format()
    assert line.startswith("RA020 warning: unordered writes")
    assert "[a#3, b#7]" in line
    assert "(hint: add a barrier)" in line
    assert d.title == CODES["RA020"]


def test_to_dict_is_json_plain():
    d = Diagnostic(
        code="RA034",
        severity=Severity.INFO,
        message="legal cut",
        data={"window_lcm": 12},
    )
    record = d.to_dict()
    assert record == {
        "code": "RA034",
        "severity": "info",
        "message": "legal cut",
        "data": {"window_lcm": 12},
    }


def _no_effect_graph() -> DataflowGraph:
    g = DataflowGraph("noop")
    tid = g.add_node(Opcode.TID_LINEAR)
    add = g.add_node(Opcode.ADD)
    g.add_edge(tid, add, 0)
    g.add_edge(tid, add, 1)
    return g


def test_structure_pass_matches_validation_issues():
    g = _no_effect_graph()
    diagnostics = structure_diagnostics(g)
    assert [d.message for d in diagnostics] == validation_issues(g)
    assert [d.code for d in diagnostics] == ["RA006"]
    assert all(d.severity is Severity.ERROR for d in diagnostics)


def test_validate_graph_raise_contract_is_unchanged():
    with pytest.raises(GraphValidationError) as excinfo:
        validate_graph(_no_effect_graph())
    assert "failed validation" in str(excinfo.value)
    assert "no STORE or OUTPUT node" in str(excinfo.value)


def test_structure_codes_for_malformed_nodes():
    g = DataflowGraph("bad")
    c = g.add_node(Opcode.CONST)  # missing 'value' -> RA002
    st = g.add_node(Opcode.STORE, params={"array": "o"})
    g.add_edge(c, st, 0)
    g.add_edge(c, st, 1)
    codes = [d.code for d in structure_diagnostics(g)]
    assert codes == ["RA002"]
