"""Static verdicts agree with dynamic behavior across the whole registry.

Acceptance contract of the analyzer (see ROADMAP "Kernel static
analysis"): for every registry workload x available graph variant,

* the engine-eligibility verdict matches what ``engine="auto"`` dispatch
  actually constructs;
* the replay-order verdict matches the batched engine's prepass decision;
* the shardability verdict and code match ``plan_shards``'s actual
  shard-or-fallback decision;
* the deadlock pass flags (only) kernels that raise ``DeadlockError`` —
  every registry kernel is deadlock-free and runs to completion, while
  the canonical opposing-elevator kernel is flagged AND deadlocks;
* the critical-path bound is a true lower bound on measured single-core
  cycles.
"""

import pytest

from repro.analyze import analyze_kernel
from repro.compiler.pipeline import compile_kernel
from repro.errors import DeadlockError
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.cycle import CycleSimulator, resolve_engine
from repro.sim.launch import KernelLaunch
from repro.sim.multicore import plan_shards
from repro.workloads.registry import all_workloads, registry_kernel_count

#: Small problem sizes so the sweep stays in the fast lane.
SMALL_PARAMS = {
    "scan": {"n": 32},
    "matrixMul": {"dim": 4},
    "convolution": {"n": 32, "k0": 0.25, "k1": 0.5, "k2": 0.25},
    "reduce": {"n": 32, "window": 8},
    "lud": {"dim": 6},
    "bpnn": {"n_in": 8, "n_out": 8},
    "hotspot": {"dim": 8},
    "pathfinder": {"cols": 32, "rows": 3},
    "srad": {"dim": 8},
    "spmv": {"rows": 8, "max_nnz": 4},
}

#: Pinned (engine, order_stable, shardable) verdict for every registry
#: kernel.  The engine verdicts carry RA040 (batched), RA044
#: (window-batched) or RA041+RA045 (event-only); order_stable=False
#: carries RA042 (data-dependent load indices force per-node replay).
#: A change here is an architectural change and must be deliberate.
EXPECTED_VERDICTS = {
    ("scan", "mt"): ("event", True, False),
    ("scan", "dmt"): ("event", True, False),
    ("scan", "stream"): ("batched", True, True),
    ("matrixMul", "mt"): ("event", True, False),
    ("matrixMul", "dmt"): ("window-batched", True, False),
    ("matrixMul", "dmt_win"): ("window-batched", True, True),
    ("matrixMul", "stream"): ("batched", True, True),
    ("convolution", "mt"): ("event", True, False),
    ("convolution", "dmt"): ("window-batched", True, False),
    ("convolution", "dmt_win"): ("window-batched", True, True),
    ("convolution", "stream"): ("batched", True, True),
    ("reduce", "mt"): ("event", True, False),
    ("reduce", "dmt"): ("window-batched", True, True),
    ("reduce", "dmt_win"): ("window-batched", True, True),
    ("reduce", "stream"): ("batched", True, True),
    ("lud", "mt"): ("event", True, False),
    ("lud", "dmt"): ("window-batched", True, False),
    ("lud", "dmt_win"): ("window-batched", True, True),
    ("lud", "stream"): ("batched", True, True),
    ("srad", "mt"): ("event", True, False),
    ("srad", "dmt"): ("window-batched", True, False),
    ("srad", "dmt_win"): ("window-batched", True, True),
    ("srad", "stream"): ("batched", True, True),
    ("bpnn", "mt"): ("event", True, False),
    ("bpnn", "dmt"): ("window-batched", True, False),
    ("bpnn", "stream"): ("batched", True, True),
    ("hotspot", "mt"): ("event", True, False),
    ("hotspot", "dmt"): ("window-batched", True, False),
    ("hotspot", "dmt_win"): ("window-batched", True, True),
    ("hotspot", "stream"): ("batched", True, True),
    ("pathfinder", "mt"): ("event", True, False),
    ("pathfinder", "dmt"): ("window-batched", True, False),
    ("pathfinder", "dmt_win"): ("window-batched", True, True),
    ("pathfinder", "stream"): ("batched", True, True),
    ("spmv", "mt"): ("event", False, False),
    ("spmv", "dmt"): ("window-batched", False, True),
    ("spmv", "dmt_win"): ("window-batched", False, True),
    ("spmv", "stream"): ("batched", False, True),
}


def _variant_graphs(workload):
    params = workload.params_with_defaults(SMALL_PARAMS.get(workload.name))
    yield "mt", workload.build_mt(params)
    yield "dmt", workload.build_dmt(params)
    if workload.has_windowed_variant():
        yield "dmt_win", workload.build_dmt_windowed(params)
    if workload.has_stream_variant():
        yield "stream", workload.build_stream(params)


def _registry_cases():
    for workload in all_workloads():
        for variant, graph in _variant_graphs(workload):
            yield pytest.param(workload, variant, graph, id=f"{workload.name}-{variant}")


CASES = list(_registry_cases())


def test_case_sweep_is_the_whole_registry():
    """The parametrized sweep below must cover every declared registry
    kernel — the count is derived from the registry itself, never
    hard-coded, so a new workload or variant grows the sweep (and the
    pinned verdict table) automatically or fails loudly here."""
    assert len(CASES) == registry_kernel_count()
    assert {(w.name, v) for w, v, _ in (p.values for p in CASES)} == set(EXPECTED_VERDICTS)


@pytest.mark.parametrize("workload,variant,graph", CASES)
def test_registry_kernel_analyzes_clean(workload, variant, graph):
    """Every shipped workload x variant carries no error/warning findings."""
    result = analyze_kernel(compile_kernel(graph))
    assert result.ok, [d.format() for d in result.errors() + result.warnings()]
    assert not result.deadlock


@pytest.mark.parametrize("workload,variant,graph", CASES)
def test_registry_verdicts_are_pinned(workload, variant, graph):
    """Every registry kernel's (engine, order_stable, shardable) verdict
    matches the pinned table, and the RA04x code set follows: RA042 for
    the order-unstable spmv gather kernels, RA041+RA045 for scan's cyclic
    recurrence and every whole-block-barrier mt kernel."""
    result = analyze_kernel(compile_kernel(graph))
    engine, order_stable, shardable = EXPECTED_VERDICTS[(workload.name, variant)]
    assert result.engine == engine
    assert result.order_stable == order_stable
    assert result.shard.shardable == shardable
    codes = set(result.codes())
    if engine != "event":
        # RA042 marks data-dependent load indices on a batched engine —
        # the per-node replay fallback; RA043 its order-stability cousin.
        assert ("RA042" in codes) == (not order_stable)
        assert ("RA043" in codes) == order_stable
    else:
        assert {"RA041", "RA045"} <= codes


@pytest.mark.parametrize("workload,variant,graph", CASES)
def test_static_verdicts_match_dynamic_dispatch(workload, variant, graph):
    compiled = compile_kernel(graph)
    result = analyze_kernel(compiled)

    # Engine eligibility: the static verdict IS the auto dispatch.
    assert result.engine == resolve_engine("auto", compiled.graph)
    prepared = workload.prepare(workload.params_with_defaults(SMALL_PARAMS.get(workload.name)))
    launch = prepared.launch(variant)
    from repro.sim.cycle import build_simulator

    simulator = build_simulator(compiled, launch, engine="auto")
    # Exact class mapping (WindowBatchedSimulator subclasses
    # BatchedSimulator, so a truthy isinstance check is not enough).
    expected_class = {
        "batched": "BatchedSimulator",
        "window-batched": "WindowBatchedSimulator",
        "event": "CycleSimulator",
    }[result.engine]
    assert type(simulator).__name__ == expected_class

    # Window-batchability verdict codes travel with the engine verdict.
    codes = set(result.codes())
    if result.engine == "window-batched":
        assert "RA044" in codes and "RA041" not in codes
    elif result.engine == "event":
        assert {"RA041", "RA045"} <= codes
    else:
        assert "RA040" in codes

    # Replay-order stability: the batched engines' prepass decision.
    if result.engine in ("batched", "window-batched"):
        assert simulator._ordered_loads == result.order_stable

    # Shardability: verdict and code match the planner's actual decision.
    plan = plan_shards(compiled, cores=4)
    assert plan.sharded == result.shard.shardable
    assert plan.fallback_code == result.shard.fallback_code
    if plan.sharded:
        assert plan.window_lcm == result.shard.window_lcm

    # No deadlock statically predicted; the kernel must run to completion
    # and the measured cycles must respect the static lower bound.  The
    # resolved engine recorded in the run's provenance must equal the
    # static verdict (never "auto").
    run = simulate(compiled, launch)
    assert run.cycles >= result.min_cycles
    assert run.engine == result.engine
    assert run.stats.extra["engine"] == result.engine


def test_deadlock_pass_flags_exactly_the_deadlocking_kernel():
    n = 4
    b = KernelBuilder("deadlock", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    fwd = b.from_thread_or_const("y", +1, 0.0)
    bwd = b.from_thread_or_const("y", -1, 0.0)
    val = fwd + bwd
    b.tag_value("y", val)
    b.store("out", tid, val)
    graph = b.finish()
    compiled = compile_kernel(graph)
    assert analyze_kernel(compiled).deadlock  # statically flagged...
    with pytest.raises(DeadlockError):  # ...and it really deadlocks
        CycleSimulator(compiled, KernelLaunch(graph, {}), max_cycles=50_000).run()
