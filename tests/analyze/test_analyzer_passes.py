"""Pathological kernels hit exact RA0xx codes; clean kernels stay clean."""

from dataclasses import replace

import pytest

from repro.analyze import analyze_kernel
from repro.compiler.pipeline import CompilerOptions, compile_kernel
from repro.config.system import TokenBufferConfig, default_system_config
from repro.errors import CompilationError
from repro.kernel.builder import KernelBuilder


def _deadlock_graph(n=4):
    """Opposite-direction elevators in one cycle: the canonical deadlock."""
    b = KernelBuilder("deadlock", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    fwd = b.from_thread_or_const("y", +1, 0.0)
    bwd = b.from_thread_or_const("y", -1, 0.0)
    val = fwd + bwd
    b.tag_value("y", val)
    b.store("out", tid, val)
    return b.finish()


def _recurrence_graph(n=8, name="scanlike"):
    """A live one-directional recurrence (prefix-sum shape)."""
    b = KernelBuilder(name, n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    prev = b.from_thread_or_const("acc", -1, 0.0)
    val = prev + tid
    b.tag_value("acc", val)
    b.store("out", tid, val)
    return b.finish()


def test_opposing_elevators_flag_ra010():
    result = analyze_kernel(compile_kernel(_deadlock_graph()))
    assert "RA010" in result.codes()
    assert result.deadlock
    (diag,) = [d for d in result.diagnostics if d.code == "RA010"]
    assert diag.nodes  # provenance points at the cycle's members


def test_strict_compile_rejects_deadlock_kernel():
    with pytest.raises(CompilationError) as excinfo:
        compile_kernel(_deadlock_graph(), options=CompilerOptions(analyze="strict"))
    assert "RA010" in str(excinfo.value)


def test_one_directional_recurrence_is_not_deadlock():
    result = analyze_kernel(compile_kernel(_recurrence_graph()))
    assert not result.deadlock
    assert "RA010" not in result.codes()
    assert "RA011" not in result.codes()


def test_capacity_one_token_buffer_flags_ra012():
    config = replace(
        default_system_config(), token_buffer=TokenBufferConfig(entries=1)
    )
    result = analyze_kernel(compile_kernel(_recurrence_graph(name="tiny"), config))
    assert "RA012" in result.codes()
    diag = result["RA012"]
    assert diag.data["demand"] == 2
    assert diag.data["entries"] == 1
    assert not result.ok  # RA012 is a warning, so the kernel is not clean
    assert not result.deadlock  # ...but it is not a predicted deadlock


def test_barrier_in_cycle_flags_ra011():
    n = 4
    b = KernelBuilder("barrier_cycle", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    prev = b.from_thread_or_const("v", -1, 0.0)
    gated = b.barrier(prev + 1.0)
    b.tag_value("v", gated)
    b.store("out", tid, gated)
    result = analyze_kernel(compile_kernel(b.finish()))
    assert "RA011" in result.codes()
    assert result.deadlock


def test_unordered_scratch_writes_flag_ra020():
    n = 8
    b = KernelBuilder("ww_race", n)
    b.scratch_array("s", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    b.scratch_store("s", tid, tid)
    b.scratch_store("s", tid + 1.0, tid)
    b.store("out", tid, tid)
    result = analyze_kernel(compile_kernel(b.finish()))
    assert "RA020" in result.codes()
    assert result["RA020"].data["array"] == "s"


def test_unordered_scratch_write_read_flags_ra021():
    n = 8
    b = KernelBuilder("wr_race", n)
    b.scratch_array("s", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    b.scratch_store("s", tid, tid)
    b.store("out", tid, b.scratch_load("s", tid))  # no order token, no barrier
    result = analyze_kernel(compile_kernel(b.finish()))
    assert "RA021" in result.codes()


def test_barrier_ordered_scratch_traffic_is_clean():
    n = 8
    b = KernelBuilder("ordered", n)
    b.scratch_array("s", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    ack = b.scratch_store("s", tid, tid)
    bar = b.barrier(ack)
    b.store("out", tid, b.scratch_load("s", tid, order=bar))
    result = analyze_kernel(compile_kernel(b.finish()))
    assert "RA020" not in result.codes()
    assert "RA021" not in result.codes()


def test_unbounded_elevator_flags_ra030():
    result = analyze_kernel(compile_kernel(_recurrence_graph()))
    assert result.shard.fallback_code == "RA030"
    diag = result["RA030"]
    assert "no bounded transmission window" in diag.message
    assert diag.nodes  # names the unbounded elevator


def test_analysis_is_cached_and_invalidated_by_config():
    compiled = compile_kernel(_recurrence_graph())
    first = analyze_kernel(compiled)
    assert analyze_kernel(compiled) is first  # cached by signature

    other = compile_kernel(
        _recurrence_graph(),
        replace(default_system_config(), token_buffer=TokenBufferConfig(entries=1)),
    )
    assert analyze_kernel(other) is not first
    assert "RA012" in analyze_kernel(other).codes()
