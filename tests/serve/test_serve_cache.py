"""Unit tests for the serve-side cache primitives (LRU + single-flight)."""

import asyncio

import pytest

from repro.serve.cache import KernelLRU, SingleFlight


class TestKernelLRU:
    def test_capacity_evicts_least_recently_used(self):
        lru = KernelLRU(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh 'a'; 'b' is now LRU
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 1 and lru.get("c") == 3
        assert lru.evictions == 1

    def test_stats_track_hits_and_misses(self):
        lru = KernelLRU(capacity=4)
        lru.put("k", "v")
        lru.get("k")
        lru.get("absent")
        stats = lru.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            KernelLRU(capacity=0)


class TestSingleFlight:
    def test_concurrent_callers_share_one_execution(self):
        async def scenario():
            flight = SingleFlight()
            calls = 0
            gate = asyncio.Event()

            async def factory():
                nonlocal calls
                calls += 1
                await gate.wait()
                return "result"

            async def caller():
                return await flight.run("key", factory)

            tasks = [asyncio.create_task(caller()) for _ in range(5)]
            await asyncio.sleep(0)  # let every caller reach the flight table
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            return calls, outcomes, flight.coalesced

        calls, outcomes, coalesced = asyncio.run(scenario())
        assert calls == 1
        assert [value for value, _ in outcomes] == ["result"] * 5
        assert sum(1 for _, shared in outcomes if shared) == 4
        assert coalesced == 4

    def test_exception_propagates_to_every_waiter_and_clears_flight(self):
        async def scenario():
            flight = SingleFlight()
            gate = asyncio.Event()

            async def failing():
                await gate.wait()
                raise ValueError("boom")

            tasks = [
                asyncio.create_task(flight.run("key", failing)) for _ in range(3)
            ]
            await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, ValueError) for r in results)
            assert len(flight) == 0  # next caller runs fresh

            async def ok():
                return 42

            return await flight.run("key", ok)

        value, shared = asyncio.run(scenario())
        assert value == 42 and shared is False

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flight = SingleFlight()
            calls = []

            async def factory(tag):
                calls.append(tag)
                return tag

            a, b = await asyncio.gather(
                flight.run("a", lambda: factory("a")),
                flight.run("b", lambda: factory("b")),
            )
            return calls, a, b

        calls, a, b = asyncio.run(scenario())
        assert sorted(calls) == ["a", "b"]
        assert a == ("a", False) and b == ("b", False)


def test_single_flight_rejects_reuse_outside_event_loop():
    flight = SingleFlight()

    async def ok():
        return 1

    with pytest.raises(RuntimeError):
        # .run() is a coroutine; driving it without a loop must fail loudly,
        # not silently corrupt the flight table.
        flight.run("k", ok).send(None)
