"""Cache-correctness suite for the served simulate/compile/explore paths.

The acceptance bar from the issue, verified over real HTTP traffic:

* a served ``simulate`` response is bit-identical to a direct
  :func:`~repro.harness.experiments.run_workload` call (counters AND
  outputs digest);
* a second identical request is a ``hit`` that performs zero
  simulations;
* N concurrent duplicate requests simulate exactly once (single-flight).
"""

import threading

import pytest

from repro.explore.runner import run_campaign
from repro.explore.spec import CampaignSpec
from repro.harness.experiments import run_workload_record
from repro.serve.client import LocalServer

BODY = {"workload": "matrixMul", "variant": "dmt", "params": {"dim": 8}}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("serve-store")
    with LocalServer(store_dir=store) as live:
        yield live


def _simulations(server):
    return server.service.metrics.counter("serve.simulations")


def test_healthz(server):
    status, payload = server.request("GET", "/healthz")
    assert status == 200 and payload["status"] == "ok"


def test_served_response_is_bit_identical_to_direct_run(server):
    status, payload = server.request("POST", "/v1/simulate", BODY)
    assert status == 200 and payload["status"] == "ok"
    served = payload["record"]["result"]

    direct = run_workload_record("matrixMul", "dmt", params={"dim": 8}, seed=0, engine="auto")
    assert served["counters"] == direct["counters"]
    assert served["outputs_digest"] == direct["outputs_digest"]
    assert served["cycles"] == direct["cycles"]
    assert served["energy_pj"] == direct["energy_pj"]
    assert served["energy"] == direct["energy"]


def test_second_identical_request_is_a_hit_with_zero_simulations(server):
    _, first = server.request("POST", "/v1/simulate", BODY)
    before = _simulations(server)
    status, second = server.request("POST", "/v1/simulate", BODY)
    assert status == 200 and second["cache"] == "hit"
    assert _simulations(server) == before  # no new simulation ran
    assert second["record"] == first["record"]
    assert second["key"] == first["key"]


def test_concurrent_duplicate_requests_simulate_once(server):
    body = {**BODY, "seed": 7}  # fresh key, guaranteed cold
    before = _simulations(server)
    fan_out = 4
    barrier = threading.Barrier(fan_out)
    responses = []
    lock = threading.Lock()

    def fire():
        barrier.wait()
        response = server.request("POST", "/v1/simulate", body)
        with lock:
            responses.append(response)

    threads = [threading.Thread(target=fire) for _ in range(fan_out)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)

    assert len(responses) == fan_out
    assert all(status == 200 for status, _ in responses)
    assert _simulations(server) == before + 1  # single flight: one simulation
    caches = [payload["cache"] for _, payload in responses]
    assert caches.count("miss") == 1
    assert set(caches) <= {"miss", "coalesced", "hit"}
    records = [payload["record"] for _, payload in responses]
    assert all(record == records[0] for record in records)


def test_served_requests_share_the_explore_key_space(server):
    spec_dict = {
        "name": "served",
        "workloads": ["convolution"],
        "variants": ["dmt"],
        "params": {"convolution": {"n": 64}},
        "sweep": {"grid": {"token_buffer.entries": [8, 16]}},
    }
    status, cold = server.request("POST", "/v1/explore", spec_dict)
    assert status == 200
    assert cold["points"] == 2 and cold["misses"] == 2 and cold["errors"] == 0

    before = _simulations(server)
    status, warm = server.request("POST", "/v1/explore", spec_dict)
    assert status == 200 and warm["hits"] == 2 and warm["misses"] == 0
    assert _simulations(server) == before

    # A /v1/simulate request for one of the campaign's points is a hit:
    # server and campaign runner address the same store by the same keys.
    status, payload = server.request(
        "POST",
        "/v1/simulate",
        {
            "workload": "convolution",
            "variant": "dmt",
            "params": {"n": 64},
            "overrides": {"token_buffer.entries": 8},
        },
    )
    assert status == 200 and payload["cache"] == "hit"
    assert _simulations(server) == before

    # And the offline campaign runner reads the server-written records.
    offline = run_campaign(
        CampaignSpec.from_dict(spec_dict), jobs=1, cache_dir=server.service.store.root
    )
    assert offline.hits == 2 and offline.misses == 0


def test_characterization_table_aggregates_cached_records(server):
    status, payload = server.request(
        "POST",
        "/v1/simulate",
        {
            "workload": "convolution",
            "variant": "dmt",
            "params": {"n": 64},
            "overrides": {"token_buffer.entries": 16},
        },
    )
    assert status == 200
    digest = payload["kernel_digest"]

    status, table = server.request("GET", f"/v1/kernels/{digest}/characterization")
    assert status == 200
    assert table["workload"] == "convolution" and table["variant"] == "dmt"
    assert len(table["rows"]) >= 2  # both sweep configs of the campaign
    config_digests = {row["config_digest"] for row in table["rows"]}
    assert len(config_digests) >= 2
    for row in table["rows"]:
        assert isinstance(row["cycles"], int) and row["cycles"] > 0
        assert row["energy_pj"] > 0
        assert row["outputs_digest"]

    status, index = server.request("GET", "/v1/kernels")
    assert status == 200
    assert digest in {kernel["kernel_digest"] for kernel in index["kernels"]}


def test_characterization_unknown_digest_is_404(server):
    status, payload = server.request("GET", f"/v1/kernels/{'0' * 64}/characterization")
    assert status == 404 and "no cached records" in payload["error"]


def test_compile_endpoint_memoises_in_the_kernel_lru(server):
    body = {"workload": "matrixMul", "variant": "dmt"}
    status, cold = server.request("POST", "/v1/compile", body)
    assert status == 200 and cold["cache"] in {"miss", "hit"}
    assert cold["kernel"]["nodes"] > 0 and cold["kernel"]["num_threads"] > 0
    assert cold["analysis"]["engine"]
    assert isinstance(cold["analysis"]["diagnostics"], list)

    before = server.service.metrics.counter("serve.compiles")
    status, warm = server.request("POST", "/v1/compile", body)
    assert status == 200 and warm["cache"] == "hit"
    assert server.service.metrics.counter("serve.compiles") == before
    assert warm["analysis"] == cold["analysis"]
    assert warm["kernel"] == cold["kernel"]
    assert server.service.kernels.stats()["hits"] >= 1


def test_failing_point_yields_a_cached_error_record(server):
    body = {"workload": "bpnn", "variant": "dmt_win"}  # bpnn has no dmt_win build
    status, first = server.request("POST", "/v1/simulate", body)
    assert status == 200 and first["status"] == "error"
    assert "WorkloadError" in first["record"]["error"]

    before = _simulations(server)
    status, second = server.request("POST", "/v1/simulate", body)
    assert second["cache"] == "hit" and _simulations(server) == before


def test_stats_reports_counters_and_hit_ratio(server):
    status, stats = server.request("GET", "/v1/stats")
    assert status == 200
    cache = stats["cache"]
    assert cache["lookups"] == cache["hits"] + cache["misses"] + cache["coalesced"]
    assert 0.0 < cache["hit_ratio"] < 1.0
    assert stats["simulations"] >= 1
    assert stats["store"]["records"] >= 1
    assert stats["inflight"] == 0
    assert stats["kernel_lru"]["size"] >= 1


def test_http_error_paths(server):
    status, payload = server.request("GET", "/v1/nope")
    assert status == 404

    status, payload = server.request("POST", "/healthz", {})
    assert status == 405

    status, payload = server.request("POST", "/v1/simulate", {"workload": "noSuch"})
    assert status == 400 and "noSuch" in payload["error"]

    status, payload = server.request("POST", "/v1/explore", {"bogus": True})
    assert status == 400


def test_malformed_json_body_is_400(server):
    import http.client

    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request(
            "POST",
            "/v1/simulate",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        assert b"not valid JSON" in response.read()
    finally:
        connection.close()
