"""Request canonicalization: digest stability, resolution, rejection."""

import pytest

from repro.config.system import default_system_config
from repro.explore.spec import CampaignSpec
from repro.serve.canonicalize import (
    ServeError,
    canonical_from_point,
    canonicalize_compile,
    canonicalize_simulate,
    kernel_digest,
)
from repro.workloads.registry import get_workload


def test_default_params_digest_identically_to_explicit_defaults():
    defaults = get_workload("matrixMul").params_with_defaults({})
    implicit = canonicalize_simulate({"workload": "matrixMul", "variant": "dmt"})
    explicit = canonicalize_simulate(
        {"workload": "matrixMul", "variant": "dmt", "params": dict(defaults)}
    )
    assert implicit.key == explicit.key
    assert implicit.kernel_digest == explicit.kernel_digest


def test_partial_config_digests_identically_to_spelled_out_default():
    leaf = default_system_config().to_dict()["token_buffer"]["entries"]
    bare = canonicalize_simulate({"workload": "matrixMul", "variant": "dmt"})
    spelled = canonicalize_simulate(
        {
            "workload": "matrixMul",
            "variant": "dmt",
            "config": {"token_buffer": {"entries": leaf}},
        }
    )
    assert bare.key == spelled.key
    assert bare.config_digest == spelled.config_digest


def test_overrides_change_config_digest_but_not_kernel_digest():
    base = canonicalize_simulate({"workload": "matrixMul", "variant": "dmt"})
    tweaked = canonicalize_simulate(
        {
            "workload": "matrixMul",
            "variant": "dmt",
            "overrides": {"token_buffer.entries": 8},
        }
    )
    assert base.key != tweaked.key
    assert base.kernel_digest == tweaked.kernel_digest


def test_engine_and_seed_are_part_of_the_key_but_not_the_kernel_digest():
    a = canonicalize_simulate({"workload": "matrixMul", "variant": "dmt", "seed": 0})
    b = canonicalize_simulate({"workload": "matrixMul", "variant": "dmt", "seed": 1})
    c = canonicalize_simulate({"workload": "matrixMul", "variant": "dmt", "engine": "event"})
    assert len({a.key, b.key, c.key}) == 3
    assert a.kernel_digest == b.kernel_digest == c.kernel_digest


def test_kernel_digest_helper_resolves_param_defaults():
    defaults = get_workload("matrixMul").params_with_defaults({})
    assert kernel_digest("matrixMul", "dmt") == kernel_digest(
        "matrixMul", "dmt", dict(defaults)
    )
    assert kernel_digest("matrixMul", "dmt") != kernel_digest("matrixMul", "dmt", {"dim": 4})


def test_canonical_from_point_matches_equivalent_http_body():
    spec = CampaignSpec(
        name="t",
        workloads=("matrixMul",),
        variants=("dmt",),
        seeds=(3,),
        params={"matrixMul": {"dim": 4}},
        grid=(("token_buffer.entries", (8,)),),
    )
    (point,) = spec.expand()
    via_point = canonical_from_point(point)
    via_body = canonicalize_simulate(
        {
            "workload": "matrixMul",
            "variant": "dmt",
            "seed": 3,
            "params": {"dim": 4},
            "overrides": {"token_buffer.entries": 8},
        }
    )
    assert via_point.key == via_body.key
    assert via_point.kernel_digest == via_body.kernel_digest


@pytest.mark.parametrize(
    "body,fragment",
    [
        ({"variant": "dmt"}, "workload"),
        ({"workload": "noSuchKernel", "variant": "dmt"}, "noSuchKernel"),
        ({"workload": "matrixMul", "variant": "noSuchVariant"}, "variant"),
        ({"workload": "matrixMul", "variant": "dmt", "engine": "warp"}, "engine"),
        ({"workload": "matrixMul", "variant": "dmt", "bogus": 1}, "bogus"),
        ({"workload": "matrixMul", "variant": "dmt", "params": {"dims": 4}}, "dims"),
        (
            {"workload": "matrixMul", "variant": "dmt", "overrides": {"token_buffer.depth": 1}},
            "token_buffer.depth",
        ),
        ({"workload": "matrixMul", "variant": "dmt", "seed": "zero"}, "seed"),
    ],
)
def test_bad_simulate_bodies_raise_serve_error_400(body, fragment):
    with pytest.raises(ServeError) as excinfo:
        canonicalize_simulate(body)
    assert excinfo.value.status == 400
    assert fragment in str(excinfo.value)


def test_compile_rejects_fermi_and_simulate_only_keys():
    with pytest.raises(ServeError) as excinfo:
        canonicalize_compile({"workload": "matrixMul", "variant": "fermi"})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError):
        canonicalize_compile({"workload": "matrixMul", "variant": "dmt", "seed": 1})


def test_compile_key_is_stable_and_config_sensitive():
    a = canonicalize_compile({"workload": "matrixMul", "variant": "dmt"})
    b = canonicalize_compile({"workload": "matrixMul", "variant": "dmt", "params": {"dim": 16}})
    c = canonicalize_compile(
        {"workload": "matrixMul", "variant": "dmt", "config": {"token_buffer": {"entries": 8}}}
    )
    assert a.key == b.key  # dim=16 is the default
    assert a.key != c.key
