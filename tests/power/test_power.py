"""Tests for the energy model."""

import pytest

from repro.power.model import EnergyBreakdown, cgra_energy, energy_from_counters, fermi_energy
from repro.power.tables import default_energy_table


def test_breakdown_accumulates_components():
    breakdown = EnergyBreakdown()
    breakdown.add("alu", 10.0)
    breakdown.add("alu", 5.0)
    breakdown.add("dram", 85.0)
    assert breakdown.total_pj == 100.0
    assert breakdown.fraction("dram") == pytest.approx(0.85)
    assert breakdown.as_dict()["total_pj"] == 100.0


def test_cgra_energy_charges_interthread_events():
    counters = {
        "cycles": 1000,
        "alu_ops": 100,
        "fpu_ops": 50,
        "elevator_retags": 200,
        "eldst_forwards": 100,
        "noc_hops": 400,
        "token_buffer_inserts": 300,
        "token_buffer_matches": 150,
        "l1_read_hits": 50,
        "dram_reads": 5,
    }
    breakdown = cgra_energy(counters)
    assert breakdown.components["inter_thread"] > 0
    assert breakdown.components["noc"] > 0
    assert breakdown.components["leakage"] > 0
    assert breakdown.total_pj > breakdown.components["leakage"]


def test_fermi_energy_is_dominated_by_front_end_for_compute_kernels():
    counters = {
        "cycles": 1000,
        "instructions_issued": 1000,
        "instructions_per_lane": 32000,
        "register_reads": 64000,
        "register_writes": 32000,
        "alu_ops": 32000,
    }
    breakdown = fermi_energy(counters)
    front_end = breakdown.components["fetch_decode"] + breakdown.components["register_file"]
    assert front_end > breakdown.components["alu"]


def test_energy_dispatch_by_architecture_name():
    counters = {"cycles": 10}
    assert energy_from_counters("fermi", counters).total_pj > 0
    assert energy_from_counters("dmt", counters).total_pj > 0
    with pytest.raises(ValueError):
        energy_from_counters("riscv", counters)


def test_scaled_table_preserves_static_power():
    table = default_energy_table()
    scaled = table.scaled(2.0)
    assert scaled.dram_access == pytest.approx(table.dram_access * 2)
    assert scaled.static_power_fermi == table.static_power_fermi


def test_identical_counters_give_cgra_an_edge_over_fermi():
    """The same work costs more on the von Neumann front-end than on the fabric."""
    counters = {
        "cycles": 1000,
        "alu_ops": 10000,
        "instructions_issued": 10000 // 32,
        "instructions_per_lane": 10000,
        "register_reads": 20000,
        "register_writes": 10000,
        "token_buffer_inserts": 20000,
        "token_buffer_matches": 10000,
        "noc_hops": 20000,
    }
    assert cgra_energy(counters).dynamic_pj < fermi_energy(counters).dynamic_pj
