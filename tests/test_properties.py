"""Property-based tests (hypothesis) on the core data structures and semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dfg import DataflowGraph
from repro.graph.interthread import (
    elevator_destination,
    elevator_source,
    linearize,
    unlinearize,
)
from repro.compiler.pipeline import compile_kernel
from repro.graph.opcodes import Opcode
from repro.kernel.builder import KernelBuilder
from repro.memory.coalescer import coalesce
from repro.sim import simulate
from repro.sim.functional import run_functional
from repro.sim.launch import KernelLaunch
from repro.workloads.registry import all_workloads
from repro.workloads.reduce import windowed_partial_sums

# Property sweeps are the slow lane: CI's fast test job skips them with
# ``-m "not slow"``; the full tier-1 run (and the CI tier1 job) includes them.
pytestmark = pytest.mark.slow

# --------------------------------------------------------------------- dims
block_dims = st.one_of(
    st.tuples(st.integers(1, 64)),
    st.tuples(st.integers(1, 16), st.integers(1, 16)),
    st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 4)),
)


@given(block_dims, st.integers(0, 4095))
def test_linearize_unlinearize_roundtrip(block_dim, tid):
    total = int(np.prod(block_dim))
    tid = tid % total
    assert linearize(unlinearize(tid, block_dim), block_dim) == tid


@given(
    st.integers(1, 512),
    st.integers(-40, 40).filter(lambda d: d != 0),
    st.one_of(st.none(), st.integers(1, 64)),
    st.integers(0, 511),
)
def test_elevator_source_destination_are_inverse(num_threads, delta, window, producer):
    producer = producer % num_threads
    node = DataflowGraph().add_node(
        Opcode.ELEVATOR, params={"delta": delta, "const": 0.0, "window": window}
    )
    dst = elevator_destination(node, producer, (num_threads,), num_threads)
    if dst is not None:
        assert 0 <= dst < num_threads
        assert elevator_source(node, dst, (num_threads,), num_threads) == producer


@given(st.lists(st.one_of(st.none(), st.integers(0, 1 << 20)), min_size=1, max_size=64))
def test_coalesce_partitions_active_lanes(addresses):
    transactions = coalesce(addresses, line_bytes=128)
    covered = sorted(lane for txn in transactions for lane in txn.lanes)
    active = sorted(i for i, a in enumerate(addresses) if a is not None)
    assert covered == active
    for txn in transactions:
        assert txn.line_address % 128 == 0
        for lane in txn.lanes:
            assert addresses[lane] // 128 * 128 == txn.line_address


@settings(deadline=None, max_examples=25)
@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64))
def test_prefix_sum_kernel_matches_numpy(values):
    n = len(values)
    builder = KernelBuilder("prop_scan", n)
    builder.global_array("in_data", n)
    builder.global_array("prefix", n)
    tid = builder.thread_idx_x()
    value = builder.load("in_data", tid)
    running = builder.from_thread_or_const("sum", -1, 0.0)
    total = running + value
    builder.tag_value("sum", total)
    builder.store("prefix", tid, total)
    graph = builder.finish()
    result = run_functional(KernelLaunch(graph, {"in_data": np.array(values)}))
    np.testing.assert_allclose(result.array("prefix"), np.cumsum(values), rtol=1e-9, atol=1e-9)


@settings(deadline=None, max_examples=25)
@given(
    st.integers(1, 5).map(lambda k: 2 ** k),
    st.integers(1, 4),
    st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=128),
)
def test_windowed_partial_sums_reference_properties(window, groups, raw):
    n = window * groups
    values = np.resize(np.asarray(raw, dtype=float), n)
    out = windowed_partial_sums(values, window)
    # the first element of every window equals that window's total
    for start in range(0, n, window):
        assert np.isclose(out[start], values[start:start + window].sum())
        # suffix sums are non-increasing for non-negative inputs
        assert all(np.diff(out[start:start + window]) <= 1e-9)


# Small problem sizes so the event engine stays fast per example.
_STREAM_PARAMS = {
    "scan": {"n": 32},
    "matrixMul": {"dim": 6},
    "convolution": {"n": 48},
    "reduce": {"n": 64, "window": 8},
    "lud": {"dim": 6},
    "srad": {"dim": 6},
    "bpnn": {"n_in": 8, "n_out": 8},
    "hotspot": {"dim": 6},
    "pathfinder": {"cols": 32, "rows": 4},
    "spmv": {"rows": 8, "max_nnz": 4},
}
_STREAM_WORKLOADS = [w for w in all_workloads() if w.has_stream_variant()]


def test_registry_exposes_stream_workloads():
    # Every stream-capable workload needs a params entry below (and vice
    # versa), or the engine-equivalence property test cannot cover it.
    assert {w.name for w in _STREAM_WORKLOADS} == set(_STREAM_PARAMS)
    for workload in _STREAM_WORKLOADS:
        params = workload.params_with_defaults(_STREAM_PARAMS[workload.name])
        assert not workload.build_stream(params).has_interthread()


@settings(deadline=None, max_examples=9)
@given(
    st.integers(0, len(_STREAM_WORKLOADS) - 1),
    st.integers(0, 3),
)
def test_batched_engine_matches_event_engine_on_stream_workloads(index, seed):
    """engine="batched" and engine="event" agree bit for bit on every
    inter-thread-free workload of the registry: same output arrays and the
    same operation counters, for any input data."""
    workload = _STREAM_WORKLOADS[index]
    prepared = workload.prepare(_STREAM_PARAMS[workload.name], seed=seed)
    compiled = compile_kernel(prepared.launch("stream").graph)
    event = simulate(compiled, prepared.launch("stream"), engine="event")
    batched = simulate(compiled, prepared.launch("stream"), engine="batched")
    for name in prepared.expected:
        assert np.array_equal(event.array(name), batched.array(name)), name
    prepared.check_outputs({n: batched.array(n) for n in prepared.expected})
    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter, value in event_counters.items():
        if counter in ("cycles", "engine"):  # provenance differs by design
            continue
        assert batched_counters[counter] == value, counter


@settings(deadline=None, max_examples=20)
@given(st.integers(2, 48), st.integers(1, 47))
def test_elevator_chain_in_kernel_matches_shift(n, shift):
    """A single fromThreadOrConst behaves as an exact thread-index shift."""
    shift = shift % n or 1
    builder = KernelBuilder("prop_shift", n)
    builder.global_array("in_data", n)
    builder.global_array("out", n)
    tid = builder.thread_idx_x()
    value = builder.load("in_data", tid)
    builder.tag_value("v", value)
    remote = builder.from_thread_or_const("v", -shift, -1.0)
    builder.store("out", tid, remote)
    graph = builder.finish()
    data = np.arange(float(n)) + 1
    result = run_functional(KernelLaunch(graph, {"in_data": data}))
    out = result.array("out")
    np.testing.assert_allclose(out[:shift], -1.0)
    np.testing.assert_allclose(out[shift:], data[:-shift] if shift else data)
