"""Unit tests for the metrics registry and phase timers."""

from __future__ import annotations

import pytest

from repro.obs.metrics import REGISTRY, MetricsRegistry, timer


def test_counters_and_gauges():
    registry = MetricsRegistry()
    registry.inc("runs")
    registry.inc("runs", 2)
    registry.set_gauge("threads", 4096)
    snapshot = registry.snapshot()
    assert snapshot["counter.runs"] == 3
    assert snapshot["gauge.threads"] == 4096


def test_histogram_observation_statistics():
    registry = MetricsRegistry()
    for value in (1.0, 2.0, 3.0):
        registry.observe("wave_threads", value)
    snapshot = registry.snapshot()
    assert snapshot["wave_threads.count"] == 3
    assert snapshot["wave_threads.total"] == 6.0
    assert snapshot["wave_threads.min"] == 1.0
    assert snapshot["wave_threads.max"] == 3.0
    assert snapshot["wave_threads.mean"] == pytest.approx(2.0)


def test_timer_records_elapsed_seconds():
    registry = MetricsRegistry()
    with registry.timer("compile") as span:
        pass
    assert span.name == "compile"
    assert span.seconds >= 0.0
    snapshot = registry.snapshot()
    assert snapshot["timer.compile.count"] == 1
    assert snapshot["timer.compile.total"] == pytest.approx(span.seconds)


def test_timer_records_on_exception():
    registry = MetricsRegistry()
    with pytest.raises(RuntimeError, match="boom"):
        with registry.timer("simulate") as span:
            raise RuntimeError("boom")
    assert span.seconds >= 0.0
    assert registry.snapshot()["timer.simulate.count"] == 1


def test_reset_clears_everything():
    registry = MetricsRegistry()
    registry.inc("runs")
    registry.set_gauge("threads", 1)
    registry.observe("h", 1.0)
    registry.reset()
    assert registry.snapshot() == {}


def test_module_shorthand_feeds_global_registry():
    REGISTRY.reset()
    try:
        with timer("phase") as span:
            pass
        assert span.seconds >= 0.0
        assert REGISTRY.snapshot()["timer.phase.count"] == 1
    finally:
        REGISTRY.reset()
