"""End-to-end tests for ``python -m repro.obs trace``."""

from __future__ import annotations

import json

from repro.obs.__main__ import main


def test_trace_command_writes_valid_chrome_trace(tmp_path):
    out = tmp_path / "trace.json"
    rc = main(["trace", "matrixMul", "--variant", "stream", "--param", "dim=4", "--out", str(out)])
    assert rc == 0
    with open(out, encoding="utf-8") as handle:
        trace = json.load(handle)
    assert trace["otherData"]["mode"] == "full"
    assert trace["otherData"]["dropped"] == 0
    events = trace["traceEvents"]
    assert any(e["ph"] == "M" for e in events)
    assert any(e.get("cat") == "op" and e["ph"] == "X" for e in events)


def test_trace_command_ring_mode_bounds_the_buffer(tmp_path):
    out = tmp_path / "ring.json"
    rc = main(
        [
            "trace",
            "matrixMul",
            "--variant",
            "stream",
            "--param",
            "dim=4",
            "--ring",
            "8",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    with open(out, encoding="utf-8") as handle:
        trace = json.load(handle)
    assert trace["otherData"]["mode"] == "ring"
    assert trace["otherData"]["events"] <= 8
    assert trace["otherData"]["dropped"] > 0


def test_trace_command_profile_prints_attribution(tmp_path, capsys):
    out = tmp_path / "trace.json"
    rc = main(
        [
            "trace",
            "matrixMul",
            "--variant",
            "stream",
            "--param",
            "dim=4",
            "--out",
            str(out),
            "--profile",
        ]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "node profile" in printed
    assert "PE occupancy" in printed


def test_trace_command_unknown_workload_fails_cleanly(tmp_path, capsys):
    rc = main(["trace", "noSuchKernel", "--out", str(tmp_path / "x.json")])
    assert rc == 2
    assert "error:" in capsys.readouterr().err
    assert not (tmp_path / "x.json").exists()
