"""Trace <-> counter consistency: traced events must sum to the engines' stats.

One test family per engine: the event engine emits one op event per
firing, the batched engines one event per node per wave carrying
``args.count`` — either way the per-class sums must equal the
``ExecutionStats`` operation counters and the memory-event counts must
equal the L1 access totals, or the timeline lies about the run.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.compiler.pipeline import compile_kernel
from repro.obs.trace import HOST_PID, ChromeTracer, tracing
from repro.sim import simulate
from repro.workloads.registry import get_workload

#: UnitClass.name -> the ExecutionStats counter it must sum to.
CLASS_COUNTERS = {
    "ALU": "alu_ops",
    "FPU": "fpu_ops",
    "SPECIAL": "special_ops",
    "CONTROL": "control_ops",
    "SPLIT_JOIN": "split_join_ops",
}


def _traced_run(variant: str, engine: str = "auto", dim: int = 8):
    prepared = get_workload("matrixMul").prepare({"dim": dim})
    launch = prepared.launch(variant)
    compiled = compile_kernel(launch.graph)
    tracer = ChromeTracer()
    with tracing(tracer):
        result = simulate(compiled, launch, engine=engine)
    return tracer, result


def _class_sums(events) -> dict[str, int]:
    sums: dict[str, int] = defaultdict(int)
    for event in events:
        if event.get("cat") == "op" and event["ph"] == "X" and event["pid"] != HOST_PID:
            args = event.get("args") or {}
            sums[args.get("cls", "?")] += int(args.get("count", 1))
    return sums


def _mem_event_count(events) -> int:
    return sum(
        int((event.get("args") or {}).get("count", 1))
        for event in events
        if event.get("cat") == "mem" and event["ph"] == "X" and event["pid"] != HOST_PID
    )


def _l1_accesses(counters) -> int:
    return sum(
        int(counters[key])
        for key in ("l1_read_hits", "l1_read_misses", "l1_write_hits", "l1_write_misses")
    )


@pytest.mark.parametrize(
    ("variant", "engine", "resolved"),
    [
        pytest.param("stream", "auto", "batched", id="batched"),
        pytest.param("dmt", "auto", "window-batched", id="window-batched"),
        pytest.param("stream", "event", "event", id="event"),
        pytest.param("dmt", "event", "event", id="event-interthread"),
    ],
)
def test_op_events_sum_to_class_counters(variant, engine, resolved):
    tracer, result = _traced_run(variant, engine)
    assert result.engine == resolved
    events = tracer.events()
    sums = _class_sums(events)
    counters = result.counters()
    for cls, counter in CLASS_COUNTERS.items():
        assert sums.get(cls, 0) == counters[counter], (
            f"{variant}/{resolved}: traced {cls} events sum to {sums.get(cls, 0)}, "
            f"stats say {counter}={counters[counter]}"
        )
    # And the timeline saw the memory system exactly as often as the
    # hierarchy counted it.
    assert _mem_event_count(events) == _l1_accesses(counters)


def test_window_batched_traces_interthread_traffic():
    tracer, result = _traced_run("dmt")
    assert result.engine == "window-batched"
    interthread = [e for e in tracer.events() if e.get("cat") == "interthread"]
    assert interthread, "window-batched run traced no inter-thread events"
    forwards = sum(
        int(e["args"].get("forwards", 0)) for e in interthread if "forward" in e["name"]
    )
    assert forwards == result.counters()["eldst_forwards"]


def test_event_engine_traces_injection_and_tokens():
    tracer, result = _traced_run("stream", engine="event", dim=4)
    assert result.engine == "event"
    instants = [e for e in tracer.events() if e["ph"] == "i"]
    cats = {e["cat"] for e in instants}
    assert "inject" in cats
    assert "token" in cats


def test_untraced_run_matches_traced_counters():
    _, traced = _traced_run("stream")
    prepared = get_workload("matrixMul").prepare({"dim": 8})
    launch = prepared.launch("stream")
    untraced = simulate(compile_kernel(launch.graph), launch)
    traced_counters = dict(traced.counters())
    untraced_counters = dict(untraced.counters())
    # Tracing must not perturb the simulation: everything but the trace
    # provenance string is identical.
    assert traced_counters.pop("trace") == "full"
    assert untraced_counters.pop("trace") == "off"
    assert traced_counters == untraced_counters
