"""Unit tests for the repro.* logging tree."""

from __future__ import annotations

import io
import logging

from repro.obs.log import _HANDLER_MARK, configure, get_logger


def _marked_handlers(root: logging.Logger) -> list[logging.Handler]:
    return [h for h in root.handlers if getattr(h, _HANDLER_MARK, False)]


def test_get_logger_namespaces_under_repro():
    assert get_logger().name == "repro"
    assert get_logger("explore").name == "repro.explore"
    # Already-qualified names are not double-prefixed.
    assert get_logger("repro.explore").name == "repro.explore"


def test_configure_is_idempotent():
    root = configure(verbosity=1)
    assert root is configure(verbosity=1)
    assert len(_marked_handlers(root)) == 1
    configure(verbosity=0)
    assert len(_marked_handlers(root)) == 1


def test_verbosity_maps_to_levels():
    root = configure(verbosity=0)
    assert root.level == logging.WARNING
    assert configure(verbosity=1).level == logging.INFO
    assert configure(verbosity=2).level == logging.DEBUG
    configure(verbosity=0)


def test_messages_reach_the_configured_stream():
    stream = io.StringIO()
    configure(verbosity=1, stream=stream)
    try:
        log = get_logger("obs.test")
        log.info("simulated %d points", 4)
        log.debug("hidden at verbosity 1")
        assert stream.getvalue() == "simulated 4 points\n"
    finally:
        configure(verbosity=0)


def test_quiet_suppresses_info_but_not_errors():
    stream = io.StringIO()
    configure(verbosity=0, stream=stream)
    try:
        log = get_logger("obs.test")
        log.info("progress line")
        log.error("FAIL: broke")
        assert stream.getvalue() == "FAIL: broke\n"
    finally:
        configure(verbosity=0)
