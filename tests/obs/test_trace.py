"""Unit tests for the Chrome trace-event tracer and the ambient seam."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    HOST_PID,
    ChromeTracer,
    active_mode,
    active_tracer,
    tracing,
)


def test_export_structure_and_metadata():
    tracer = ChromeTracer()
    tracer.set_process_name(0, "core 0 (test)")
    tracer.set_lane_name(0, 7, "PE 7 (test)")
    tracer.event("fma#1", "op", ts=10.0, dur=4.0, pid=0, tid=7, args={"count": 3})
    tracer.instant("inject", "inject", ts=0.0, pid=0, tid=7)
    export = tracer.export()

    assert set(export) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert export["displayTimeUnit"] == "ms"
    assert export["otherData"]["mode"] == "full"
    assert export["otherData"]["dropped"] == 0

    events = export["traceEvents"]
    process_meta = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
    lane_meta = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
    assert any(e["args"]["name"] == "core 0 (test)" for e in process_meta)
    assert any(e["args"]["name"] == "PE 7 (test)" for e in lane_meta)

    (duration,) = [e for e in events if e["ph"] == "X"]
    assert duration["name"] == "fma#1"
    assert duration["dur"] == 4.0
    assert duration["args"] == {"count": 3}
    (instant,) = [e for e in events if e["ph"] == "i"]
    assert instant["s"] == "t"
    assert "dur" not in instant

    # The op duration event must yield a derived occupancy counter track
    # that rises to the event's count and falls back to zero.
    counters = [e for e in events if e["ph"] == "C" and e["name"] == "occupancy"]
    assert [c["args"]["occupancy"] for c in counters] == [3.0, 0.0]

    # The whole export round-trips through JSON (what export_file writes).
    assert json.loads(json.dumps(export)) == export


def test_export_file_is_loadable(tmp_path):
    tracer = ChromeTracer()
    tracer.event("op#0", "op", ts=0.0, dur=1.0)
    path = tracer.export_file(str(tmp_path / "trace.json"))
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert loaded["otherData"]["events"] == 1


def test_ring_buffer_keeps_newest_and_counts_dropped():
    tracer = ChromeTracer(limit=4)
    assert tracer.mode == "ring"
    for i in range(10):
        tracer.event(f"op#{i}", "op", ts=float(i))
    assert len(tracer) == 4
    assert tracer.dropped == 6
    names = [e["name"] for e in tracer.events()]
    assert names == ["op#6", "op#7", "op#8", "op#9"]
    assert tracer.export()["otherData"]["dropped"] == 6


def test_ring_buffer_rejects_non_positive_limit():
    with pytest.raises(ValueError, match="limit"):
        ChromeTracer(limit=0)


def test_wall_span_lands_on_host_pid():
    tracer = ChromeTracer()
    with tracer.wall_span("tag walk", args={"accesses": 12}):
        pass
    begin = tracer.clock()
    tracer.wall_event("residue walk", begin, args={"accesses": 0})
    events = tracer.events()
    assert [e["name"] for e in events] == ["tag walk", "residue walk"]
    assert all(e["pid"] == HOST_PID and e["cat"] == "host" for e in events)
    assert all(e["dur"] >= 0.0 for e in events)


def test_tracing_nests_and_restores():
    assert active_tracer() is None
    assert active_mode() == "off"
    outer, inner = ChromeTracer(), ChromeTracer(limit=8)
    with tracing(outer):
        assert active_tracer() is outer
        assert active_mode() == "full"
        with tracing(inner):
            assert active_tracer() is inner
            assert active_mode() == "ring"
        with tracing(None):  # the overhead benchmark's explicit baseline
            assert active_tracer() is None
            assert active_mode() == "off"
        assert active_tracer() is outer
    assert active_tracer() is None


def test_tracing_restores_on_exception():
    tracer = ChromeTracer()
    with pytest.raises(RuntimeError, match="boom"):
        with tracing(tracer):
            raise RuntimeError("boom")
    assert active_tracer() is None
