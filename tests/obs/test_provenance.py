"""Trace/timing provenance: stats.extra, harness phases, explore report."""

from __future__ import annotations

import numpy as np

from repro.compiler.pipeline import compile_kernel
from repro.explore.analysis import render_campaign_report, timing_rows
from repro.explore.spec import CampaignSpec
from repro.harness.experiments import run_workload
from repro.kernel.builder import KernelBuilder
from repro.obs.trace import HOST_PID, ChromeTracer, tracing
from repro.sim import simulate
from repro.sim.launch import KernelLaunch


def _axpy_launch(n=64):
    b = KernelBuilder("axpy_obs", n)
    b.global_array("x", n)
    b.global_array("y", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    b.store("out", tid, b.fma(b.load("x", tid), b.const(2.0), b.load("y", tid)))
    graph = b.finish()
    return KernelLaunch(graph, {"x": np.arange(n) * 0.5, "y": np.ones(n)})


def test_result_records_tracer_mode():
    launch = _axpy_launch()
    compiled = compile_kernel(launch.graph)
    assert simulate(compiled, launch).stats.extra["trace"] == "off"
    with tracing(ChromeTracer()):
        assert simulate(compiled, launch).stats.extra["trace"] == "full"
    with tracing(ChromeTracer(limit=128)):
        assert simulate(compiled, launch).stats.extra["trace"] == "ring"


def test_multicore_trace_uses_one_process_per_core():
    launch = _axpy_launch()
    compiled = compile_kernel(launch.graph)
    tracer = ChromeTracer()
    with tracing(tracer):
        result = simulate(compiled, launch, cores=2)
    assert result.cores == 2
    op_pids = {e["pid"] for e in tracer.events() if e.get("cat") == "op" and e["pid"] != HOST_PID}
    assert op_pids == {0, 1}
    shard_spans = [e for e in tracer.events() if e.get("cat") == "host" and "shard" in e["name"]]
    assert len(shard_spans) == 2
    assert sum(s["args"]["threads"] for s in shard_spans) == launch.num_threads


def test_run_workload_records_phase_timers():
    result = run_workload("matrixMul", "dmt", params={"dim": 4})
    assert {"prepare", "compile", "simulate", "analyze", "report"} <= set(result.phases)
    assert all(seconds >= 0.0 for seconds in result.phases.values())
    record = result.to_record()
    assert record["phases"] == result.phases
    # Wall-clock provenance must stay out of the deterministic counters.
    assert not any(key.startswith("phase") for key in record["counters"])
    assert "simulate" not in record["counters"]


def _record(workload, variant, duration, sim_seconds):
    return {
        "status": "ok",
        "duration_s": duration,
        "point": {"workload": workload, "variant": variant, "overrides": {}},
        "result": {
            "cycles": 100,
            "energy_pj": 1e6,
            "counters": {"engine": "batched"},
            "phases": {"simulate": sim_seconds},
        },
    }


def test_timing_rows_group_and_count_cache_hits():
    records = [
        _record("matrixMul", "stream", 2.0, 1.5),
        _record("matrixMul", "stream", 4.0, 0.5),
        _record("reduce", "dmt", 1.0, 0.25),
    ]
    rows = timing_rows(records, cached=[True, False, False])
    assert rows == [
        ["matrixMul", "stream", 2, 1, 1, "6.00", "1.000"],
        ["reduce", "dmt", 1, 0, 1, "1.00", "0.250"],
    ]
    # Records straight out of the cache are all hits by definition.
    all_hits = timing_rows(records)
    assert [row[3] for row in all_hits] == [2, 1]


def test_campaign_report_includes_provenance_section():
    spec = CampaignSpec(name="prov", workloads=("matrixMul",), variants=("stream",))
    records = [_record("matrixMul", "stream", 2.0, 1.5)]
    report = render_campaign_report(spec, records, cached=[False])
    assert "Point wall time and cache provenance" in report
    assert "Mean sim [s]" in report
