"""Unit tests for trace-derived profiles (cycle attribution, occupancy)."""

from __future__ import annotations

import pytest

from repro.compiler.pipeline import compile_kernel
from repro.obs.profile import (
    lane_busy,
    node_profile,
    render_heatmap,
    render_node_profile,
    total_activity,
)
from repro.obs.trace import ChromeTracer, tracing
from repro.sim import simulate
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def traced_export():
    prepared = get_workload("matrixMul").prepare({"dim": 4})
    launch = prepared.launch("stream")
    compiled = compile_kernel(launch.graph)
    tracer = ChromeTracer()
    with tracing(tracer):
        simulate(compiled, launch)
    return tracer.export()


def test_node_profile_partitions_total_activity(traced_export):
    profile = node_profile(traced_export)
    assert profile, "traced run produced no op events"
    assert sum(profile.values()) == pytest.approx(total_activity(traced_export))
    assert all(activity > 0 for activity in profile.values())


def test_node_profile_from_synthetic_trace():
    tracer = ChromeTracer()
    tracer.event("fma#1", "op", ts=0.0, dur=4.0, args={"count": 16})
    tracer.event("fma#1", "op", ts=10.0, dur=4.0, args={"count": 16})
    tracer.event("load#2", "op", ts=0.0, dur=0.0)  # floored at one cycle
    tracer.event("residue walk", "host", ts=0.0, dur=5.0)  # not an op event
    trace = tracer.export()
    profile = node_profile(trace)
    assert profile == {"fma#1": 128.0, "load#2": 1.0}
    assert total_activity(trace) == 129.0


def test_render_node_profile_ranks_and_caps(traced_export):
    rendered = render_node_profile(traced_export, top=2)
    lines = rendered.splitlines()
    assert "node profile" in lines[0]
    assert len(lines) == 4  # header + 2 nodes + "(other)"
    assert "(other)" in lines[-1]
    assert "100.0%" not in lines[1]  # no single node owns the whole run


def test_render_heatmap_shows_each_lane(traced_export):
    rendered = render_heatmap(traced_export)
    assert rendered.startswith("PE occupancy")
    assert len(rendered.splitlines()) == 1 + len(lane_busy(traced_export))
    assert "|" in rendered and "%" in rendered


def test_empty_trace_renders_gracefully():
    empty = ChromeTracer().export()
    assert node_profile(empty) == {}
    assert total_activity(empty) == 0.0
    assert "no op events" in render_node_profile(empty)
    assert "no op events" in render_heatmap(empty)
