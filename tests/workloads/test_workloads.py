"""Cross-variant correctness tests for every Table 3 workload.

Every workload must produce the same named outputs as its NumPy reference
on all three architectures; the dataflow variants are checked both on the
functional interpreter and on the cycle-level simulator, and the Fermi
variant on the SIMT core.  These are the integration tests that make the
Figure 11/12 comparisons meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.gpgpu.simulator import run_fermi
from repro.sim import simulate
from repro.sim.functional import run_functional
from repro.workloads.registry import all_workloads, get_workload, workload_names

#: Small sizes keep the full matrix of checks fast.
SMALL_PARAMS = {
    "scan": {"n": 64},
    "matrixMul": {"dim": 8},
    "convolution": {"n": 64},
    "reduce": {"n": 64, "window": 16},
    "lud": {"dim": 8},
    "srad": {"dim": 8},
    "bpnn": {"n_in": 8, "n_out": 8},
    "hotspot": {"dim": 8},
    "pathfinder": {"cols": 64, "rows": 4},
    "spmv": {"rows": 16, "max_nnz": 4},
}

WORKLOADS = workload_names()


def _prepared(name: str):
    return get_workload(name).prepare(SMALL_PARAMS[name], seed=3)


# ------------------------------------------------------------------ registry
def test_registry_matches_table3():
    workloads = all_workloads()
    assert len(workloads) == 10
    assert set(WORKLOAD_NAMES_EXPECTED) == set(w.name for w in workloads)


WORKLOAD_NAMES_EXPECTED = [
    "scan",
    "matrixMul",
    "convolution",
    "reduce",
    "lud",
    "srad",
    "bpnn",
    "hotspot",
    "pathfinder",
    "spmv",
]


def test_unknown_workload_rejected():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        get_workload("nonexistent")


def test_table3_rows_have_descriptions():
    for workload in all_workloads():
        row = workload.table3_row()
        assert row["application"] and row["domain"] and row["kernel"]


# -------------------------------------------------------------- correctness
@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("variant", ["dmt", "mt"])
def test_dataflow_variants_match_reference_functionally(name, variant):
    prepared = _prepared(name)
    launch = prepared.launch(variant)
    result = run_functional(launch)
    prepared.check_outputs({k: result.array(k) for k in prepared.expected})


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("variant", ["dmt", "mt"])
def test_dataflow_variants_match_reference_on_cycle_simulator(name, variant):
    prepared = _prepared(name)
    launch = prepared.launch(variant)
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch)
    prepared.check_outputs({k: result.array(k) for k in prepared.expected})
    assert result.cycles > 0


@pytest.mark.parametrize("name", WORKLOADS)
def test_fermi_variant_matches_reference(name):
    prepared = _prepared(name)
    program = prepared.fermi_program()
    result = run_fermi(program, prepared.fermi_inputs())
    prepared.check_outputs({k: result.array(k) for k in prepared.expected})


# ----------------------------------------------------------- paper structure
@pytest.mark.parametrize("name", WORKLOADS)
def test_dmt_variants_use_no_shared_memory_or_barriers(name):
    prepared = _prepared(name)
    graph = prepared.workload.build_dmt(prepared.params)
    from repro.graph.opcodes import Opcode

    assert not graph.nodes_with_opcode(Opcode.BARRIER)
    assert not graph.nodes_with_opcode(Opcode.SCRATCH_LOAD, Opcode.SCRATCH_STORE)
    assert graph.nodes_with_opcode(Opcode.ELEVATOR) or graph.nodes_with_opcode(Opcode.ELDST)


@pytest.mark.parametrize("name", WORKLOADS)
def test_mt_variants_use_shared_memory_and_barriers(name):
    prepared = _prepared(name)
    graph = prepared.workload.build_mt(prepared.params)
    from repro.graph.opcodes import Opcode

    assert graph.nodes_with_opcode(Opcode.BARRIER)
    assert not graph.nodes_with_opcode(Opcode.ELEVATOR)
    assert not graph.nodes_with_opcode(Opcode.ELDST)


def test_matmul_fig3_forwarding_pattern():
    """Fig. 3: threads computing the first row/column load, others forward."""
    prepared = get_workload("matrixMul").prepare({"dim": 3}, seed=0)
    launch = prepared.launch("dmt")
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch)
    prepared.check_outputs({"c": result.array("c")})
    dim = 3
    # Only 2 * dim^2 elements are loaded from the source matrices (plus no
    # redundant loads), versus 2 * dim^3 for the scratchpad version.
    assert result.stats.eldst_memory_loads == 2 * dim * dim
    assert result.stats.eldst_forwards == 2 * dim * dim * (dim - 1)


def test_matmul_dmt_reduces_global_loads_versus_mt():
    prepared = _prepared("matrixMul")
    dmt = prepared.launch("dmt")
    mt = prepared.launch("mt")
    dmt_result = simulate(compile_kernel(dmt.graph), dmt)
    mt_result = simulate(compile_kernel(mt.graph), mt)
    assert (
        dmt_result.stats.global_loads
        < mt_result.stats.global_loads + mt_result.stats.scratch_loads
    )


def test_reference_outputs_are_deterministic():
    a = _prepared("hotspot").expected["out"]
    b = _prepared("hotspot").expected["out"]
    np.testing.assert_allclose(a, b)
