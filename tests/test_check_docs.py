"""The docs linter passes on the shipped docs and catches broken references."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CHECKER = REPO / "tools" / "check_docs.py"


def _run(*args):
    return subprocess.run(
        [sys.executable, str(CHECKER), *args],
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_shipped_docs_reference_only_real_symbols():
    completed = _run()
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "0 broken" in completed.stdout


def test_broken_reference_is_caught(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "# Bad\n\n```python\nfrom repro.sim import simulate_faster_please\n```\n",
        encoding="utf-8",
    )
    completed = _run(str(doc))
    assert completed.returncode == 1
    assert "simulate_faster_please" in completed.stderr


def test_dotted_reference_in_shell_block_is_checked(tmp_path):
    doc = tmp_path / "cli.md"
    doc.write_text(
        "```sh\npython -m repro.serve_nothing --port 1\n```\n", encoding="utf-8"
    )
    completed = _run(str(doc))
    assert completed.returncode == 1
    assert "repro.serve_nothing" in completed.stderr
