"""Tests for the experiment harness and figure regeneration."""

import pytest

from repro.harness.experiments import compare_architectures, run_suite, run_workload
from repro.harness.figures import figure5, figure11, figure12, table2, table3
from repro.power.model import EnergyBreakdown

FAST = {"n": 64, "k0": 0.25, "k1": 0.5, "k2": 0.25}


def test_run_workload_returns_cycles_energy_and_outputs():
    result = run_workload("convolution", "dmt", params=FAST)
    assert result.cycles > 0
    assert isinstance(result.energy, EnergyBreakdown)
    assert result.energy.total_pj > 0
    assert "out" in result.outputs
    assert result.compiled is not None
    assert "cycles" in result.counters


def test_run_workload_rejects_unknown_architecture():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        run_workload("convolution", "tpu")


def test_compare_architectures_orders_as_the_paper():
    results = compare_architectures("convolution", params=FAST)
    assert set(results) == {"fermi", "mt", "dmt"}
    # dMT-CGRA must beat the plain MT-CGRA (the paper's core claim).
    assert results["dmt"].cycles < results["mt"].cycles
    assert results["dmt"].energy_pj < results["mt"].energy_pj


def test_run_suite_builds_a_comparison_table():
    table = run_suite(
        workloads=["convolution", "reduce"],
        params={"convolution": FAST, "reduce": {"n": 64, "window": 16}},
    )
    assert table.workloads() == ["convolution", "reduce"]
    assert table.geomean_speedup("dmt") > 0


def test_table2_describes_the_grid():
    result = table2()
    assert "140" in result.text
    assert result.data["grid"]["num_alu"] == 32


def test_table3_has_nine_rows():
    result = table3()
    assert len(result.data) == 9
    assert "Prefix sum" in result.text


def test_figure5_reports_locality():
    result = figure5()
    assert 0.0 < result.data["fraction_within_buffer"] <= 1.0
    assert "CDF" in result.text


def test_figures_11_and_12_share_a_suite_run():
    from repro.harness.experiments import run_suite as suite

    table = suite(
        workloads=["convolution"],
        params={"convolution": FAST},
    )
    fig11 = figure11(table=table)
    fig12 = figure12(table=table)
    assert "convolution" in fig11.data["speedup_dmt"]
    assert "convolution" in fig12.data["efficiency_dmt"]
    assert fig11.data["speedup_dmt"]["convolution"] > fig11.data["speedup_mt"]["convolution"]
